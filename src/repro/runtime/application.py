"""The event-driven real-time neural application (Figure 7).

Every active application core executes the same three interrupt-driven
tasks:

* **Packet received** (priority 1): identify the spiking neuron from the
  packet key, look it up in the master population table and schedule a DMA
  of the corresponding synaptic row from SDRAM.
* **DMA complete** (priority 2): process the fetched synaptic row — defer
  each synapse's charge into the input ring buffer at the slot selected by
  its programmable delay.
* **Millisecond timer** (priority 3): drain the current ring-buffer slot,
  integrate the neuron equations and emit a multicast packet for every
  neuron that fired.

When all tasks are complete the core sleeps in the low-power
wait-for-interrupt state.  :class:`NeuralApplication` wires a
population/projection network onto a machine using the mapping layer and
runs it in (simulated) biological real time; spike-delivery latencies are
recorded so experiments E8 and E10 can check the paper's sub-millisecond
delivery claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compile import MappingContext, MappingPipeline
from repro.core.dma import DMARequest
from repro.core.event_kernel import EventKernel, milliseconds
from repro.core.geometry import ChipCoordinate
from repro.core.machine import SpiNNakerMachine
from repro.core.packets import MulticastPacket
from repro.core.processor import ProcessorSubsystem
from repro.mapping.keys import KeyAllocator, KeySpace
from repro.mapping.placement import Placement, Vertex
from repro.mapping.synaptic_matrix import CoreSynapticData
from repro.neuron.engine import CSRMatrix, decode_packed_row
from repro.router.fabric import RouteProgram, RouteTarget, TransportFabric
from repro.neuron.network import Network
from repro.neuron.population import (
    Population,
    SpikeSourceArray,
    SpikeSourcePoisson,
    core_rng,
)
from repro.neuron.synapse import MAX_DELAY_TICKS, DeferredEventBuffer, SynapticRow

#: The biological real-time tick of the application model.
TIMER_PERIOD_US = 1000.0

#: Sentinel hop distance recorded for deliveries whose packet carried no
#: source coordinate, keeping the latency/distance samples aligned.
UNKNOWN_DISTANCE = -1


class _SampleAccumulator:
    """A growable flat array for per-delivery samples.

    Replaces the old per-packet Python-list appends: the event transport
    appends single samples, the compiled transport fabric lands whole
    batches with one slice assignment, and readers get a NumPy view
    without a list->array conversion per query.
    """

    __slots__ = ("_data", "_size")

    def __init__(self, dtype=np.float64, capacity: int = 64) -> None:
        self._data = np.empty(capacity, dtype=dtype)
        self._size = 0

    def _reserve(self, extra: int) -> None:
        needed = self._size + extra
        capacity = self._data.shape[0]
        if needed <= capacity:
            return
        grown = np.empty(max(needed, 2 * capacity), dtype=self._data.dtype)
        grown[:self._size] = self._data[:self._size]
        self._data = grown

    def append(self, value) -> None:
        """Record one sample."""
        self._reserve(1)
        self._data[self._size] = value
        self._size += 1

    def extend_constant(self, value, count: int) -> None:
        """Record ``count`` copies of ``value`` (one fabric batch)."""
        if count <= 0:
            return
        self._reserve(count)
        self._data[self._size:self._size + count] = value
        self._size += count

    def extend(self, values: np.ndarray) -> None:
        """Append a whole sample array (merging shard results)."""
        values = np.asarray(values, dtype=self._data.dtype)
        if values.size == 0:
            return
        self._reserve(values.size)
        self._data[self._size:self._size + values.size] = values
        self._size += values.size

    def view(self) -> np.ndarray:
        """Read-only internal view of the samples (no allocation).

        For the result's own statistics methods; external readers get
        the copying :meth:`array` instead.
        """
        return self._data[:self._size]

    def array(self) -> np.ndarray:
        """The recorded samples as an independent array.

        A copy, so a reference taken mid-run neither goes stale nor
        aliases cells later appends write into.
        """
        return self._data[:self._size].copy()

    def __len__(self) -> int:
        return self._size

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _SampleAccumulator):
            return NotImplemented
        return bool(np.array_equal(self._data[:self._size],
                                   other._data[:other._size]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "_SampleAccumulator(%d samples)" % (self._size,)


@dataclass
class ApplicationResult:
    """Spike records and timing statistics from an on-machine run."""

    duration_ms: float
    spikes: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)
    spike_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-delivery latency samples (microseconds), array-accumulated.
    latency_samples: _SampleAccumulator = field(
        default_factory=_SampleAccumulator)
    #: Per-delivery hop distances, aligned one-to-one with the latency
    #: samples; :data:`UNKNOWN_DISTANCE` marks deliveries whose packet
    #: carried no source coordinate.
    distance_samples: _SampleAccumulator = field(
        default_factory=lambda: _SampleAccumulator(dtype=np.int64))
    packets_sent: int = 0
    packets_dropped: int = 0
    emergency_invocations: int = 0
    #: Synaptic events scattered into the deferred-event buffers.
    synaptic_events: int = 0
    #: Total synaptic charge (nA) delivered; an exact sum of fixed-point
    #: weights, so it is comparable bit-for-bit across transports.
    delivered_charge_na: float = 0.0

    @property
    def delivery_latencies_us(self) -> np.ndarray:
        """Per-delivery latency samples in microseconds (send to processing)."""
        return self.latency_samples.array()

    @property
    def delivery_distances(self) -> np.ndarray:
        """Per-delivery hop distances, aligned with ``delivery_latencies_us``."""
        return self.distance_samples.array()

    def record_delivery(self, latency_us: float,
                        distance: Optional[int] = None) -> None:
        """Record one spike delivery (event transport).

        ``distance=None`` (a packet with no source coordinate) records
        :data:`UNKNOWN_DISTANCE` so the latency and distance arrays stay
        aligned sample-for-sample.
        """
        self.latency_samples.append(latency_us)
        self.distance_samples.append(
            UNKNOWN_DISTANCE if distance is None else distance)

    def record_delivery_batch(self, latency_us: float, distance: int,
                              count: int) -> None:
        """Record a whole delivered batch (compiled transport fabric)."""
        self.latency_samples.extend_constant(latency_us, count)
        self.distance_samples.extend_constant(distance, count)

    @classmethod
    def merge(cls, results: List["ApplicationResult"]) -> "ApplicationResult":
        """Merge per-shard results into one machine-wide result.

        Used by the cluster runner (:mod:`repro.cluster`): shards are
        merged *in list order*, so callers that always present shards in
        canonical board order get a bit-identical merge regardless of how
        many workers produced them.  Spike counts are summed per label,
        spike records are stably sorted by time (preserving the
        board-order tie-break within a tick), and scalar counters add up.
        """
        merged = cls(duration_ms=max(
            (result.duration_ms for result in results), default=0.0))
        for result in results:
            for label, counts in result.spike_counts.items():
                existing = merged.spike_counts.get(label)
                if existing is None:
                    merged.spike_counts[label] = counts.copy()
                else:
                    existing += counts
            for label, spikes in result.spikes.items():
                merged.spikes.setdefault(label, []).extend(spikes)
            merged.latency_samples.extend(result.latency_samples.view())
            merged.distance_samples.extend(result.distance_samples.view())
            merged.packets_sent += result.packets_sent
            merged.packets_dropped += result.packets_dropped
            merged.emergency_invocations += result.emergency_invocations
            merged.synaptic_events += result.synaptic_events
            merged.delivered_charge_na += result.delivered_charge_na
        for label in merged.spikes:
            merged.spikes[label].sort(key=lambda pair: pair[0])
        return merged

    def total_spikes(self, label: Optional[str] = None) -> int:
        """Total spikes of one population, or of all populations.

        Raises
        ------
        KeyError
            If ``label`` names a population this run never mapped.
        """
        if label is not None:
            if label not in self.spike_counts:
                raise KeyError(
                    "unknown population label %r; this run recorded %s"
                    % (label, sorted(self.spike_counts)))
            return int(self.spike_counts[label].sum())
        return int(sum(c.sum() for c in self.spike_counts.values()))

    def mean_rate_hz(self, label: str) -> float:
        """Mean firing rate of a population over the run."""
        seconds = self.duration_ms / 1000.0
        if seconds <= 0:
            return 0.0
        return float(self.spike_counts[label].mean() / seconds)

    def max_delivery_latency_us(self) -> float:
        """Worst spike-delivery latency observed (0 if nothing delivered)."""
        samples = self.latency_samples.view()
        return float(samples.max()) if samples.size else 0.0

    def mean_delivery_latency_us(self) -> float:
        """Mean spike-delivery latency (0 for an empty run)."""
        samples = self.latency_samples.view()
        return float(samples.mean()) if samples.size else 0.0

    def within_deadline_fraction(self, deadline_us: float = 1000.0) -> float:
        """Fraction of deliveries completed within ``deadline_us``.

        An empty run (nothing delivered) trivially meets every deadline
        and reports 1.0.
        """
        samples = self.latency_samples.view()
        if samples.size == 0:
            return 1.0
        return float(np.count_nonzero(samples <= deadline_us) / samples.size)


@dataclass
class _FabricDelivery:
    """One precompiled (source vertex -> destination core) delivery leg.

    Compiled once after mapping: the destination's synaptic block for the
    source vertex is decoded from SDRAM into a :class:`CSRMatrix`, and
    the transport latency is extended with the nominal core-side costs
    (packet handler, DMA fetch, DMA-complete handler) the event path pays
    per packet, so the two transports report comparable latencies.
    """

    runtime: "CoreRuntime"
    csr: Optional[CSRMatrix]
    latency_us: float
    distance: int
    stride_words: int


class CoreRuntime:
    """The application kernel running on one core (one placed vertex)."""

    def __init__(self, application: "NeuralApplication", core: ProcessorSubsystem,
                 chip_coordinate: ChipCoordinate, vertex: Vertex,
                 population: Population, key_space: KeySpace,
                 synaptic_data: CoreSynapticData,
                 rng: np.random.Generator,
                 has_outgoing_projections: bool = True,
                 propagation: str = "csr",
                 transport: str = "event") -> None:
        self.application = application
        self.propagation = propagation
        self.transport = transport
        #: Filled in by the application when ``transport="fabric"``.
        self.fabric_program: Optional[RouteProgram] = None
        self.fabric_deliveries: List[_FabricDelivery] = []
        self.core = core
        self.chip_coordinate = chip_coordinate
        self.vertex = vertex
        self.population = population
        self.key_space = key_space
        self.synaptic_data = synaptic_data
        self.rng = rng
        #: Vertices of populations with no outgoing projections have no
        #: routing entries for their keys; the mapping layer therefore does
        #: not emit spike packets for them (their spikes are still recorded
        #: locally), mirroring the real tool-chain.
        self.has_outgoing_projections = has_outgoing_projections

        self.is_source = population.is_spike_source
        self.neuron_state = None
        if not self.is_source:
            self.neuron_state = _VertexState(population, vertex,
                                             application.timestep_ms, rng)
        self.buffer = DeferredEventBuffer(vertex.n_neurons, MAX_DELAY_TICKS)
        self.tick = 0
        #: CSR fast path: synaptic rows decoded once per SDRAM address.  A
        #: row is re-fetched by DMA every time its source neuron spikes but
        #: its contents only change through plasticity write-back (which
        #: this runtime does not model), so the decoded arrays are reused;
        #: DMA/processing costs are still charged per fetch.
        self._decoded_rows: Dict[int, Tuple[int, np.ndarray, np.ndarray,
                                            np.ndarray]] = {}

        core.on_packet(self._on_packet)
        core.on_dma_complete(self._on_dma_complete)
        core.on_timer(self._on_timer)
        core.start_application()

    # ------------------------------------------------------------------
    # Figure 7, priority 1: packet received
    # ------------------------------------------------------------------
    def _on_packet(self, packet: MulticastPacket) -> None:
        lookup = self.synaptic_data.population_table.lookup(packet.key)
        if lookup is None:
            # No connectivity block for this key: a routing-table error.
            self.application.unmatched_packets += 1
            return
        address, row_words = lookup
        self.core.dma.read(address, row_words,
                           on_complete=self.core.dma_completed,
                           context=packet)

    # ------------------------------------------------------------------
    # Figure 7, priority 2: DMA complete
    # ------------------------------------------------------------------
    def _on_dma_complete(self, request: DMARequest) -> None:
        packet: MulticastPacket = request.context
        if self.propagation == "csr":
            # Fast path: decode the packed row straight into flat arrays
            # (cached per SDRAM address) and defer the whole row with one
            # vectorized scatter.
            decoded = self._decoded_rows.get(request.sdram_address)
            if decoded is None:
                decoded = decode_packed_row(request.data)
                self._decoded_rows[request.sdram_address] = decoded
            count, targets, weights, delays = decoded
            self.core.charge_cycles(
                self.core.costs.dma_complete_cycles_per_word * count)
            if count:
                self.buffer.add_events(targets, weights, delays)
            self.application.result.synaptic_events += count
            self.application.result.delivered_charge_na += float(weights.sum())
        else:
            row = SynapticRow.unpack(packet.key, request.data)
            self.core.charge_cycles(
                self.core.costs.dma_complete_cycles_per_word * len(row))
            for synapse in row:
                self.buffer.add_synapse(synapse)
            self.application.result.synaptic_events += len(row)
            self.application.result.delivered_charge_na += row.total_charge()
        latency = self.application.kernel.now - packet.timestamp
        distance = None
        if packet.source is not None:
            distance = self.application.machine.geometry.distance(
                packet.source, self.chip_coordinate)
        self.application.result.record_delivery(latency, distance)

    # ------------------------------------------------------------------
    # Figure 7, priority 3: millisecond timer
    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        time_ms = self.tick * self.application.timestep_ms
        if self.is_source:
            spikes = self._source_spikes()
        else:
            inputs = self.buffer.drain()
            state = self.neuron_state
            state.population_state.inject_synaptic_input(inputs)
            bias = None
            if self.population.bias_current_na:
                bias = np.full(self.vertex.n_neurons,
                               self.population.bias_current_na)
            spikes = state.population_state.step(bias)
            self.core.charge_cycles(
                self.core.costs.timer_cycles_per_neuron * self.vertex.n_neurons)

        spiking = np.flatnonzero(spikes)
        if spiking.size:
            self.application.record_spikes(self.population.label, self.vertex,
                                           time_ms, spiking)
            if self.has_outgoing_projections:
                if self.transport == "fabric":
                    # Compiled transport: one batched send for the whole
                    # tick's spikes instead of a packet per neuron.
                    self.application.fabric_send(self, spiking)
                else:
                    for local_index in spiking:
                        packet = MulticastPacket(
                            key=self.key_space.key_for(int(local_index)),
                            timestamp=self.application.kernel.now,
                            source=self.chip_coordinate)
                        self.core.send_multicast(packet)
                        self.application.result.packets_sent += 1
        self.tick += 1

    def _source_spikes(self) -> np.ndarray:
        population = self.population
        if isinstance(population, SpikeSourcePoisson):
            probability = SpikeSourcePoisson.spike_probability(
                population.rate_hz, self.application.timestep_ms)
            return self.rng.random(self.vertex.n_neurons) < probability
        if isinstance(population, SpikeSourceArray):
            mask = population.spikes_for_tick(self.tick,
                                              self.application.timestep_ms)
            return mask[self.vertex.slice_start:self.vertex.slice_stop]
        return np.zeros(self.vertex.n_neurons, dtype=bool)


class _VertexState:
    """Neuron-model state for the slice of a population on one core."""

    def __init__(self, population: Population, vertex: Vertex,
                 timestep_ms: float, rng: np.random.Generator) -> None:
        # The slice reuses the population's model and parameters but only
        # instantiates the vertex's neurons.
        sliced = Population(vertex.n_neurons, population.parameters,
                            label="%s-state-%d" % (population.label, vertex.index))
        self.population_state = sliced.build_state(timestep_ms, rng)


class NeuralApplication:
    """Maps a network onto a machine and runs it under the event kernel."""

    def __init__(self, machine: SpiNNakerMachine, network: Network,
                 max_neurons_per_core: int = 256,
                 placement_strategy: str = "locality",
                 seed: Optional[int] = None,
                 propagation: str = "csr",
                 transport: str = "event",
                 stagger_us: float = 10.0) -> None:
        if propagation not in ("csr", "reference"):
            raise ValueError("propagation must be 'csr' or 'reference', "
                             "got %r" % (propagation,))
        if transport not in ("event", "fabric"):
            raise ValueError("transport must be 'event' or 'fabric', "
                             "got %r" % (transport,))
        if stagger_us < 0:
            raise ValueError("stagger_us must be non-negative")
        self.machine = machine
        self.network = network
        self.kernel: EventKernel = machine.kernel
        self.timestep_ms = network.timestep_ms
        self.seed = seed if seed is not None else (network.seed or 0)
        #: Seed key used for connectivity expansion.  Unlike ``self.seed``
        #: (which must be concrete to derive per-core generators), this
        #: preserves ``None`` for an unseeded network so the mapping
        #: layers share the host simulator's unseeded cache entry instead
        #: of building an independent expansion under key 0.
        self.expansion_seed = seed if seed is not None else network.seed
        self.max_neurons_per_core = max_neurons_per_core
        self.placement_strategy = placement_strategy
        self.propagation = propagation
        self.transport = transport
        #: Upper bound (us) of the random per-core timer offset.  The
        #: default keeps the paper's bounded asynchrony; transport
        #: equivalence checks set it to 0 so both transports see the same
        #: tick alignment at every core.
        self.stagger_us = stagger_us

        self.placement: Optional[Placement] = None
        self.keys: Optional[KeyAllocator] = None
        #: The mapping compiler bound to this application; built by
        #: :meth:`prepare`, re-driven by :meth:`remap`.
        self.pipeline: Optional[MappingPipeline] = None
        self.core_runtimes: List[CoreRuntime] = []
        self.result = ApplicationResult(duration_ms=0.0)
        self.unmatched_packets = 0
        self.fabric: Optional[TransportFabric] = None
        self._prepared = False
        self._broadcast_routing = False

    # ------------------------------------------------------------------
    # Mapping and configuration
    # ------------------------------------------------------------------
    def prepare(self, broadcast_routing: bool = False) -> None:
        """Compile the mapping artifacts and configure every core.

        A thin wrapper around the :mod:`repro.compile` pass pipeline.
        ``broadcast_routing`` selects the bus-style AER baseline of
        experiment E11 instead of multicast trees.

        Preparing twice is guarded explicitly: a second call with the
        same arguments is a no-op (it used to double-append core runtimes
        and re-seed every per-core generator), and a second call that
        asks for a *different* routing mode is an error — re-map through
        :meth:`remap` instead.
        """
        if self._prepared:
            if broadcast_routing != self._broadcast_routing:
                raise RuntimeError(
                    "application already prepared with broadcast_routing=%r;"
                    " it cannot be re-prepared with a different routing mode"
                    % (self._broadcast_routing,))
            return
        self._broadcast_routing = broadcast_routing
        self.pipeline = MappingPipeline(
            self.machine, self.network, seed=self.seed,
            expansion_seed=self.expansion_seed,
            max_neurons_per_core=self.max_neurons_per_core,
            placement_strategy=self.placement_strategy,
            broadcast_routing=broadcast_routing,
            compile_transport=(self.transport == "fabric"))
        ctx = self.pipeline.run()
        self.placement = ctx.placement
        self.keys = ctx.keys
        self._instantiate_runtimes(ctx)
        self._reset_recording()
        if self.transport == "fabric":
            self._build_fabric(ctx.route_programs)
        self._prepared = True

    def _reset_recording(self) -> None:
        """Fresh recording state (shared by prepare and reset re-maps,
        so a reset re-run cannot drift from a cold run)."""
        self.result = ApplicationResult(duration_ms=0.0)
        self.unmatched_packets = 0
        for population in self.network.populations:
            self.result.spike_counts[population.label] = np.zeros(
                population.size, dtype=int)
            if population.record_spikes:
                self.result.spikes[population.label] = []

    def _instantiate_runtimes(self, ctx: MappingContext,
                              vertices: Optional[set] = None) -> int:
        """Build core runtimes for placed vertices (all, or a subset).

        Iterates the placement in its canonical order and derives every
        per-core generator from the core's physical location
        (:func:`core_rng`), so the runtimes any two compilations build
        for the same core are identical regardless of iteration order or
        how many re-maps happened in between.
        """
        populations = {p.label: p for p in self.network.populations}
        projecting_labels = {projection.pre.label
                             for projection in self.network.projections}
        built = 0
        for vertex, (chip_coordinate, core_id) in self.placement.locations.items():
            if vertices is not None and vertex not in vertices:
                continue
            chip = self.machine.chips[chip_coordinate]
            core = chip.cores[core_id]
            if not core.is_available:
                continue
            if core.state.value == "off":
                core.run_self_test(True)
            data = ctx.core_data[(chip_coordinate, core_id)]
            runtime = CoreRuntime(
                application=self, core=core, chip_coordinate=chip_coordinate,
                vertex=vertex, population=populations[vertex.population_label],
                key_space=self.keys.key_space(vertex), synaptic_data=data,
                rng=core_rng(self.seed, chip_coordinate.x, chip_coordinate.y,
                             core_id),
                has_outgoing_projections=(vertex.population_label
                                          in projecting_labels),
                propagation=self.propagation,
                transport=self.transport)
            self.core_runtimes.append(runtime)
            built += 1
        return built

    # ------------------------------------------------------------------
    # Incremental re-mapping
    # ------------------------------------------------------------------
    def remap(self, reset: bool = False) -> MappingContext:
        """Incrementally re-map after the machine changed underneath us.

        Re-runs the pipeline (fingerprints decide which passes actually
        execute) after a chip condemnation, core fault or lease shrink.
        With ``reset=False`` (the live fault-mitigation path) only the
        displaced vertices get fresh runtimes — surviving cores keep
        their neuron state and simply see the new routes.  With
        ``reset=True`` every runtime is rebuilt from scratch and the
        recording state cleared, so the subsequent run reproduces a cold
        compile on the shrunken machine bit for bit.
        """
        if not self._prepared:
            raise RuntimeError("prepare() the application before remapping")
        ctx = self.pipeline.run()
        self.placement = ctx.placement
        self.keys = ctx.keys
        if reset:
            for runtime in self.core_runtimes:
                runtime.core.stop_timer()
            self.core_runtimes = []
            self._reset_recording()
            self._instantiate_runtimes(ctx)
        else:
            moved = set(ctx.moved_vertices) | set(ctx.removed_vertices)
            kept: List[CoreRuntime] = []
            for runtime in self.core_runtimes:
                if (runtime.vertex in moved
                        or runtime.vertex not in self.placement.locations):
                    runtime.core.stop_timer()
                    continue
                data = ctx.core_data.get((runtime.chip_coordinate,
                                          runtime.core.core_id))
                if data is not None and data is not runtime.synaptic_data:
                    runtime.synaptic_data = data
                    runtime._decoded_rows.clear()
                kept.append(runtime)
            self.core_runtimes = kept
            self._instantiate_runtimes(
                ctx, vertices={v for v in moved
                               if v in self.placement.locations})
        if self.transport == "fabric":
            self._build_fabric(ctx.route_programs)
        return ctx

    # ------------------------------------------------------------------
    # Compiled transport fabric
    # ------------------------------------------------------------------
    def _build_fabric(self, programs: Dict[int, RouteProgram]) -> None:
        """Compile route programs and per-destination delivery legs.

        Transport programs come from the mapping compiler (walked from
        the installed tables); any source vertex the route pass skipped
        (for example a projecting population whose slice has no synapses)
        is compiled here so every sender has a program, even if that
        program just records the packet drop the event path would
        perform.
        """
        self.fabric = TransportFabric(self.machine)
        self.fabric.adopt(programs)
        by_location = {(runtime.chip_coordinate, runtime.core.core_id): runtime
                       for runtime in self.core_runtimes}
        for runtime in self.core_runtimes:
            if not runtime.has_outgoing_projections:
                continue
            key = runtime.key_space.base_key
            program = self.fabric.program_for(key)
            if program is None:
                program = self.fabric.compile_key(runtime.chip_coordinate, key)
            runtime.fabric_program = program
            runtime.fabric_deliveries = [
                delivery for delivery in
                (self._compile_delivery(runtime, by_location.get(
                    (target.chip, target.core_id)), target)
                 for target in program.targets)
                if delivery is not None]

    def _compile_delivery(self, source: CoreRuntime,
                          destination: Optional[CoreRuntime],
                          target: RouteTarget) -> Optional[_FabricDelivery]:
        """Compile one delivery leg: decode the SDRAM block, fix the latency."""
        if destination is None:
            # Delivered to a core no runtime occupies; the event path
            # would raise a packet interrupt that no application handles.
            return None
        chip = self.machine.chips[target.chip]
        clock = destination.core.clock
        costs = destination.core.costs
        distance = self.machine.geometry.distance(source.chip_coordinate,
                                                  target.chip)
        entry = destination.synaptic_data.population_table.entry_for(
            source.key_space.base_key)
        if entry is None:
            # No connectivity block for this key: the event path counts
            # an unmatched packet per delivery.
            latency = (target.latency_us
                       + clock.cycles_to_microseconds(
                           costs.packet_received_cycles))
            return _FabricDelivery(runtime=destination, csr=None,
                                   latency_us=latency, distance=distance,
                                   stride_words=0)
        stride = entry.row_stride_words
        # peek_block: compile-time decoding must not inflate the SDRAM
        # traffic counters — _fabric_deliver charges the simulated reads.
        packed = [chip.sdram.peek_block(
            entry.sdram_address + 4 * row * stride, stride)
            for row in range(entry.n_rows)]
        csr = CSRMatrix.from_packed_rows(packed,
                                         n_post=destination.vertex.n_neurons)
        # Nominal per-packet core-side costs the event path pays between
        # arrival and the deferred-event scatter.
        processing = (clock.cycles_to_microseconds(costs.packet_received_cycles)
                      + destination.core.dma.setup_time_us
                      + chip.sdram.transfer_time(4 * stride)
                      + clock.cycles_to_microseconds(
                          costs.dma_complete_fixed_cycles
                          + costs.dma_complete_cycles_per_word * stride))
        return _FabricDelivery(runtime=destination, csr=csr,
                               latency_us=target.latency_us + processing,
                               distance=distance, stride_words=stride)

    def fabric_send(self, runtime: CoreRuntime, spiking: np.ndarray) -> None:
        """Send one tick's whole spike batch over the compiled fabric."""
        program = runtime.fabric_program
        if program is None:
            return
        n = int(spiking.size)
        self.fabric.account_batch(program, n)
        runtime.core.packets_sent += n
        self.result.packets_sent += n
        send_time = self.kernel.now
        for delivery in runtime.fabric_deliveries:
            self.kernel.schedule_batch(
                delivery.latency_us, self._fabric_deliver, count=n,
                priority=1, label="fabric-deliver", delivery=delivery,
                spiking=spiking, send_time=send_time)

    def _fabric_deliver(self, _kernel: EventKernel,
                        delivery: _FabricDelivery, spiking: np.ndarray,
                        send_time: float) -> None:
        """Scatter one delivered batch into the destination's buffers."""
        destination = delivery.runtime
        core = destination.core
        costs = core.costs
        n = int(spiking.size)
        core.packets_received += n
        core.handler_invocations["packet"] += n
        # The event path resolves every packet through the master
        # population table; replay those lookup counters in bulk too.
        table = destination.synaptic_data.population_table
        table.lookups += n
        if delivery.csr is None:
            table.misses += n
            self.unmatched_packets += n
            core.charge_cycles(n * costs.packet_received_cycles)
            return
        csr = delivery.csr
        slots = csr.synapse_slots(spiking)
        count = int(slots.size)
        charge = 0.0
        if count:
            destination.buffer.add_events(csr.targets[slots],
                                          csr.weights[slots],
                                          csr.delay_ticks[slots])
            charge = float(csr.weights[slots].sum())
        # Bulk accounting parity with the per-packet path: every spike
        # costs a packet handler, a DMA fetch of the stride-padded row
        # and a DMA-complete handler; row processing is charged per
        # synaptic event.
        core.handler_invocations["dma"] += n
        core.charge_cycles(
            n * (costs.packet_received_cycles
                 + costs.dma_complete_fixed_cycles
                 + costs.dma_complete_cycles_per_word * delivery.stride_words)
            + costs.dma_complete_cycles_per_word * count)
        core.dma.completed_transfers += n
        core.dma.total_words_transferred += n * delivery.stride_words
        chip = self.machine.chips[destination.chip_coordinate]
        chip.sdram.total_bytes_read += 4 * n * delivery.stride_words
        chip.system_noc.record_batch(n, 4 * n * delivery.stride_words,
                                     initiator="fabric-dma")
        latency = self.kernel.now - send_time
        self.result.record_delivery_batch(latency, delivery.distance, n)
        self.result.synaptic_events += count
        self.result.delivered_charge_na += charge

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def launch(self, duration_ms: float) -> float:
        """Start every core's timer and return the simulated end time.

        The timers are staggered slightly so the machine is not
        artificially lock-stepped (bounded asynchrony).  ``launch`` does
        not advance the kernel: several applications on one machine (for
        example concurrent allocation jobs on disjoint leases) can all be
        launched and then driven together — see :func:`run_concurrently`.
        """
        if not self._prepared:
            self.prepare()
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        for runtime in self.core_runtimes:
            # The offset is derived from the core's location (stream 1 of
            # the per-core generator family), so the stagger pattern is
            # independent of runtime construction order and survives
            # incremental re-maps.
            offset = 0.0
            if self.stagger_us > 0:
                offset = float(core_rng(
                    self.seed, runtime.chip_coordinate.x,
                    runtime.chip_coordinate.y, runtime.core.core_id,
                    stream=1).uniform(0.0, self.stagger_us))
            runtime.core.start_timer(TIMER_PERIOD_US, start_offset_us=offset)
        return self.kernel.now + milliseconds(duration_ms)

    def halt(self) -> None:
        """Stop every core's millisecond timer."""
        for runtime in self.core_runtimes:
            runtime.core.stop_timer()

    def collect(self, duration_ms: float) -> ApplicationResult:
        """Finalise the result bookkeeping after a (halted) run."""
        self.result.duration_ms += duration_ms
        self.result.packets_dropped = self.machine.total_dropped_packets()
        self.result.emergency_invocations = self.machine.total_emergency_invocations()
        return self.result

    def run(self, duration_ms: float) -> ApplicationResult:
        """Run the application for ``duration_ms`` of biological time."""
        end_time = self.launch(duration_ms)
        self.kernel.run_until(end_time)
        self.halt()
        # Let in-flight packets and DMAs drain so latency statistics are
        # complete, without advancing the timers any further.
        self.kernel.run(max_events=1_000_000)
        return self.collect(duration_ms)

    # ------------------------------------------------------------------
    # Recording hooks (called by the core runtimes)
    # ------------------------------------------------------------------
    def record_spikes(self, label: str, vertex: Vertex, time_ms: float,
                      local_indices: np.ndarray) -> None:
        """Record spikes of a vertex in global population numbering."""
        counts = self.result.spike_counts[label]
        global_indices = local_indices + vertex.slice_start
        counts[global_indices] += 1
        if label in self.result.spikes:
            self.result.spikes[label].extend(
                (time_ms, int(i)) for i in global_indices)


def run_concurrently(applications: List["NeuralApplication"],
                     duration_ms: float) -> List[ApplicationResult]:
    """Run several applications side by side on one event kernel.

    All applications must share the same kernel (the normal situation for
    allocation jobs holding disjoint leases of one machine).  Every
    application is launched first, the shared kernel is advanced once to
    the common end time, and only then are the timers halted and the
    queues drained — so the workloads genuinely interleave in simulated
    time instead of running back to back.
    """
    if not applications:
        return []
    kernel = applications[0].kernel
    for application in applications[1:]:
        if application.kernel is not kernel:
            raise ValueError("concurrent applications must share one "
                             "event kernel")
    end_times = [application.launch(duration_ms)
                 for application in applications]
    kernel.run_until(max(end_times))
    for application in applications:
        application.halt()
    kernel.run(max_events=1_000_000)
    return [application.collect(duration_ms)
            for application in applications]
