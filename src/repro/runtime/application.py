"""The event-driven real-time neural application (Figure 7).

Every active application core executes the same three interrupt-driven
tasks:

* **Packet received** (priority 1): identify the spiking neuron from the
  packet key, look it up in the master population table and schedule a DMA
  of the corresponding synaptic row from SDRAM.
* **DMA complete** (priority 2): process the fetched synaptic row — defer
  each synapse's charge into the input ring buffer at the slot selected by
  its programmable delay.
* **Millisecond timer** (priority 3): drain the current ring-buffer slot,
  integrate the neuron equations and emit a multicast packet for every
  neuron that fired.

When all tasks are complete the core sleeps in the low-power
wait-for-interrupt state.  :class:`NeuralApplication` wires a
population/projection network onto a machine using the mapping layer and
runs it in (simulated) biological real time; spike-delivery latencies are
recorded so experiments E8 and E10 can check the paper's sub-millisecond
delivery claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.dma import DMARequest
from repro.core.event_kernel import EventKernel, milliseconds
from repro.core.geometry import ChipCoordinate
from repro.core.machine import SpiNNakerMachine
from repro.core.packets import MulticastPacket
from repro.core.processor import ProcessorSubsystem
from repro.mapping.keys import KeyAllocator, KeySpace
from repro.mapping.placement import Placement, Placer, Vertex
from repro.mapping.routing_generator import RoutingTableGenerator
from repro.mapping.synaptic_matrix import CoreSynapticData, SynapticMatrixBuilder
from repro.neuron.engine import decode_packed_row
from repro.neuron.network import Network
from repro.neuron.population import (
    Population,
    SpikeSourceArray,
    SpikeSourcePoisson,
)
from repro.neuron.synapse import MAX_DELAY_TICKS, DeferredEventBuffer, SynapticRow

#: The biological real-time tick of the application model.
TIMER_PERIOD_US = 1000.0


@dataclass
class ApplicationResult:
    """Spike records and timing statistics from an on-machine run."""

    duration_ms: float
    spikes: Dict[str, List[Tuple[float, int]]] = field(default_factory=dict)
    spike_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    #: Per-delivery latency samples in microseconds (send to processing).
    delivery_latencies_us: List[float] = field(default_factory=list)
    #: Per-delivery hop distances, aligned with ``delivery_latencies_us``.
    delivery_distances: List[int] = field(default_factory=list)
    packets_sent: int = 0
    packets_dropped: int = 0
    emergency_invocations: int = 0

    def total_spikes(self, label: Optional[str] = None) -> int:
        """Total spikes of one population, or of all populations."""
        if label is not None:
            return int(self.spike_counts[label].sum())
        return int(sum(c.sum() for c in self.spike_counts.values()))

    def mean_rate_hz(self, label: str) -> float:
        """Mean firing rate of a population over the run."""
        seconds = self.duration_ms / 1000.0
        if seconds <= 0:
            return 0.0
        return float(self.spike_counts[label].mean() / seconds)

    def max_delivery_latency_us(self) -> float:
        """Worst spike-delivery latency observed (0 if nothing delivered)."""
        return max(self.delivery_latencies_us, default=0.0)

    def mean_delivery_latency_us(self) -> float:
        """Mean spike-delivery latency."""
        if not self.delivery_latencies_us:
            return 0.0
        return float(np.mean(self.delivery_latencies_us))

    def within_deadline_fraction(self, deadline_us: float = 1000.0) -> float:
        """Fraction of deliveries completed within ``deadline_us``."""
        if not self.delivery_latencies_us:
            return 1.0
        hits = sum(1 for latency in self.delivery_latencies_us
                   if latency <= deadline_us)
        return hits / len(self.delivery_latencies_us)


class CoreRuntime:
    """The application kernel running on one core (one placed vertex)."""

    def __init__(self, application: "NeuralApplication", core: ProcessorSubsystem,
                 chip_coordinate: ChipCoordinate, vertex: Vertex,
                 population: Population, key_space: KeySpace,
                 synaptic_data: CoreSynapticData,
                 rng: np.random.Generator,
                 has_outgoing_projections: bool = True,
                 propagation: str = "csr") -> None:
        self.application = application
        self.propagation = propagation
        self.core = core
        self.chip_coordinate = chip_coordinate
        self.vertex = vertex
        self.population = population
        self.key_space = key_space
        self.synaptic_data = synaptic_data
        self.rng = rng
        #: Vertices of populations with no outgoing projections have no
        #: routing entries for their keys; the mapping layer therefore does
        #: not emit spike packets for them (their spikes are still recorded
        #: locally), mirroring the real tool-chain.
        self.has_outgoing_projections = has_outgoing_projections

        self.is_source = population.is_spike_source
        self.neuron_state = None
        if not self.is_source:
            self.neuron_state = _VertexState(population, vertex,
                                             application.timestep_ms, rng)
        self.buffer = DeferredEventBuffer(vertex.n_neurons, MAX_DELAY_TICKS)
        self.tick = 0
        #: CSR fast path: synaptic rows decoded once per SDRAM address.  A
        #: row is re-fetched by DMA every time its source neuron spikes but
        #: its contents only change through plasticity write-back (which
        #: this runtime does not model), so the decoded arrays are reused;
        #: DMA/processing costs are still charged per fetch.
        self._decoded_rows: Dict[int, Tuple[int, np.ndarray, np.ndarray,
                                            np.ndarray]] = {}

        core.on_packet(self._on_packet)
        core.on_dma_complete(self._on_dma_complete)
        core.on_timer(self._on_timer)
        core.start_application()

    # ------------------------------------------------------------------
    # Figure 7, priority 1: packet received
    # ------------------------------------------------------------------
    def _on_packet(self, packet: MulticastPacket) -> None:
        lookup = self.synaptic_data.population_table.lookup(packet.key)
        if lookup is None:
            # No connectivity block for this key: a routing-table error.
            self.application.unmatched_packets += 1
            return
        address, row_words = lookup
        self.core.dma.read(address, row_words,
                           on_complete=self.core.dma_completed,
                           context=packet)

    # ------------------------------------------------------------------
    # Figure 7, priority 2: DMA complete
    # ------------------------------------------------------------------
    def _on_dma_complete(self, request: DMARequest) -> None:
        packet: MulticastPacket = request.context
        if self.propagation == "csr":
            # Fast path: decode the packed row straight into flat arrays
            # (cached per SDRAM address) and defer the whole row with one
            # vectorized scatter.
            decoded = self._decoded_rows.get(request.sdram_address)
            if decoded is None:
                decoded = decode_packed_row(request.data)
                self._decoded_rows[request.sdram_address] = decoded
            count, targets, weights, delays = decoded
            self.core.charge_cycles(
                self.core.costs.dma_complete_cycles_per_word * count)
            if count:
                self.buffer.add_events(targets, weights, delays)
        else:
            row = SynapticRow.unpack(packet.key, request.data)
            self.core.charge_cycles(
                self.core.costs.dma_complete_cycles_per_word * len(row))
            for synapse in row:
                self.buffer.add_synapse(synapse)
        latency = self.application.kernel.now - packet.timestamp
        self.application.result.delivery_latencies_us.append(latency)
        if packet.source is not None:
            distance = self.application.machine.geometry.distance(
                packet.source, self.chip_coordinate)
            self.application.result.delivery_distances.append(distance)

    # ------------------------------------------------------------------
    # Figure 7, priority 3: millisecond timer
    # ------------------------------------------------------------------
    def _on_timer(self) -> None:
        time_ms = self.tick * self.application.timestep_ms
        if self.is_source:
            spikes = self._source_spikes()
        else:
            inputs = self.buffer.drain()
            state = self.neuron_state
            state.population_state.inject_synaptic_input(inputs)
            bias = None
            if self.population.bias_current_na:
                bias = np.full(self.vertex.n_neurons,
                               self.population.bias_current_na)
            spikes = state.population_state.step(bias)
            self.core.charge_cycles(
                self.core.costs.timer_cycles_per_neuron * self.vertex.n_neurons)

        spiking = np.flatnonzero(spikes)
        if spiking.size:
            self.application.record_spikes(self.population.label, self.vertex,
                                           time_ms, spiking)
            if self.has_outgoing_projections:
                for local_index in spiking:
                    packet = MulticastPacket(
                        key=self.key_space.key_for(int(local_index)),
                        timestamp=self.application.kernel.now,
                        source=self.chip_coordinate)
                    self.core.send_multicast(packet)
                    self.application.result.packets_sent += 1
        self.tick += 1

    def _source_spikes(self) -> np.ndarray:
        population = self.population
        if isinstance(population, SpikeSourcePoisson):
            probability = SpikeSourcePoisson.spike_probability(
                population.rate_hz, self.application.timestep_ms)
            return self.rng.random(self.vertex.n_neurons) < probability
        if isinstance(population, SpikeSourceArray):
            mask = population.spikes_for_tick(self.tick,
                                              self.application.timestep_ms)
            return mask[self.vertex.slice_start:self.vertex.slice_stop]
        return np.zeros(self.vertex.n_neurons, dtype=bool)


class _VertexState:
    """Neuron-model state for the slice of a population on one core."""

    def __init__(self, population: Population, vertex: Vertex,
                 timestep_ms: float, rng: np.random.Generator) -> None:
        # The slice reuses the population's model and parameters but only
        # instantiates the vertex's neurons.
        sliced = Population(vertex.n_neurons, population.parameters,
                            label="%s-state-%d" % (population.label, vertex.index))
        self.population_state = sliced.build_state(timestep_ms, rng)


class NeuralApplication:
    """Maps a network onto a machine and runs it under the event kernel."""

    def __init__(self, machine: SpiNNakerMachine, network: Network,
                 max_neurons_per_core: int = 256,
                 placement_strategy: str = "locality",
                 seed: Optional[int] = None,
                 propagation: str = "csr") -> None:
        if propagation not in ("csr", "reference"):
            raise ValueError("propagation must be 'csr' or 'reference', "
                             "got %r" % (propagation,))
        self.machine = machine
        self.network = network
        self.kernel: EventKernel = machine.kernel
        self.timestep_ms = network.timestep_ms
        self.seed = seed if seed is not None else (network.seed or 0)
        #: Seed key used for connectivity expansion.  Unlike ``self.seed``
        #: (which must be concrete to derive per-core generators), this
        #: preserves ``None`` for an unseeded network so the mapping
        #: layers share the host simulator's unseeded cache entry instead
        #: of building an independent expansion under key 0.
        self.expansion_seed = seed if seed is not None else network.seed
        self.max_neurons_per_core = max_neurons_per_core
        self.placement_strategy = placement_strategy
        self.propagation = propagation

        self.placement: Optional[Placement] = None
        self.keys: Optional[KeyAllocator] = None
        self.core_runtimes: List[CoreRuntime] = []
        self.result = ApplicationResult(duration_ms=0.0)
        self.unmatched_packets = 0
        self._prepared = False

    # ------------------------------------------------------------------
    # Mapping and configuration
    # ------------------------------------------------------------------
    def prepare(self, broadcast_routing: bool = False) -> None:
        """Run the full mapping tool-chain and configure every core.

        ``broadcast_routing`` selects the bus-style AER baseline of
        experiment E11 instead of multicast trees.
        """
        placer = Placer(self.machine, self.max_neurons_per_core,
                        self.placement_strategy)
        self.placement = placer.place(self.network)
        self.keys = KeyAllocator(self.placement)

        generator = RoutingTableGenerator(self.machine, self.placement, self.keys)
        if broadcast_routing:
            generator.generate_broadcast(self.network,
                                         seed=self.expansion_seed)
        else:
            generator.generate(self.network, seed=self.expansion_seed)

        builder = SynapticMatrixBuilder(self.machine, self.placement, self.keys)
        core_data = builder.build(self.network, seed=self.expansion_seed)

        rng = np.random.default_rng(self.seed)
        populations = {p.label: p for p in self.network.populations}
        projecting_labels = {projection.pre.label
                             for projection in self.network.projections}
        for vertex, (chip_coordinate, core_id) in self.placement.locations.items():
            chip = self.machine.chips[chip_coordinate]
            core = chip.cores[core_id]
            if not core.is_available:
                continue
            if core.state.value == "off":
                core.run_self_test(True)
            data = core_data[(chip_coordinate, core_id)]
            runtime = CoreRuntime(
                application=self, core=core, chip_coordinate=chip_coordinate,
                vertex=vertex, population=populations[vertex.population_label],
                key_space=self.keys.key_space(vertex), synaptic_data=data,
                rng=np.random.default_rng(rng.integers(0, 2 ** 31)),
                has_outgoing_projections=(vertex.population_label
                                          in projecting_labels),
                propagation=self.propagation)
            self.core_runtimes.append(runtime)

        for population in self.network.populations:
            self.result.spike_counts[population.label] = np.zeros(
                population.size, dtype=int)
            if population.record_spikes:
                self.result.spikes[population.label] = []
        self._prepared = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def launch(self, duration_ms: float) -> float:
        """Start every core's timer and return the simulated end time.

        The timers are staggered slightly so the machine is not
        artificially lock-stepped (bounded asynchrony).  ``launch`` does
        not advance the kernel: several applications on one machine (for
        example concurrent allocation jobs on disjoint leases) can all be
        launched and then driven together — see :func:`run_concurrently`.
        """
        if not self._prepared:
            self.prepare()
        if duration_ms < 0:
            raise ValueError("duration must be non-negative")
        stagger = np.random.default_rng(self.seed)
        for runtime in self.core_runtimes:
            offset = float(stagger.uniform(0.0, 10.0))
            runtime.core.start_timer(TIMER_PERIOD_US, start_offset_us=offset)
        return self.kernel.now + milliseconds(duration_ms)

    def halt(self) -> None:
        """Stop every core's millisecond timer."""
        for runtime in self.core_runtimes:
            runtime.core.stop_timer()

    def collect(self, duration_ms: float) -> ApplicationResult:
        """Finalise the result bookkeeping after a (halted) run."""
        self.result.duration_ms += duration_ms
        self.result.packets_dropped = self.machine.total_dropped_packets()
        self.result.emergency_invocations = self.machine.total_emergency_invocations()
        return self.result

    def run(self, duration_ms: float) -> ApplicationResult:
        """Run the application for ``duration_ms`` of biological time."""
        end_time = self.launch(duration_ms)
        self.kernel.run_until(end_time)
        self.halt()
        # Let in-flight packets and DMAs drain so latency statistics are
        # complete, without advancing the timers any further.
        self.kernel.run(max_events=1_000_000)
        return self.collect(duration_ms)

    # ------------------------------------------------------------------
    # Recording hooks (called by the core runtimes)
    # ------------------------------------------------------------------
    def record_spikes(self, label: str, vertex: Vertex, time_ms: float,
                      local_indices: np.ndarray) -> None:
        """Record spikes of a vertex in global population numbering."""
        counts = self.result.spike_counts[label]
        global_indices = local_indices + vertex.slice_start
        counts[global_indices] += 1
        if label in self.result.spikes:
            self.result.spikes[label].extend(
                (time_ms, int(i)) for i in global_indices)


def run_concurrently(applications: List["NeuralApplication"],
                     duration_ms: float) -> List[ApplicationResult]:
    """Run several applications side by side on one event kernel.

    All applications must share the same kernel (the normal situation for
    allocation jobs holding disjoint leases of one machine).  Every
    application is launched first, the shared kernel is advanced once to
    the common end time, and only then are the timers halted and the
    queues drained — so the workloads genuinely interleave in simulated
    time instead of running back to back.
    """
    if not applications:
        return []
    kernel = applications[0].kernel
    for application in applications[1:]:
        if application.kernel is not kernel:
            raise ValueError("concurrent applications must share one "
                             "event kernel")
    end_times = [application.launch(duration_ms)
                 for application in applications]
    kernel.run_until(max(end_times))
    for application in applications:
        application.halt()
    kernel.run(max_events=1_000_000)
    return [application.collect(duration_ms)
            for application in applications]
