"""Flood-fill application loading (Section 5.2, ref [15]).

"Now the system is ready for an application, which is loaded using
flood-fill techniques and nn packets.  The flood-fill mechanism has been
shown to give load times almost independent of the size of the machine,
with trade-offs between load time and the degree of fault-tolerance, which
can be controlled by the number of times a node receives each component of
the application."

The loader below injects each block of the application image at the origin
chip; every chip rebroadcasts a block to all six neighbours the first
``redundancy`` times it receives it.  Because rebroadcast is concurrent the
fill front sweeps the torus once per block, so total load time is set by
the image size plus a diameter term — nearly flat in machine size — while
raising ``redundancy`` multiplies the number of copies each chip receives
(fault tolerance) at a modest cost in time and a linear cost in nn traffic.
Experiment E7 sweeps both dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.event_kernel import EventKernel
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine
from repro.core.packets import NearestNeighbourPacket, NNCommand


@dataclass(frozen=True)
class ApplicationImage:
    """The application binary to load: ``n_blocks`` blocks of ``block_words``."""

    n_blocks: int = 8
    block_words: int = 256
    name: str = "application"

    def __post_init__(self) -> None:
        if self.n_blocks <= 0 or self.block_words <= 0:
            raise ValueError("image dimensions must be positive")

    @property
    def total_words(self) -> int:
        """Total size of the image in 32-bit words."""
        return self.n_blocks * self.block_words

    @property
    def total_bytes(self) -> int:
        """Total size of the image in bytes."""
        return self.total_words * 4


@dataclass
class FloodFillResult:
    """Outcome of one flood-fill load."""

    machine_size: Tuple[int, int]
    n_blocks: int
    redundancy: int
    load_time_us: float = 0.0
    chips_complete: int = 0
    n_chips: int = 0
    nn_packets_sent: int = 0
    #: Minimum over chips of the mean number of copies of each block seen.
    min_copies_received: float = 0.0
    mean_copies_received: float = 0.0

    @property
    def complete(self) -> bool:
        """True if every booted chip received the whole image."""
        return self.chips_complete == self.n_chips


class FloodFillLoader:
    """Loads an application image into every chip using nn flood-fill."""

    def __init__(self, machine: SpiNNakerMachine, redundancy: int = 1,
                 block_transfer_time_us: float = 10.0) -> None:
        if redundancy < 1:
            raise ValueError("redundancy must be at least 1")
        if block_transfer_time_us <= 0:
            raise ValueError("block transfer time must be positive")
        self.machine = machine
        self.kernel: EventKernel = machine.kernel
        self.redundancy = redundancy
        self.block_transfer_time_us = block_transfer_time_us
        #: chip -> block index -> number of copies received.
        self.receptions: Dict[ChipCoordinate, Dict[int, int]] = {}
        self._completion_time: Dict[ChipCoordinate, float] = {}
        self._image: Optional[ApplicationImage] = None
        self._packets_sent = 0

    # ------------------------------------------------------------------
    # NN handling
    # ------------------------------------------------------------------
    def _install_handlers(self) -> None:
        for coordinate, chip in self.machine.chips.items():
            chip.on_nearest_neighbour(self._make_handler(coordinate))

    def _make_handler(self, coordinate: ChipCoordinate):
        def handler(packet: NearestNeighbourPacket, _arrival: Direction) -> None:
            if packet.command is not NNCommand.FLOOD_FILL_DATA:
                return
            chip = self.machine.chips[coordinate]
            if not chip.state.booted:
                return
            block_index = packet.payload[0]
            counts = self.receptions.setdefault(coordinate, {})
            counts[block_index] = counts.get(block_index, 0) + 1
            if counts[block_index] <= self.redundancy:
                # Re-broadcast: the block fans out again from this chip.
                self._broadcast_block(coordinate, block_index)
            self._check_complete(coordinate)
        return handler

    def _broadcast_block(self, coordinate: ChipCoordinate,
                         block_index: int) -> None:
        assert self._image is not None
        # A block occupies the link for its serialisation time; model that
        # as a delay before the neighbours' handlers run.
        def send(_kernel: EventKernel) -> None:
            packet = NearestNeighbourPacket(
                command=NNCommand.FLOOD_FILL_DATA,
                payload=(block_index, self._image.block_words),
                timestamp=self.kernel.now)
            for direction in Direction:
                if self.machine.send_nearest_neighbour(coordinate, direction,
                                                       packet):
                    self._packets_sent += 1
        self.kernel.schedule_after(self.block_transfer_time_us, send,
                                   label="flood-fill-block")

    def _check_complete(self, coordinate: ChipCoordinate) -> None:
        assert self._image is not None
        if coordinate in self._completion_time:
            return
        counts = self.receptions.get(coordinate, {})
        if len(counts) == self._image.n_blocks:
            self._completion_time[coordinate] = self.kernel.now
            chip = self.machine.chips[coordinate]
            chip.state.application_loaded = True
            # Model loading the code into every working core's ITCM.
            code_bytes = min(self._image.total_bytes, 32 * 1024)
            for core in chip.working_cores:
                core.load_application(code_bytes)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def load(self, image: ApplicationImage) -> FloodFillResult:
        """Flood-fill ``image`` into every booted chip and report statistics."""
        self._image = image
        self.receptions = {}
        self._completion_time = {}
        self._packets_sent = 0
        self._install_handlers()

        origin = self.machine.ethernet_chips[0]
        origin_chip = self.machine.chips[origin]
        if not origin_chip.state.booted:
            raise RuntimeError("the origin chip has not booted; run the boot "
                               "controller before loading an application")

        start_time = self.kernel.now
        # The host streams the blocks into the origin chip over Ethernet;
        # each block then flood-fills outwards while the next is arriving.
        for block_index in range(image.n_blocks):
            inject_time = start_time + (block_index + 1) * self.block_transfer_time_us
            self.kernel.schedule(
                inject_time, self._inject_block, label="flood-fill-inject",
                origin=origin, block_index=block_index)
        self.kernel.run()

        booted = [coordinate for coordinate, chip in self.machine.chips.items()
                  if chip.state.booted]
        complete = [c for c in booted if c in self._completion_time]
        copies: List[float] = []
        for coordinate in booted:
            counts = self.receptions.get(coordinate, {})
            if counts:
                copies.append(sum(counts.values()) / image.n_blocks)
            else:
                copies.append(0.0)
        finish = max(self._completion_time.values()) if self._completion_time else start_time

        return FloodFillResult(
            machine_size=(self.machine.config.width, self.machine.config.height),
            n_blocks=image.n_blocks,
            redundancy=self.redundancy,
            load_time_us=finish - start_time,
            chips_complete=len(complete),
            n_chips=len(booted),
            nn_packets_sent=self._packets_sent,
            min_copies_received=min(copies) if copies else 0.0,
            mean_copies_received=(sum(copies) / len(copies)) if copies else 0.0)

    def _inject_block(self, _kernel: EventKernel, origin: ChipCoordinate,
                      block_index: int) -> None:
        counts = self.receptions.setdefault(origin, {})
        counts[block_index] = counts.get(block_index, 0) + 1
        self._broadcast_block(origin, block_index)
        self._check_complete(origin)
