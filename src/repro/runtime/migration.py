"""Run-time functional migration (abstract; Sections 2.2 and 5.2).

The abstract promises "run-time support for functional migration and
real-time fault mitigation": when a core (or a whole chip) becomes
suspect, the work mapped onto it — the neuron state, the synaptic data
and the routing entries that deliver spikes to it — is moved to a spare
core elsewhere and the suspect core is mapped out.  The virtualised-
topology principle (Section 3.2) is what makes this cheap: a neuron's
*logical* identity (its routing key) never changes, so only the routing
tables and the local data need to follow it to its new physical home.

:class:`FunctionalMigrator` implements that operation on top of the
pass-based mapping compiler (:mod:`repro.compile`):

* it finds spare application cores,
* rebinds the evacuated vertices to them in the placement,
* requests an *incremental* re-map from the pipeline — same keys, new
  trees and synaptic blocks for just the moved vertices — and
* when attached to a running :class:`~repro.runtime.application.NeuralApplication`,
  rebuilds the affected core runtimes so the application can simply be
  resumed.

The suspect cores are disabled afterwards, which is the "mapping out" the
monitor processor performs in the real system.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.compile import MappingPipeline
from repro.core.geometry import ChipCoordinate
from repro.core.machine import SpiNNakerMachine
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placement, Vertex
from repro.neuron.network import Network
from repro.neuron.population import core_rng
from repro.runtime.application import CoreRuntime, NeuralApplication

__all__ = [
    "MigrationError",
    "MigrationReport",
    "FunctionalMigrator",
]


class MigrationError(Exception):
    """Raised when a migration cannot be carried out (e.g. no spare cores)."""


@dataclass
class MigrationReport:
    """What a migration pass did."""

    #: (vertex, old (chip, core), new (chip, core)) for every moved vertex.
    moves: List[Tuple[Vertex, Tuple[ChipCoordinate, int],
                      Tuple[ChipCoordinate, int]]] = field(default_factory=list)
    cores_mapped_out: List[Tuple[ChipCoordinate, int]] = field(default_factory=list)
    routing_entries_before: int = 0
    routing_entries_after: int = 0
    runtimes_rebuilt: int = 0

    @property
    def n_moves(self) -> int:
        """Number of vertices that changed core."""
        return len(self.moves)


class FunctionalMigrator:
    """Move placed vertices away from suspect cores onto spares.

    Parameters
    ----------
    machine, network, placement, keys:
        The mapping state produced by the tool-chain (``Placer`` /
        ``KeyAllocator``).  The placement is modified in place.
    application:
        Optional prepared :class:`NeuralApplication`; when given, the
        migrator also rebuilds the core runtimes of moved vertices so the
        application can be resumed after the migration.
    seed:
        Seed for the connectivity regeneration; must match the seed used
        when the network was originally mapped so the same synapses are
        rebuilt.
    """

    def __init__(self, machine: SpiNNakerMachine, network: Network,
                 placement: Placement, keys: KeyAllocator,
                 application: Optional[NeuralApplication] = None,
                 seed: Optional[int] = None) -> None:
        self.machine = machine
        self.network = network
        self.placement = placement
        self.keys = keys
        self.application = application
        if seed is not None:
            self.seed = seed
        elif application is not None:
            self.seed = application.seed
        else:
            self.seed = network.seed or 0
        self._own_pipeline: Optional[MappingPipeline] = None

    def _pipeline(self) -> MappingPipeline:
        """The mapping pipeline the migration re-maps through.

        A prepared application's own pipeline when one is attached (its
        artifact caches make the re-map incremental); otherwise a
        standalone pipeline adopting the externally built placement and
        keys, whose first re-map rebuilds the tables once and is
        incremental from then on.
        """
        if (self.application is not None
                and self.application.pipeline is not None):
            return self.application.pipeline
        if self._own_pipeline is None:
            self._own_pipeline = MappingPipeline.from_existing(
                self.machine, self.network, placement=self.placement,
                keys=self.keys, seed=self.seed, expansion_seed=self.seed)
        return self._own_pipeline

    @classmethod
    def for_application(cls, application: NeuralApplication) -> "FunctionalMigrator":
        """Build a migrator bound to a prepared application."""
        if application.placement is None or application.keys is None:
            raise MigrationError("the application has not been prepared yet")
        return cls(application.machine, application.network,
                   application.placement, application.keys,
                   application=application, seed=application.seed)

    # ------------------------------------------------------------------
    # Spare-core discovery
    # ------------------------------------------------------------------
    def occupied_slots(self) -> Dict[Tuple[ChipCoordinate, int], Vertex]:
        """The (chip, core) slots currently holding a vertex."""
        return {location: vertex
                for vertex, location in self.placement.locations.items()}

    def spare_slots(self) -> List[Tuple[ChipCoordinate, int]]:
        """Available application cores not holding any vertex.

        Spare slots are working cores that are neither the chip's monitor
        nor already occupied, in raster order.
        """
        occupied = set(self.occupied_slots())
        spares: List[Tuple[ChipCoordinate, int]] = []
        for coordinate in self.machine.geometry.all_chips():
            chip = self.machine.chips[coordinate]
            monitor = chip.monitor_core_id if chip.monitor_core_id is not None else 0
            for core in chip.cores:
                slot = (coordinate, core.core_id)
                if core.core_id == monitor or slot in occupied:
                    continue
                if not core.is_available and core.state.value in ("failed",
                                                                  "disabled"):
                    continue
                spares.append(slot)
        return spares

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def evacuate_cores(self, suspects: Sequence[Tuple[ChipCoordinate, int]],
                       prefer_same_chip: bool = True) -> MigrationReport:
        """Move every vertex off the suspect cores and map the cores out.

        Raises
        ------
        MigrationError
            If there are not enough spare cores for the displaced vertices.
        """
        report = MigrationReport()
        report.routing_entries_before = self._total_routing_entries()

        suspects = list(dict.fromkeys(suspects))
        occupied = self.occupied_slots()
        displaced = [(slot, occupied[slot]) for slot in suspects
                     if slot in occupied]
        spare = [slot for slot in self.spare_slots() if slot not in suspects]
        if len(displaced) > len(spare):
            raise MigrationError(
                "%d vertices displaced but only %d spare cores available"
                % (len(displaced), len(spare)))

        for (old_slot, vertex) in displaced:
            new_slot = self._choose_spare(old_slot, spare, prefer_same_chip)
            spare.remove(new_slot)
            self.placement.locations[vertex] = new_slot
            report.moves.append((vertex, old_slot, new_slot))

        for chip_coordinate, core_id in suspects:
            core = self.machine.chips[chip_coordinate].cores[core_id]
            if core.is_available:
                core.disable()
            report.cores_mapped_out.append((chip_coordinate, core_id))

        if report.moves:
            # Request an incremental re-map from the mapping compiler:
            # only the moved vertices' trees, tables and synaptic blocks
            # are rebuilt (and the keys stay put, as migration requires).
            context = self._pipeline().remap_moves(
                {vertex: new_slot
                 for vertex, _old, new_slot in report.moves})
            if self.application is not None:
                report.runtimes_rebuilt = self._rebuild_runtimes(
                    [move[0] for move in report.moves], context.core_data)
                if self.application.transport == "fabric":
                    # Delivery legs reference runtime objects; recompile
                    # them so no leg points at an evacuated runtime.
                    self.application._build_fabric(context.route_programs)
        report.routing_entries_after = self._total_routing_entries()
        return report

    def evacuate_core(self, coordinate: ChipCoordinate,
                      core_id: int) -> MigrationReport:
        """Move the vertex (if any) off one core and map the core out."""
        return self.evacuate_cores([(coordinate, core_id)])

    def evacuate_chip(self, coordinate: ChipCoordinate) -> MigrationReport:
        """Move every vertex off one chip (for example ahead of power-down).

        Every application core of the chip is treated as suspect — not just
        the occupied ones — so displaced vertices cannot be re-placed onto a
        sibling core of the same chip.  The monitor core is left running to
        coordinate the power-down itself.
        """
        chip = self.machine.chips[coordinate]
        monitor = chip.monitor_core_id if chip.monitor_core_id is not None else 0
        suspects = [(coordinate, core.core_id) for core in chip.cores
                    if core.core_id != monitor]
        return self.evacuate_cores(suspects, prefer_same_chip=False)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _choose_spare(self, old_slot: Tuple[ChipCoordinate, int],
                      spare: List[Tuple[ChipCoordinate, int]],
                      prefer_same_chip: bool) -> Tuple[ChipCoordinate, int]:
        old_chip, _old_core = old_slot
        if prefer_same_chip:
            for slot in spare:
                if slot[0] == old_chip:
                    return slot
        # Otherwise the nearest chip (in hop distance) with a spare core.
        return min(spare, key=lambda slot: self.machine.geometry.distance(
            old_chip, slot[0]))

    def _total_routing_entries(self) -> int:
        return sum(len(chip.router.table) for chip in self.machine)

    def _rebuild_runtimes(self, moved: Sequence[Vertex], core_data) -> int:
        """Rebind the core runtimes of moved vertices to their new cores."""
        application = self.application
        moved_set = set(moved)
        populations = {p.label: p for p in self.network.populations}
        projecting = {projection.pre.label
                      for projection in self.network.projections}
        kept: List[CoreRuntime] = [runtime for runtime in application.core_runtimes
                                   if runtime.vertex not in moved_set]
        rebuilt = 0
        for vertex in moved:
            chip_coordinate, core_id = self.placement.location_of(vertex)
            chip = self.machine.chips[chip_coordinate]
            core = chip.cores[core_id]
            if core.state.value == "off":
                core.run_self_test(True)
            runtime = CoreRuntime(
                application=application, core=core,
                chip_coordinate=chip_coordinate, vertex=vertex,
                population=populations[vertex.population_label],
                key_space=self.keys.key_space(vertex),
                synaptic_data=core_data[(chip_coordinate, core_id)],
                rng=core_rng(self.seed, chip_coordinate.x, chip_coordinate.y,
                             core_id),
                has_outgoing_projections=(vertex.population_label in projecting),
                propagation=application.propagation,
                transport=application.transport)
            kept.append(runtime)
            rebuilt += 1
        application.core_runtimes = kept
        return rebuilt
