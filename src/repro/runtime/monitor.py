"""Monitor Processor services (Sections 5.2 and 5.3).

One core per chip is set aside as the Monitor Processor.  During normal
operation it is the destination of the router's notifications — emergency-
routing invocations and dropped packets — and it is responsible for
"additional intervention ... to avoid congestion recurring, or to find a
permanent rerouting around a failed link", for re-issuing recovered
packets, and for mapping out cores that are suspected of being faulty
(real-time fault mitigation / functional migration).

The :class:`MonitorService` below implements those responsibilities against
the machine model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Set, Tuple

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine
from repro.core.packets import EmergencyState, MulticastPacket
from repro.router.routing_table import RoutingEntry


@dataclass
class MitigationReport:
    """Summary of the monitor actions taken across the machine."""

    emergency_notifications: int = 0
    dropped_packet_notifications: int = 0
    links_rerouted: int = 0
    entries_rewritten: int = 0
    packets_reissued: int = 0
    cores_disabled: int = 0
    chips_condemned: int = 0
    #: Incremental re-maps requested from attached applications'
    #: mapping pipelines after chip condemnations.
    remaps_requested: int = 0


class MonitorService:
    """Machine-wide view of the per-chip Monitor Processors."""

    def __init__(self, machine: SpiNNakerMachine,
                 emergency_threshold: int = 5) -> None:
        if emergency_threshold < 1:
            raise ValueError("emergency_threshold must be at least 1")
        self.machine = machine
        #: Number of emergency notifications for one link after which the
        #: monitor performs a permanent reroute.
        self.emergency_threshold = emergency_threshold
        self.report = MitigationReport()
        self._emergency_counts: Dict[Tuple[ChipCoordinate, Direction], int] = {}
        self._chip_death_listeners: List[Callable[[ChipCoordinate], None]] = []
        self._condemned_chips: Set[ChipCoordinate] = set()

    # ------------------------------------------------------------------
    # Mailbox processing
    # ------------------------------------------------------------------
    def process_mailboxes(self, reissue_dropped: bool = True) -> MitigationReport:
        """Drain every chip's monitor mailbox and take the configured actions.

        Emergency-routing notifications are counted per link; once a link
        exceeds the threshold a permanent reroute is installed.  Dropped
        packets are re-issued into the fabric when ``reissue_dropped``.
        """
        for coordinate, chip in self.machine.chips.items():
            mailbox, chip.monitor_mailbox = chip.monitor_mailbox, []
            for notification in mailbox:
                event = notification.get("event")
                if event == "emergency-routing":
                    self.report.emergency_notifications += 1
                    direction = notification["direction"]
                    key = (coordinate, direction)
                    self._emergency_counts[key] = self._emergency_counts.get(key, 0) + 1
                    if self._emergency_counts[key] == self.emergency_threshold:
                        self.reroute_around_link(coordinate, direction)
                elif event == "packet-dropped":
                    self.report.dropped_packet_notifications += 1
                    packet = notification.get("packet")
                    if reissue_dropped and isinstance(packet, MulticastPacket):
                        # A packet dropped mid-emergency still carries its
                        # emergency marking; re-issue it as a fresh packet.
                        clean = packet.with_emergency(EmergencyState.NORMAL)
                        self.machine.inject_multicast(coordinate, clean)
                        self.report.packets_reissued += 1
        return self.report

    # ------------------------------------------------------------------
    # Permanent re-routing around a failed link (Section 5.3)
    # ------------------------------------------------------------------
    def reroute_around_link(self, coordinate: ChipCoordinate,
                            direction: Direction) -> int:
        """Permanently reroute traffic that used ``direction`` at ``coordinate``.

        Every routing entry on the chip that forwards packets into the
        failed link is rewritten to use the two other sides of the adjacent
        mesh triangle instead: the entry's output is moved to the first
        emergency leg, and a matching entry is installed at the
        intermediate chip to complete the second leg.  This is the
        "permanent rerouting around a failed link" that the Monitor
        Processor can install once hardware emergency routing has flagged
        the problem.

        Returns the number of entries rewritten.
        """
        chip = self.machine.chips[coordinate]
        first_leg, second_leg = direction.emergency_pair()
        intermediate = coordinate.neighbour(first_leg,
                                            self.machine.config.width,
                                            self.machine.config.height)
        intermediate_chip = self.machine.chips[intermediate]

        rewritten = 0
        new_entries: List[RoutingEntry] = []
        for entry in chip.router.table.entries:
            if direction not in entry.link_directions:
                new_entries.append(entry)
                continue
            links = set(entry.link_directions)
            links.discard(direction)
            links.add(first_leg)
            new_entries.append(RoutingEntry(
                key=entry.key, mask=entry.mask,
                link_directions=frozenset(links),
                processor_ids=entry.processor_ids))
            # Matching entry at the intermediate chip to complete the dog-leg.
            intermediate_chip.router.table.add(
                key=entry.key, mask=entry.mask, links=[second_leg])
            rewritten += 1

        if rewritten:
            chip.router.table.clear()
            chip.router.table.extend(new_entries)
            self.report.links_rerouted += 1
            self.report.entries_rewritten += rewritten
        return rewritten

    # ------------------------------------------------------------------
    # Core fault mitigation
    # ------------------------------------------------------------------
    def disable_core(self, coordinate: ChipCoordinate, core_id: int) -> None:
        """Map out a core suspected of being faulty.

        The core is disabled and every routing entry that delivered packets
        to it has the core removed from its destination set, so spikes stop
        being delivered to a processor that can no longer be trusted.
        """
        chip = self.machine.chips[coordinate]
        chip.cores[core_id].disable()
        self.report.cores_disabled += 1

        new_entries: List[RoutingEntry] = []
        for entry in chip.router.table.entries:
            if core_id in entry.processor_ids:
                cores = set(entry.processor_ids)
                cores.discard(core_id)
                entry = RoutingEntry(key=entry.key, mask=entry.mask,
                                     link_directions=entry.link_directions,
                                     processor_ids=frozenset(cores))
            new_entries.append(entry)
        chip.router.table.clear()
        chip.router.table.extend(new_entries)

    def add_chip_death_listener(
            self, listener: Callable[[ChipCoordinate], None]) -> None:
        """Register a callback fired when a whole chip is condemned.

        The allocation layer subscribes here so that leases shrink when
        the monitor maps out dead silicon.
        """
        self._chip_death_listeners.append(listener)

    def attach_application(self, application, reset: bool = False) -> None:
        """Re-map ``application`` incrementally on every condemnation.

        After :meth:`condemn_chip` maps a chip out, the application's
        mapping pipeline is asked for an incremental re-map (only the
        displaced vertices' passes re-run) instead of a full recompile;
        the re-maps performed are counted in the mitigation report.
        """
        def remap(_coordinate: ChipCoordinate) -> None:
            application.remap(reset=reset)
            self.report.remaps_requested += 1

        self.add_chip_death_listener(remap)

    def condemn_chip(self, coordinate: ChipCoordinate) -> None:
        """Map out an entire chip that can no longer be trusted.

        Every core is disabled (with its routing-table entries scrubbed,
        as in :meth:`disable_core`), the chip is marked boot-failed so
        subsequent health surveys report it down, and the registered
        chip-death listeners are notified.  Condemning an
        already-condemned chip is a no-op (faults are often reported by
        several neighbours at once).
        """
        if coordinate in self._condemned_chips:
            return
        self._condemned_chips.add(coordinate)
        chip = self.machine.chips[coordinate]
        for core in chip.cores:
            # Only working cores get mapped out; cores already failed,
            # disabled or never booted keep their state (and their
            # history in the mitigation report).
            if core.is_available:
                self.disable_core(coordinate, core.core_id)
        chip.state.booted = False
        chip.state.boot_failed = True
        self.report.chips_condemned += 1
        for listener in self._chip_death_listeners:
            listener(coordinate)

    def emergency_hotspots(self, minimum: int = 1) -> List[Tuple[ChipCoordinate, Direction, int]]:
        """Links whose emergency count reached ``minimum`` (for diagnostics)."""
        return sorted(((chip, direction, count)
                       for (chip, direction), count in self._emergency_counts.items()
                       if count >= minimum),
                      key=lambda item: -item[2])
