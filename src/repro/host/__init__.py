"""The host system attached to the machine over Ethernet (Figure 1).

"SpiNNaker is conceived as a two-dimensional toroidal mesh of chip
multiprocessors connected via Ethernet links to one or more host machines."
After boot, "the Host System [can] communicate with any node using p2p
packets via Ethernet and node (0, 0)".
"""

from repro.host.host_system import HostCommand, HostSystem, SDPMessage

__all__ = [
    "HostCommand",
    "HostSystem",
    "SDPMessage",
]
