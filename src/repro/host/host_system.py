"""The Ethernet-attached host system (Figure 1, Section 5.2).

The host reaches the machine through one or more Ethernet-attached chips;
all other chips are reached by tunnelling SDP-style messages over p2p
packets via chip (0, 0).  The host model supports the management operations
the paper describes: querying chip and core status after boot, reading
router diagnostics, and injecting stimulus spikes into the fabric.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.core.geometry import ChipCoordinate
from repro.core.machine import SpiNNakerMachine
from repro.core.packets import MulticastPacket

#: Latency of the Ethernet + frame-handling path between the host and its
#: attached chip, in microseconds.
DEFAULT_ETHERNET_LATENCY_US = 50.0

_sequence = itertools.count()


class HostCommand(Enum):
    """Management commands the host can issue."""

    QUERY_STATUS = "query-status"
    READ_ROUTER_DIAGNOSTICS = "read-router-diagnostics"
    READ_CORE_STATE = "read-core-state"
    INJECT_SPIKE = "inject-spike"
    # Allocation commands, served host-side by an attached
    # repro.alloc.server.AllocationServer rather than by a chip.
    CREATE_JOB = "create-job"
    JOB_KEEPALIVE = "job-keepalive"
    RELEASE_JOB = "release-job"


#: Commands handled by the allocation server instead of chip-side state.
ALLOCATION_COMMANDS = frozenset({
    HostCommand.CREATE_JOB,
    HostCommand.JOB_KEEPALIVE,
    HostCommand.RELEASE_JOB,
})


@dataclass
class SDPMessage:
    """An SDP-style datagram exchanged between the host and a chip."""

    command: HostCommand
    destination: ChipCoordinate
    arguments: Dict[str, Any] = field(default_factory=dict)
    sequence: int = field(default_factory=lambda: next(_sequence))
    response: Optional[Dict[str, Any]] = None


class HostSystem:
    """The workstation driving the machine over Ethernet."""

    def __init__(self, machine: SpiNNakerMachine,
                 ethernet_latency_us: float = DEFAULT_ETHERNET_LATENCY_US) -> None:
        if ethernet_latency_us < 0:
            raise ValueError("Ethernet latency must be non-negative")
        self.machine = machine
        self.ethernet_latency_us = ethernet_latency_us
        self.gateway = machine.ethernet_chips[0]
        self.messages_sent: List[SDPMessage] = []
        self.p2p_hops_used = 0
        #: Set by repro.alloc.server.AllocationServer when one is attached.
        self.allocation_server = None

    def attach_allocation_server(self, server) -> None:
        """Route the allocation commands to ``server`` from now on."""
        self.allocation_server = server

    def detach_allocation_server(self, server=None) -> None:
        """Stop routing allocation commands (a stopping service detaches).

        Passing the server makes the detach idempotent and safe against
        interleaving: only the currently attached server is removed, so a
        replacement attached in the meantime keeps serving.
        """
        if server is None or self.allocation_server is server:
            self.allocation_server = None

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _reachable(self, destination: ChipCoordinate) -> bool:
        """True if p2p routing can carry a message to ``destination``."""
        if destination == self.gateway:
            return True
        gateway_chip = self.machine.chips[self.gateway]
        return (gateway_chip.p2p_table is not None and
                gateway_chip.p2p_table.knows(destination))

    def send(self, message: SDPMessage) -> SDPMessage:
        """Send a management message and synchronously collect its response.

        The transport is modelled functionally (the p2p hop count is
        recorded for the traffic statistics); the response is filled in
        from the machine model's state, which is what the real chip-side
        monitor software would report back.
        """
        self.messages_sent.append(message)
        if not self._reachable(message.destination):
            message.response = {"error": "destination unreachable: p2p "
                                         "tables not configured"}
            return message
        self.p2p_hops_used += self.machine.geometry.distance(
            self.gateway, message.destination) or 1
        message.response = self._execute(message)
        return message

    # ------------------------------------------------------------------
    # Command execution (chip-side behaviour)
    # ------------------------------------------------------------------
    def _execute(self, message: SDPMessage) -> Dict[str, Any]:
        if message.command in ALLOCATION_COMMANDS:
            if self.allocation_server is None:
                return {"error": "no allocation server attached"}
            return self.allocation_server.handle(message.command,
                                                 message.arguments)
        chip = self.machine.chips[message.destination]
        if message.command is HostCommand.QUERY_STATUS:
            return {
                "booted": chip.state.booted,
                "coordinates_known": chip.state.coordinates_known,
                "p2p_configured": chip.state.p2p_configured,
                "application_loaded": chip.state.application_loaded,
                "monitor_core": chip.monitor_core_id,
                "working_cores": len(chip.working_cores),
            }
        if message.command is HostCommand.READ_ROUTER_DIAGNOSTICS:
            stats = chip.router.stats
            return {
                "multicast_routed": stats.multicast_routed,
                "dropped": stats.dropped,
                "emergency_invocations": stats.emergency_invocations,
                "default_routed": stats.default_routed,
                "p2p_routed": stats.p2p_routed,
            }
        if message.command is HostCommand.READ_CORE_STATE:
            core_id = int(message.arguments.get("core", 0))
            if not 0 <= core_id < chip.n_cores:
                return {"error": "no such core %d" % core_id}
            core = chip.cores[core_id]
            return {
                "state": core.state.value,
                "packets_received": core.packets_received,
                "packets_sent": core.packets_sent,
                "busy_time_us": core.busy_time_us,
            }
        if message.command is HostCommand.INJECT_SPIKE:
            key = int(message.arguments["key"])
            packet = MulticastPacket(key=key,
                                     timestamp=self.machine.kernel.now,
                                     source=message.destination)
            self.machine.inject_multicast(message.destination, packet)
            return {"injected": True, "key": key}
        return {"error": "unknown command"}

    # ------------------------------------------------------------------
    # Convenience wrappers
    # ------------------------------------------------------------------
    def query_status(self, destination: ChipCoordinate) -> Dict[str, Any]:
        """Ask a chip for its boot/application status."""
        return self.send(SDPMessage(HostCommand.QUERY_STATUS,
                                    destination)).response

    def router_diagnostics(self, destination: ChipCoordinate) -> Dict[str, Any]:
        """Read a chip's router diagnostic counters."""
        return self.send(SDPMessage(HostCommand.READ_ROUTER_DIAGNOSTICS,
                                    destination)).response

    def survey_machine(self) -> Dict[str, int]:
        """Query every chip and summarise the machine's health."""
        booted = 0
        loaded = 0
        unreachable = 0
        for coordinate in self.machine.geometry.all_chips():
            status = self.query_status(coordinate)
            if "error" in status:
                unreachable += 1
                continue
            booted += int(bool(status["booted"]))
            loaded += int(bool(status["application_loaded"]))
        return {"chips": self.machine.n_chips, "booted": booted,
                "application_loaded": loaded, "unreachable": unreachable}

    def inject_spike(self, key: int,
                     at: Optional[ChipCoordinate] = None) -> None:
        """Inject a stimulus spike packet with routing key ``key``."""
        destination = at if at is not None else self.gateway
        self.send(SDPMessage(HostCommand.INJECT_SPIKE, destination,
                             {"key": key}))

    def inject_population_spike(self, keys, label: str, neuron: int) -> None:
        """Inject a spike on behalf of one mapped neuron.

        ``keys`` is the key-allocation artifact of the mapping compiler
        (``application.keys`` / ``MappingContext.keys``): the host shares
        the compiled key spaces instead of re-deriving packet keys from a
        private copy of the placement.  The packet is injected at the
        neuron's source chip, so it takes exactly the multicast tree the
        neuron's own spikes would.
        """
        key = keys.key_for_neuron(label, neuron)
        vertex, _local = keys.placement.vertex_for_neuron(label, neuron)
        source_chip, _core = keys.placement.location_of(vertex)
        self.send(SDPMessage(HostCommand.INJECT_SPIKE, source_chip,
                             {"key": key}))

    # ------------------------------------------------------------------
    # Allocation commands (require an attached allocation server)
    # ------------------------------------------------------------------
    def create_job(self, tenant: str, width: int, height: int,
                   **arguments: Any) -> Dict[str, Any]:
        """Submit an allocation job over the management channel."""
        payload = {"tenant": tenant, "width": width, "height": height}
        payload.update(arguments)
        return self.send(SDPMessage(HostCommand.CREATE_JOB, self.gateway,
                                    payload)).response

    def job_keepalive(self, job_id: int) -> Dict[str, Any]:
        """Refresh a job's keepalive and read back its state."""
        return self.send(SDPMessage(HostCommand.JOB_KEEPALIVE, self.gateway,
                                    {"job_id": job_id})).response

    def release_job(self, job_id: int) -> Dict[str, Any]:
        """Release a job's lease."""
        return self.send(SDPMessage(HostCommand.RELEASE_JOB, self.gateway,
                                    {"job_id": job_id})).response
