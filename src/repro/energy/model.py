"""Processing-efficiency metrics and machine-scale arithmetic (Section 2).

"Two metrics determine the cost-effectiveness of a many-core architecture:
MIPS/mm² — how much processing power can a unit of silicon area yield? —
and MIPS/W — how much energy does it take to execute a given program?  On
the first of these measures embedded and high-end processors are roughly
equal — a SpiNNaker chip with 20 ARM cores delivers about the same
throughput as a high-end desktop processor — but on energy-efficiency the
embedded processors win by an order of magnitude."

The default :class:`ProcessorSpec` values are representative 2010-era parts
(an ARM968-based SpiNNaker node and a contemporary high-end desktop
processor); experiment E1 regenerates the two metrics and their ratios, and
:class:`MachineScaleModel` regenerates the headline machine-scale numbers
quoted in the introduction and conclusions (>10⁶ cores, ~200 teraIPS, 10⁹
neurons in real time, ~1 % of the human brain).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

#: Neurons in the human brain (the paper's 1 % arithmetic uses 10^11).
HUMAN_BRAIN_NEURONS = 100e9
#: Synapses per neuron assumed by the paper's connectivity arguments.
SYNAPSES_PER_NEURON = 1000.0


@dataclass(frozen=True)
class ProcessorSpec:
    """Throughput, power and area of one processing node.

    Attributes
    ----------
    name:
        Descriptive name.
    mips:
        Aggregate integer throughput of the node (millions of
        instructions per second).
    power_w:
        Power drawn by the node under load.
    area_mm2:
        Silicon area of the node's processor die.
    unit_cost_usd:
        Component cost of the node.
    """

    name: str
    mips: float
    power_w: float
    area_mm2: float
    unit_cost_usd: float = 0.0

    def __post_init__(self) -> None:
        if self.mips <= 0 or self.power_w <= 0 or self.area_mm2 <= 0:
            raise ValueError("throughput, power and area must be positive")

    @property
    def mips_per_mm2(self) -> float:
        """Throughput per unit silicon area."""
        return self.mips / self.area_mm2

    @property
    def mips_per_watt(self) -> float:
        """Throughput per watt (the energy-efficiency metric)."""
        return self.mips / self.power_w


#: A SpiNNaker node: 20 ARM968 cores at ~200 MHz (~1 MIPS/MHz each) in a
#: ~100 mm² 130 nm die, drawing under 1 W for the whole node and costing
#: around $20 in components (Section 3.3).
EMBEDDED_NODE = ProcessorSpec(name="SpiNNaker 20-core node", mips=4000.0,
                              power_w=0.9, area_mm2=100.0,
                              unit_cost_usd=20.0)

#: A contemporary high-end desktop processor: similar aggregate throughput
#: from a ~250 mm² die at a ~90 W TDP.
HIGH_END_DESKTOP = ProcessorSpec(name="high-end desktop processor",
                                 mips=5000.0, power_w=90.0, area_mm2=250.0,
                                 unit_cost_usd=300.0)


@dataclass
class EnergyModel:
    """Per-event energy accounting for the machine model.

    The defaults are order-of-magnitude figures for a 130 nm embedded
    process; they matter only in ratio form (for example multicast versus
    broadcast traffic energy in experiment E11).
    """

    energy_per_instruction_nj: float = 0.5
    energy_per_packet_hop_nj: float = 10.0
    energy_per_sdram_word_nj: float = 2.0
    idle_power_per_core_mw: float = 5.0

    def neuron_update_energy_nj(self, instructions_per_update: float = 200.0) -> float:
        """Energy of one neuron-state update on an application core."""
        return self.energy_per_instruction_nj * instructions_per_update

    def spike_delivery_energy_nj(self, hops: int, synapses: int,
                                 instructions_per_synapse: float = 10.0) -> float:
        """Energy to deliver one spike over ``hops`` links into ``synapses``."""
        if hops < 0 or synapses < 0:
            raise ValueError("hops and synapses must be non-negative")
        routing = self.energy_per_packet_hop_nj * hops
        memory = self.energy_per_sdram_word_nj * synapses
        processing = self.energy_per_instruction_nj * instructions_per_synapse * synapses
        return routing + memory + processing

    def comparison(self, embedded: ProcessorSpec = EMBEDDED_NODE,
                   desktop: ProcessorSpec = HIGH_END_DESKTOP) -> Dict[str, float]:
        """The E1 headline ratios: area efficiency parity, ~10x energy win."""
        return {
            "embedded_mips_per_mm2": embedded.mips_per_mm2,
            "desktop_mips_per_mm2": desktop.mips_per_mm2,
            "area_efficiency_ratio": embedded.mips_per_mm2 / desktop.mips_per_mm2,
            "embedded_mips_per_watt": embedded.mips_per_watt,
            "desktop_mips_per_watt": desktop.mips_per_watt,
            "energy_efficiency_ratio": embedded.mips_per_watt / desktop.mips_per_watt,
        }


@dataclass
class MachineScaleModel:
    """The machine-scale arithmetic of the introduction and conclusions.

    Defaults describe the full machine: 65 536 nodes of 20 cores (1 310 720
    ARM cores > one million), each core simulating up to ~1000 neurons at
    1000 synapses each in biological real time.
    """

    n_nodes: int = 65536
    cores_per_node: int = 20
    mips_per_core: float = 150.0
    node_power_w: float = 0.9
    node_cost_usd: float = 20.0
    neurons_per_core: float = 1000.0
    synapses_per_neuron: float = SYNAPSES_PER_NEURON

    @property
    def total_cores(self) -> int:
        """Total ARM cores in the machine."""
        return self.n_nodes * self.cores_per_node

    @property
    def total_mips(self) -> float:
        """Aggregate machine throughput in MIPS."""
        return self.total_cores * self.mips_per_core

    @property
    def total_tera_ips(self) -> float:
        """Aggregate machine throughput in teraIPS (the paper quotes ~200)."""
        return self.total_mips / 1e6

    @property
    def total_power_kw(self) -> float:
        """Machine power in kilowatts."""
        return self.n_nodes * self.node_power_w / 1000.0

    @property
    def total_cost_usd(self) -> float:
        """Component cost of the machine's nodes."""
        return self.n_nodes * self.node_cost_usd

    @property
    def application_cores(self) -> int:
        """Cores available for neurons (one monitor per node is set aside)."""
        return self.n_nodes * (self.cores_per_node - 1)

    @property
    def total_neurons(self) -> float:
        """Neurons the machine can simulate in real time."""
        return self.application_cores * self.neurons_per_core

    @property
    def total_synapses(self) -> float:
        """Synapses implied by the neuron count."""
        return self.total_neurons * self.synapses_per_neuron

    @property
    def brain_fraction(self) -> float:
        """Fraction of a human brain the machine represents (~1 %)."""
        return self.total_neurons / HUMAN_BRAIN_NEURONS

    def summary(self) -> Dict[str, float]:
        """All the headline numbers in one dictionary (experiment E15)."""
        return {
            "total_cores": float(self.total_cores),
            "total_tera_ips": self.total_tera_ips,
            "total_power_kw": self.total_power_kw,
            "total_cost_usd": self.total_cost_usd,
            "total_neurons": self.total_neurons,
            "total_synapses": self.total_synapses,
            "brain_fraction": self.brain_fraction,
        }
