"""Energy, cost and scale models (Sections 2, 3.3 and the conclusions).

"Processors are free; the real cost of computing is energy."  This package
quantifies the paper's cost-effectiveness arguments:

* :mod:`repro.energy.model` — MIPS/mm² and MIPS/W for embedded versus
  high-end processors, per-event energy accounting and the machine-scale
  arithmetic (>10⁶ cores, ~200 teraIPS, a billion neurons ≈ 1 % of brain).
* :mod:`repro.energy.cost` — the ownership-cost model behind the claim
  that a PC's energy bill overtakes its purchase price after about three
  years, and the per-node comparison with a SpiNNaker node.
* :mod:`repro.energy.scaling` — the GALS process-variability argument
  (per-domain clocks beat a single worst-case clock) and per-domain DVFS
  for the real-time workload.
"""

from repro.energy.cost import OwnershipCostModel
from repro.energy.model import (
    EnergyModel,
    MachineScaleModel,
    ProcessorSpec,
    EMBEDDED_NODE,
    HIGH_END_DESKTOP,
)
from repro.energy.scaling import (
    DVFSDecision,
    DVFSPolicy,
    VariabilityOutcome,
    VariabilityStudy,
    dynamic_power_fraction,
)

__all__ = [
    "OwnershipCostModel",
    "EnergyModel",
    "MachineScaleModel",
    "ProcessorSpec",
    "EMBEDDED_NODE",
    "HIGH_END_DESKTOP",
    "DVFSDecision",
    "DVFSPolicy",
    "VariabilityOutcome",
    "VariabilityStudy",
    "dynamic_power_fraction",
]
