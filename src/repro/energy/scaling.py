"""Frequency/voltage scaling and process-variability studies (Sections 4, 5.1).

The paper motivates the GALS organisation of Figure 5 partly on energy
grounds: it "decouples the clocks and power supply voltages at each of the
clocked submodules, offering flexibility to the designers in coping with,
and optimizing for, the increasing process variability expected in future
deep submicron manufacturing processes".  This module turns that argument
into two small quantitative models:

* :class:`VariabilityStudy` — Monte-Carlo comparison of a globally-clocked
  chip (every domain must run at the frequency of the *slowest* domain on
  the die, i.e. worst-case margining) against a GALS chip (every domain
  runs at its own achievable frequency).  The study reports the throughput
  retained by each organisation as process spread grows.
* :class:`DVFSPolicy` — per-domain dynamic voltage/frequency scaling for
  the real-time neural workload: an application core only needs enough
  cycles per millisecond to finish its neuron updates and synaptic
  processing inside the tick, so any spare frequency headroom can be
  converted into a quadratic energy saving (``P ∝ f·V²`` with ``V ∝ f``).

Both models operate on the :class:`~repro.core.clock.ClockDomain` objects
used by the chip model, so their conclusions apply directly to the
simulated machine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.clock import ClockDomain, DEFAULT_CORE_FREQUENCY_MHZ

__all__ = [
    "VariabilityOutcome",
    "VariabilityStudy",
    "DVFSDecision",
    "DVFSPolicy",
    "dynamic_power_fraction",
]


def dynamic_power_fraction(frequency_fraction: float,
                           voltage_tracks_frequency: bool = True) -> float:
    """Dynamic power of a domain running at a fraction of nominal frequency.

    With ``P ∝ C·V²·f`` and the supply voltage scaled proportionally to
    frequency (the usual DVFS assumption), power falls with the *cube* of
    the frequency fraction; with a fixed supply it falls only linearly.
    """
    if frequency_fraction < 0:
        raise ValueError("frequency fraction must be non-negative")
    if voltage_tracks_frequency:
        return frequency_fraction ** 3
    return frequency_fraction


@dataclass(frozen=True)
class VariabilityOutcome:
    """Result of one Monte-Carlo process-variability trial."""

    sigma_fraction: float
    #: Sum of per-domain achievable frequencies (GALS harvests all of it).
    gals_throughput_mhz: float
    #: n_domains x slowest achievable frequency (global clock is margined
    #: to the worst domain).
    global_clock_throughput_mhz: float
    slowest_domain_mhz: float
    fastest_domain_mhz: float

    @property
    def gals_advantage(self) -> float:
        """Throughput ratio GALS / globally-clocked (>= 1 by construction)."""
        if self.global_clock_throughput_mhz <= 0:
            return float("inf")
        return self.gals_throughput_mhz / self.global_clock_throughput_mhz


class VariabilityStudy:
    """Monte-Carlo study of GALS versus global clocking under process spread."""

    def __init__(self, n_domains: int = 20,
                 nominal_frequency_mhz: float = DEFAULT_CORE_FREQUENCY_MHZ,
                 seed: Optional[int] = None) -> None:
        if n_domains < 1:
            raise ValueError("a chip needs at least one clock domain")
        self.n_domains = n_domains
        self.nominal_frequency_mhz = nominal_frequency_mhz
        self._rng = random.Random(seed)

    def sample_domains(self, sigma_fraction: float) -> List[ClockDomain]:
        """One die's worth of clock domains with process variation applied."""
        domains = [ClockDomain(name="core-%d" % index,
                               nominal_frequency_mhz=self.nominal_frequency_mhz)
                   for index in range(self.n_domains)]
        for domain in domains:
            domain.apply_variation(sigma_fraction, self._rng)
        return domains

    def run_trial(self, sigma_fraction: float) -> VariabilityOutcome:
        """Compare GALS and globally-clocked throughput on one sampled die."""
        domains = self.sample_domains(sigma_fraction)
        frequencies = [domain.actual_frequency_mhz for domain in domains]
        slowest = min(frequencies)
        fastest = max(frequencies)
        return VariabilityOutcome(
            sigma_fraction=sigma_fraction,
            gals_throughput_mhz=sum(frequencies),
            global_clock_throughput_mhz=self.n_domains * slowest,
            slowest_domain_mhz=slowest,
            fastest_domain_mhz=fastest)

    def sweep(self, sigma_fractions: Sequence[float],
              trials: int = 50) -> Dict[float, Dict[str, float]]:
        """Average the GALS advantage over many dies for each spread level.

        Returns, per sigma, the mean GALS and global-clock throughputs and
        the mean advantage ratio.  The advantage grows with sigma: the more
        the domains spread, the more a single worst-case clock costs.
        """
        if trials < 1:
            raise ValueError("need at least one trial per sigma")
        results: Dict[float, Dict[str, float]] = {}
        for sigma in sigma_fractions:
            outcomes = [self.run_trial(sigma) for _ in range(trials)]
            results[sigma] = {
                "gals_throughput_mhz": sum(o.gals_throughput_mhz
                                           for o in outcomes) / trials,
                "global_clock_throughput_mhz": sum(o.global_clock_throughput_mhz
                                                   for o in outcomes) / trials,
                "mean_advantage": sum(o.gals_advantage
                                      for o in outcomes) / trials,
            }
        return results


@dataclass(frozen=True)
class DVFSDecision:
    """The frequency chosen for one domain and the resulting power fraction."""

    domain_name: str
    required_cycles_per_tick: float
    nominal_cycles_per_tick: float
    frequency_fraction: float
    power_fraction: float

    @property
    def headroom(self) -> float:
        """Spare fraction of the tick at the chosen frequency (0 = exactly full)."""
        if self.nominal_cycles_per_tick <= 0:
            return 0.0
        used = self.required_cycles_per_tick / (
            self.nominal_cycles_per_tick * self.frequency_fraction)
        return max(0.0, 1.0 - used)


class DVFSPolicy:
    """Choose per-domain frequencies that just meet the real-time deadline.

    The real-time application model gives every core a fixed 1 ms budget
    (Section 3.1).  A core whose work fits in a fraction of that budget at
    nominal frequency can be slowed until the work *just* fits (plus a
    safety margin), cutting dynamic power by roughly the cube of the
    slow-down.  The monitor processor and router domains are left at
    nominal frequency by default because their latency is on the packet
    critical path.
    """

    def __init__(self, tick_us: float = 1000.0, safety_margin: float = 0.2,
                 minimum_fraction: float = 0.25,
                 voltage_tracks_frequency: bool = True) -> None:
        if tick_us <= 0:
            raise ValueError("the tick period must be positive")
        if not 0.0 <= safety_margin < 1.0:
            raise ValueError("safety margin must lie in [0, 1)")
        if not 0.0 < minimum_fraction <= 1.0:
            raise ValueError("minimum frequency fraction must lie in (0, 1]")
        self.tick_us = tick_us
        self.safety_margin = safety_margin
        self.minimum_fraction = minimum_fraction
        self.voltage_tracks_frequency = voltage_tracks_frequency

    def decide(self, domain: ClockDomain,
               required_cycles_per_tick: float) -> DVFSDecision:
        """Pick the lowest frequency fraction that meets the deadline."""
        if required_cycles_per_tick < 0:
            raise ValueError("cycle requirement must be non-negative")
        nominal_cycles = domain.nominal_frequency_mhz * self.tick_us
        if nominal_cycles <= 0:
            raise ValueError("domain %r has no nominal cycle budget"
                             % (domain.name,))
        needed_fraction = (required_cycles_per_tick / nominal_cycles
                           / (1.0 - self.safety_margin))
        fraction = min(1.0, max(self.minimum_fraction, needed_fraction))
        return DVFSDecision(
            domain_name=domain.name,
            required_cycles_per_tick=required_cycles_per_tick,
            nominal_cycles_per_tick=nominal_cycles,
            frequency_fraction=fraction,
            power_fraction=dynamic_power_fraction(
                fraction, self.voltage_tracks_frequency))

    def apply(self, domain: ClockDomain,
              required_cycles_per_tick: float) -> DVFSDecision:
        """Decide and apply the scaling factor to the domain."""
        decision = self.decide(domain, required_cycles_per_tick)
        domain.scale(decision.frequency_fraction)
        return decision

    def plan_chip(self, domains: Sequence[ClockDomain],
                  cycle_requirements: Sequence[float]) -> List[DVFSDecision]:
        """Plan scaling for every application domain on a chip.

        ``cycle_requirements`` must be aligned with ``domains``; use a
        requirement equal to the nominal budget (or larger) for domains
        that must stay at full speed.
        """
        if len(domains) != len(cycle_requirements):
            raise ValueError("domains and cycle requirements must be aligned")
        return [self.decide(domain, requirement)
                for domain, requirement in zip(domains, cycle_requirements)]

    @staticmethod
    def chip_power_fraction(decisions: Sequence[DVFSDecision]) -> float:
        """Mean dynamic-power fraction across a chip's scaled domains."""
        if not decisions:
            return 1.0
        return sum(decision.power_fraction
                   for decision in decisions) / len(decisions)
