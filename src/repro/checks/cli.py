"""Command line of the invariant linter.

::

    python -m repro.checks src tests benchmarks
    python -m repro.checks --format json src tests benchmarks
    python -m repro.checks --list-rules
    python -m repro.checks report --json CHECKS_report.json src tests benchmarks

The plain form prints human diff-style findings and exits 1 when any
rule is violated (the blocking CI gate).  ``report`` additionally
writes the machine-readable JSON — per-rule counts, zeroes included —
that CI uploads next to the ``BENCH_*.json`` artifacts so the weekly
sweep can trend rule-violation counts.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.checks.framework import (registered_checkers, render_human,
                                    render_report, run_paths, write_report)

DEFAULT_PATHS = ("src", "tests", "benchmarks")


def _add_paths(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: %s)"
             % " ".join(DEFAULT_PATHS))


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "report":
        return _report(argv[1:])

    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="AST linter for this repo's determinism, clock, "
                    "lock, API-surface and benchmark invariants.")
    _add_paths(parser)
    parser.add_argument("--format", choices=("human", "json"),
                        default="human",
                        help="output style (default: human)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list the registered rules and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name, checker in sorted(registered_checkers().items()):
            print("%-18s %s" % (name, checker.description))
        return 0

    violations, n_files = run_paths(args.paths)
    if args.format == "json":
        print(json.dumps(render_report(violations, n_files),
                         indent=2, sort_keys=True))
    else:
        print(render_human(violations, n_files))
    return 1 if violations else 0


def _report(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks report",
        description="Run every rule and write the JSON report artifact.")
    _add_paths(parser)
    parser.add_argument("--json", dest="json_path",
                        default="CHECKS_report.json",
                        help="where to write the machine-readable report "
                             "(default: CHECKS_report.json)")
    args = parser.parse_args(argv)

    violations, n_files = run_paths(args.paths)
    write_report(args.json_path, render_report(violations, n_files))
    print(render_human(violations, n_files))
    print("report written to %s" % args.json_path)
    return 1 if violations else 0
