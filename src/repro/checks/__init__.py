"""``repro.checks`` — the project's AST invariant linter.

A zero-dependency static-analysis pass (stdlib ``ast`` only) encoding
the invariants this reproduction's equivalence gates rest on:
determinism (seeded, seam-routed RNGs), clock discipline (one
wall-clock seam), lock discipline (``# guarded-by:`` annotations, no
blocking calls under the runtime lock), API-surface consistency and
benchmark reporting hygiene.  Run it exactly as CI does::

    python -m repro.checks src tests benchmarks

See :mod:`repro.checks.framework` for the engine and suppression
syntax, and :mod:`repro.checks.rules` for the built-in rules.
"""

from repro.checks.framework import (
    CheckContext,
    Checker,
    Project,
    Violation,
    register,
    registered_checkers,
    render_human,
    render_report,
    run_paths,
)

__all__ = [
    "CheckContext",
    "Checker",
    "Project",
    "Violation",
    "register",
    "registered_checkers",
    "render_human",
    "render_report",
    "run_paths",
]
