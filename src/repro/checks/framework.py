"""The engine of the ``repro.checks`` static-analysis pass.

``repro.checks`` is a zero-dependency, stdlib-``ast`` linter for the
*project-specific* invariants the test suite can only catch when a test
happens to exercise the violation: determinism (seeded, seam-routed
RNGs), clock discipline (one wall-clock seam), lock discipline
(``# guarded-by:`` annotations), API-surface consistency and benchmark
reporting hygiene.  Generic lint (unused imports, undefined names) stays
with ruff; this pass encodes the rules of *this* codebase.

The engine walks the requested paths, parses every ``*.py`` file once,
and hands the syntax trees to the registered checkers (see
:func:`register`).  Two checker shapes exist:

* **file checkers** look at one file at a time (determinism, clocks,
  locks);
* **project checkers** see the whole scanned file set at once and can
  read sibling non-Python artifacts — the API table versus the server
  routes, benchmark baselines versus the regression gate (api-surface,
  bench-hygiene).

Suppressions are explicit and always carry a written reason::

    # checks: disable=clock-discipline -- tests drive the service from
    #   the wall-clock side, like a real client

A suppression comment on a line of its own disables the named rules for
the whole file; a trailing comment disables them for that line only.  A
suppression *without* a reason (or naming an unknown rule) is itself a
violation (``bad-suppression``) and cannot be suppressed.
"""

from __future__ import annotations

import ast
import json
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Violation", "CheckContext", "Project", "Checker", "register",
    "registered_checkers", "run_paths", "render_human", "render_report",
    "iter_python_files", "RULE_BAD_SUPPRESSION", "RULE_PARSE_ERROR",
]

#: Meta rules raised by the engine itself; never suppressible.
RULE_BAD_SUPPRESSION = "bad-suppression"
RULE_PARSE_ERROR = "parse-error"

#: Directory names never descended into when a directory is scanned.
#: ``fixtures`` holds deliberately-violating snippets the checker tests
#: feed to the engine one file at a time — scanning them would fail the
#: gate by design.  Explicit file paths bypass this filter.
SKIP_DIR_NAMES = frozenset(
    {"__pycache__", "fixtures", ".git", "build", "dist", ".venv"})

_SUPPRESSION_RE = re.compile(
    r"#\s*checks:\s*disable=([A-Za-z0-9_\-, ]*?)\s*(?:--\s*(.*))?$")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule broken at a line of a file."""

    rule: str
    path: str
    line: int
    message: str
    source: str = ""

    def key(self) -> Tuple[str, str, int, str]:
        return (self.path, self.rule, self.line, self.message)


@dataclass
class _Suppression:
    """One parsed ``# checks: disable=...`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    file_level: bool


class CheckContext:
    """One parsed Python file, as seen by the file checkers."""

    def __init__(self, path: str, source: str,
                 tree: Optional[ast.Module]) -> None:
        #: Path as given on the command line (kept relative for output).
        self.path = path
        #: Forward-slash form used for all location-based rule scoping,
        #: so rules behave identically on Windows runners and fixtures.
        self.posix_path = path.replace(os.sep, "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.suppressions: List[_Suppression] = []

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def violation(self, rule: str, node, message: str) -> Violation:
        """Build a violation anchored at ``node`` (or a line number)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Violation(rule=rule, path=self.path, line=line,
                         message=message, source=self.source_line(line))

    # -- suppression bookkeeping ------------------------------------------
    def parse_suppressions(self, known_rules: Iterable[str]
                           ) -> List[Violation]:
        """Collect suppression comments; malformed ones are violations."""
        problems: List[Violation] = []
        known = set(known_rules)
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESSION_RE.search(text)
            if match is None:
                continue
            rules = tuple(name.strip() for name in match.group(1).split(",")
                          if name.strip())
            reason = (match.group(2) or "").strip()
            file_level = text.lstrip().startswith("#")
            if not rules:
                problems.append(self.violation(
                    RULE_BAD_SUPPRESSION, lineno,
                    "suppression names no rule "
                    "(use `# checks: disable=<rule> -- <reason>`)"))
                continue
            unknown = [name for name in rules if name not in known]
            if unknown:
                problems.append(self.violation(
                    RULE_BAD_SUPPRESSION, lineno,
                    "suppression names unknown rule(s): %s"
                    % ", ".join(sorted(unknown))))
            if not reason:
                problems.append(self.violation(
                    RULE_BAD_SUPPRESSION, lineno,
                    "suppression without a reason — write "
                    "`# checks: disable=%s -- <why this is safe>`"
                    % ",".join(rules)))
                continue
            self.suppressions.append(_Suppression(
                line=lineno, rules=rules, reason=reason,
                file_level=file_level))
        return problems

    def is_suppressed(self, violation: Violation) -> bool:
        for suppression in self.suppressions:
            if violation.rule not in suppression.rules:
                continue
            if suppression.file_level or suppression.line == violation.line:
                return True
        return False


@dataclass
class Project:
    """The whole scanned file set, as seen by the project checkers."""

    files: List[CheckContext] = field(default_factory=list)

    def find(self, suffix: str) -> Optional[CheckContext]:
        """The first scanned file whose posix path ends with ``suffix``."""
        for ctx in self.files:
            if ctx.posix_path.endswith(suffix):
                return ctx
        return None

    def matching(self, pattern: str) -> List[CheckContext]:
        """Scanned files whose posix path matches ``pattern`` (regex)."""
        compiled = re.compile(pattern)
        return [ctx for ctx in self.files
                if compiled.search(ctx.posix_path)]


class Checker:
    """Base class: subclass, set ``name``/``description``, register.

    Implement :meth:`check_file` for per-file rules or
    :meth:`check_project` for whole-tree rules (or both).
    """

    name: str = ""
    description: str = ""

    def check_file(self, ctx: CheckContext) -> Iterable[Violation]:
        return ()

    def check_project(self, project: Project) -> Iterable[Violation]:
        return ()


_REGISTRY: Dict[str, Checker] = {}


def register(cls):
    """Class decorator adding a checker to the global registry."""
    checker = cls()
    if not checker.name:
        raise ValueError("checker %r has no name" % cls.__name__)
    if checker.name in _REGISTRY:
        raise ValueError("duplicate checker name %r" % checker.name)
    _REGISTRY[checker.name] = checker
    return cls


def registered_checkers() -> Dict[str, Checker]:
    """Name → checker instance, importing the built-in rules first."""
    # Imported lazily so the framework itself has no import-time cycle
    # with the checker modules (which import `register` from here).
    from repro.checks import rules  # noqa: F401  (import registers)
    return dict(_REGISTRY)


# ---------------------------------------------------------------------------
# Engine
# ---------------------------------------------------------------------------
def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted list of ``*.py`` paths."""
    found: List[str] = []
    for path in paths:
        if os.path.isfile(path):
            found.append(path)
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                name for name in dirnames
                if name not in SKIP_DIR_NAMES and not name.startswith("."))
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    found.append(os.path.join(dirpath, filename))
    return found


def run_paths(paths: Sequence[str]) -> Tuple[List[Violation], int]:
    """Run every registered checker; returns ``(violations, n_files)``."""
    checkers = registered_checkers()
    known_rules = list(checkers) + [RULE_BAD_SUPPRESSION, RULE_PARSE_ERROR]
    project = Project()
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            violations.append(Violation(
                RULE_PARSE_ERROR, path, 0, "unreadable: %s" % error))
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            ctx = CheckContext(path, source, None)
            violations.append(ctx.violation(
                RULE_PARSE_ERROR, error.lineno or 0,
                "syntax error: %s" % error.msg))
            project.files.append(ctx)
            continue
        ctx = CheckContext(path, source, tree)
        violations.extend(ctx.parse_suppressions(known_rules))
        project.files.append(ctx)

    by_path = {ctx.path: ctx for ctx in project.files}
    candidates: List[Violation] = []
    for checker in checkers.values():
        for ctx in project.files:
            if ctx.tree is not None:
                candidates.extend(checker.check_file(ctx))
        candidates.extend(checker.check_project(project))

    for violation in candidates:
        ctx = by_path.get(violation.path)
        if ctx is not None and ctx.is_suppressed(violation):
            continue
        violations.append(violation)
    violations.sort(key=Violation.key)
    return violations, len(project.files)


# ---------------------------------------------------------------------------
# Output
# ---------------------------------------------------------------------------
def render_human(violations: List[Violation], n_files: int) -> str:
    """Diff-style human output: location, rule, message, offending line."""
    lines: List[str] = []
    for violation in violations:
        lines.append("%s:%d: [%s] %s" % (violation.path, violation.line,
                                         violation.rule, violation.message))
        if violation.source:
            lines.append("  > %s" % violation.source)
    n_rules = len(registered_checkers())
    if violations:
        lines.append("")
        lines.append("checks: %d violation(s) in %d file(s) "
                     "(%d files scanned, %d rules)"
                     % (len(violations),
                        len({v.path for v in violations}),
                        n_files, n_rules))
    else:
        lines.append("checks: OK (%d files scanned, %d rules)"
                     % (n_files, n_rules))
    return "\n".join(lines)


def render_report(violations: List[Violation], n_files: int) -> Dict:
    """Machine-readable report (the ``report --json`` artifact).

    ``counts_by_rule`` carries an entry for *every* registered rule —
    zeroes included — so the weekly sweep can trend per-rule counts
    without special-casing absent keys.
    """
    counts = {name: 0 for name in registered_checkers()}
    counts[RULE_BAD_SUPPRESSION] = 0
    counts[RULE_PARSE_ERROR] = 0
    for violation in violations:
        counts[violation.rule] = counts.get(violation.rule, 0) + 1
    return {
        "tool": "repro.checks",
        "files_scanned": n_files,
        "violation_total": len(violations),
        "counts_by_rule": counts,
        "violations": [
            {"rule": v.rule, "path": v.path, "line": v.line,
             "message": v.message, "source": v.source}
            for v in violations
        ],
    }


def write_report(path: str, report: Dict) -> None:
    """Write the JSON report atomically (mirrors ``reporting.emit_json``)."""
    staging = path + ".tmp"
    with open(staging, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)
