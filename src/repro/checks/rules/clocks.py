"""Rule ``clock-discipline`` — one wall-clock seam, everywhere else
simulated time.

PR 6's central invariant ("a job is never observed READY past its
lease") holds because :class:`repro.service.runtime.ServiceRuntime` is
the *only* place the monotonic wall clock drives scheduler state: every
observation advances the event kernel to the sampled instant and runs
the expiry sweep exactly there.  A second, ad-hoc clock read anywhere
else re-introduces the class of bug the single-clock design removed
(expiry evaluated against a different "now" than promotion).

Flagged outside :mod:`repro.service.runtime` and the ``benchmarks/``
harnesses:

* ``time.time()`` / ``time.monotonic()`` (and their ``_ns`` variants),
* argless ``datetime.now()`` and ``datetime.utcnow()`` / ``today()``.

``time.perf_counter()`` measures *durations* (its absolute value is
meaningless, so it cannot leak into scheduling decisions the way an
absolute "now" can) and stays legal in tests and benchmarks — but
inside the shipped packages (``src/repro``) its one sanctioned home is
:mod:`repro.profile`: everything else takes durations through
``repro.profile.perf_now`` or a ``profile_stage``, so there is exactly
one seam where timing behaviour can drift and every measured span can
reach the stage registry.  Simulation code takes simulated microseconds
from the event kernel; service-side helpers use
:func:`repro.service.runtime.wall_now`.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.checks.asthelpers import ImportMap
from repro.checks.framework import (CheckContext, Checker, Violation,
                                    register)

#: Absolute-clock reads; durations (``perf_counter``) are not listed.
FORBIDDEN_TIME_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
})

#: Duration reads — legal outside the shipped packages, and inside them
#: only in :mod:`repro.profile` (the seam that re-exports ``perf_now``).
PERF_COUNTER_CALLS = frozenset({
    "time.perf_counter", "time.perf_counter_ns",
})

#: The sanctioned wall-clock seam (plus the benchmark harnesses).
ALLOWED_SUFFIXES = ("repro/service/runtime.py",)


def _is_exempt(ctx: CheckContext) -> bool:
    path = ctx.posix_path
    if any(path.endswith(suffix) for suffix in ALLOWED_SUFFIXES):
        return True
    return path.startswith("benchmarks/") or "/benchmarks/" in path


def _perf_counter_restricted(ctx: CheckContext) -> bool:
    """Shipped-package files outside the profiler seam itself."""
    path = ctx.posix_path
    in_shipped = "src/repro/" in path or path.startswith("repro/")
    return in_shipped and "repro/profile/" not in path


@register
class ClockDisciplineChecker(Checker):
    name = "clock-discipline"
    description = ("wall-clock reads only in repro.service.runtime and "
                   "benchmark harnesses; everything else runs on "
                   "simulated time; in src/repro, perf_counter only "
                   "via the repro.profile seam")

    def check_file(self, ctx: CheckContext) -> Iterable[Violation]:
        if _is_exempt(ctx):
            return ()
        imports = ImportMap(ctx.tree)
        perf_restricted = _perf_counter_restricted(ctx)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None:
                continue
            if perf_restricted and dotted in PERF_COUNTER_CALLS:
                out.append(ctx.violation(
                    self.name, node,
                    "`%s()` in a shipped package outside repro.profile — "
                    "measure through repro.profile.perf_now() or a "
                    "profile_stage so the span reaches the stage "
                    "registry" % dotted))
            elif dotted in FORBIDDEN_TIME_CALLS:
                out.append(ctx.violation(
                    self.name, node,
                    "`%s()` outside the clock seam — take simulated-us "
                    "from the event kernel, or route wall time through "
                    "repro.service.runtime.wall_now()" % dotted))
            elif dotted.endswith("datetime.now") and not (node.args
                                                          or node.keywords):
                out.append(ctx.violation(
                    self.name, node,
                    "argless `datetime.now()` reads the ambient wall "
                    "clock — use the event kernel's simulated time, or "
                    "repro.service.runtime.wall_now()"))
            elif (dotted.endswith("datetime.utcnow")
                    or dotted.endswith("datetime.today")
                    or dotted.endswith("date.today")):
                out.append(ctx.violation(
                    self.name, node,
                    "`%s()` reads the ambient wall clock — use the "
                    "event kernel's simulated time, or "
                    "repro.service.runtime.wall_now()" % dotted))
        return out
