"""Rule ``bench-hygiene`` — every benchmark reports, every gate has a
baseline to gate against.

The perf-regression gate (``benchmarks/check_regression.py``) and the
weekly trend artifact only see what the benchmarks *emit*: a bench that
prints a table but never calls ``reporting.emit_json`` is invisible to
both, so a regression in it lands silently.  This rule flags:

* a ``benchmarks/bench_<id>_*.py`` file with no ``emit_json`` call;
* an ``emit_json`` whose literal bench id disagrees with the filename
  (the JSON would land under the wrong ``BENCH_<id>.json`` and the
  gate would report the real bench as MISSING);
* a speedup assertion (``assert <something>speedup<something> >= ...``)
  whose measured ratio is recorded under no metric key anywhere in the
  module — the bench would hard-fail below the threshold but the
  *measured* value would be invisible to the regression gate and the
  trend artifact, so slow erosion towards the threshold lands silently;
* a bench that *enables profiling* (``profile=True`` anywhere, or a
  call to ``repro.profile.enable``) but records no ``profile_*`` metric
  key and never calls ``reporting.attach_profile`` — the stage timings
  it paid to collect would be invisible to the regression gate and the
  trend artifact;
* a gated key in ``check_regression.py``'s ``KEY_METRICS`` whose
  checked-in baseline JSON is absent or lacks that metric — the gate
  would silently skip it, which reads as "protected" when it is not.
"""

from __future__ import annotations

import ast
import json
import os
import re
from typing import Iterable, List, Optional

from repro.checks.asthelpers import ImportMap
from repro.checks.framework import (CheckContext, Checker, Project,
                                    Violation, register)

BENCH_FILE_RE = re.compile(r"(^|/)benchmarks/bench_([a-z0-9]+)_[^/]*\.py$")

#: Resolved calls that switch the stage profiler on.
PROFILE_ENABLE_CALLS = frozenset({
    "repro.profile.enable", "repro.profile.registry.enable",
})


def _emit_json_calls(tree: ast.Module) -> List[ast.Call]:
    calls = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name == "emit_json":
            calls.append(node)
    return calls


@register
class BenchHygieneChecker(Checker):
    name = "bench-hygiene"
    description = ("every bench_*.py emits via reporting.emit_json under "
                   "its filename id; every gated baseline key exists")

    def check_project(self, project: Project) -> Iterable[Violation]:
        out: List[Violation] = []
        for ctx in project.files:
            match = BENCH_FILE_RE.search(ctx.posix_path)
            if match and ctx.tree is not None:
                out.extend(self._check_bench(ctx, match.group(2)))
        for ctx in project.matching(r"benchmarks/check_regression\.py$"):
            if ctx.tree is not None:
                out.extend(self._check_gate(ctx))
        return out

    def _check_bench(self, ctx: CheckContext,
                     bench_id: str) -> Iterable[Violation]:
        calls = _emit_json_calls(ctx.tree)
        if not calls:
            yield ctx.violation(
                self.name, 1,
                "benchmark emits no machine-readable results — call "
                "reporting.emit_json(%r, {...}) so the regression gate "
                "and the weekly trend artifact can see it" % bench_id)
            return
        for call in calls:
            literal = self._literal_first_arg(call)
            if literal is not None and literal != bench_id:
                yield ctx.violation(
                    self.name, call,
                    "emit_json bench id %r disagrees with the filename "
                    "id %r — the JSON would land under the wrong "
                    "BENCH_<id>.json" % (literal, bench_id))
        yield from self._check_speedup_asserts(ctx)
        yield from self._check_profile_emission(ctx)

    def _check_profile_emission(self, ctx: CheckContext) -> Iterable[Violation]:
        """A bench that enables profiling must surface the stage timings.

        Enabling is either a ``profile=True`` keyword on any call (the
        cluster runner's opt-in) or a resolved ``repro.profile.enable``
        call.  Surfacing is a string dict key starting with ``profile_``
        anywhere in the module, or a ``reporting.attach_profile`` call
        (which injects those keys wholesale).
        """
        imports = ImportMap(ctx.tree)
        enabler = None
        emits = False
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                attr = (func.attr if isinstance(func, ast.Attribute)
                        else func.id if isinstance(func, ast.Name) else None)
                if attr == "attach_profile":
                    emits = True
                dotted = imports.resolve(func)
                if dotted in PROFILE_ENABLE_CALLS:
                    enabler = enabler or node
                for keyword in node.keywords:
                    if (keyword.arg == "profile"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True):
                        enabler = enabler or node
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if (isinstance(key, ast.Constant)
                            and isinstance(key.value, str)
                            and key.value.startswith("profile_")):
                        emits = True
        if enabler is not None and not emits:
            yield ctx.violation(
                self.name, enabler,
                "enables profiling but emits no profile_* metric key — "
                "pass the stage timings through reporting.attach_profile "
                "(or record profile_* keys) so the regression gate and "
                "the trend artifact see what was measured")

    def _check_speedup_asserts(self, ctx: CheckContext) -> Iterable[Violation]:
        """A bench gating on a speedup must also *record* it.

        The metrics dict is often built in a variable before the
        ``emit_json`` call, so every string dict key in the module
        counts as recorded; the assert's measured name and a key relate
        when either contains the other (e.g. an ``assert speedup >= N``
        recorded under ``"remap_speedup"``).
        """
        keys = {key.value.lower()
                for node in ast.walk(ctx.tree)
                if isinstance(node, ast.Dict)
                for key in node.keys
                if isinstance(key, ast.Constant)
                and isinstance(key.value, str)}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assert):
                continue
            test = node.test
            if not isinstance(test, ast.Compare) or len(test.ops) != 1:
                continue
            op = test.ops[0]
            if isinstance(op, (ast.Gt, ast.GtE)):
                measured = test.left
            elif isinstance(op, (ast.Lt, ast.LtE)):
                measured = test.comparators[0]
            else:
                continue
            name = self._terminal_name(measured)
            if name is None or "speedup" not in name.lower():
                continue
            lowered = name.lower()
            if not any(lowered in key or key in lowered for key in keys):
                yield ctx.violation(
                    self.name, node,
                    "asserts the speedup gate %r but records no related "
                    "metric key — put the measured ratio in the emitted "
                    "JSON so the regression gate tracks what this assert "
                    "protects" % (name,))

    @staticmethod
    def _terminal_name(node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def _literal_first_arg(call: ast.Call) -> Optional[str]:
        if (call.args and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)):
            return call.args[0].value
        return None

    # ------------------------------------------------------------------
    def _check_gate(self, ctx: CheckContext) -> Iterable[Violation]:
        key_metrics = None
        for node in ctx.tree.body:
            if isinstance(node, ast.AnnAssign):
                targets = [node.target]
                value = node.value
            elif isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            else:
                continue
            for target in targets:
                if (isinstance(target, ast.Name)
                        and target.id == "KEY_METRICS"):
                    key_metrics = (node, value)
        if key_metrics is None or not isinstance(key_metrics[1], ast.Dict):
            return
        node, table = key_metrics
        baseline_dir = os.path.join(os.path.dirname(ctx.path), "baselines")
        for key_node, value_node in zip(table.keys, table.values):
            if not (isinstance(key_node, ast.Constant)
                    and isinstance(key_node.value, str)):
                continue
            bench_id = key_node.value
            gated = self._gated_names(value_node)
            baseline_path = os.path.join(baseline_dir,
                                         "BENCH_%s.json" % bench_id)
            if not os.path.exists(baseline_path):
                yield ctx.violation(
                    self.name, key_node,
                    "KEY_METRICS gates bench %r but no baseline "
                    "%s is checked in — the gate silently skips it"
                    % (bench_id, os.path.basename(baseline_path)))
                continue
            try:
                with open(baseline_path, encoding="utf-8") as handle:
                    metrics = json.load(handle).get("metrics", {})
            except (OSError, ValueError) as error:
                yield ctx.violation(
                    self.name, key_node,
                    "baseline %s is unreadable: %s"
                    % (os.path.basename(baseline_path), error))
                continue
            for name in gated:
                if name not in metrics:
                    yield ctx.violation(
                        self.name, key_node,
                        "KEY_METRICS gates %r of bench %r but the "
                        "checked-in baseline has no such key — the "
                        "gate silently skips it" % (name, bench_id))

    @staticmethod
    def _gated_names(value_node: ast.AST) -> List[str]:
        names = []
        for node in ast.walk(value_node):
            if isinstance(node, ast.Call) and node.args:
                first = node.args[0]
                if (isinstance(first, ast.Constant)
                        and isinstance(first.value, str)):
                    names.append(first.value)
        return names
