"""Rule ``lock-discipline`` — annotated shared state stays under its
lock, and nothing blocks while holding the runtime lock.

Threaded modules (the allocation service) declare which lock protects a
piece of shared state with a trailing comment on the attribute's
initialisation::

    self._in_flight = 0      # guarded-by: _flow

The rule then flags, in every method of that class except ``__init__``
(construction happens-before publication):

* any read or write of ``self._in_flight`` that is not lexically inside
  a ``with self._flow:`` block;
* a ``guarded-by`` comment naming a lock the class never assigns
  (a typo would otherwise disable the rule silently).

Independently, inside any ``with … .lock:`` block (the
``ServiceRuntime.lock`` convention — the lock serialising scheduler and
event kernel), it flags *blocking* calls — ``time.sleep``, socket
``send``/``recv``/``connect``/``accept``, and HTTP
``request``/``getresponse`` — because every request handler queues on
that lock: one sleeping holder stalls the whole service (the PR 6
Nagle stall was exactly one hidden 40 ms block on this path).

Closures and nested functions are analysed with *no* lock assumed held:
they may run on another thread or after the ``with`` block exits.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.checks.asthelpers import (ImportMap, final_attribute,
                                     self_attribute)
from repro.checks.framework import (CheckContext, Checker, Violation,
                                    register)

GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z_][A-Za-z0-9_]*)")

#: Attribute names whose *call* blocks the calling thread.
BLOCKING_ATTRS = frozenset({
    "send", "sendall", "sendto", "recv", "recvfrom", "recv_into",
    "connect", "accept", "getresponse", "request",
})


def _with_lock_attrs(node: ast.With) -> List[str]:
    """Names of ``self.<attr>`` context expressions of a with-statement."""
    attrs = []
    for item in node.items:
        attr = self_attribute(item.context_expr)
        if attr is not None:
            attrs.append(attr)
    return attrs


def _holds_runtime_lock(node: ast.With) -> bool:
    """True for ``with <anything>.lock:`` (the runtime-lock convention)."""
    return any(final_attribute(item.context_expr) == "lock"
               for item in node.items)


@register
class LockDisciplineChecker(Checker):
    name = "lock-discipline"
    description = ("`# guarded-by:` attributes only touched under their "
                   "lock; no blocking calls while holding `….lock`")

    def check_file(self, ctx: CheckContext) -> Iterable[Violation]:
        out: List[Violation] = []
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                out.extend(self._check_class(ctx, node))
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_blocking(ctx, imports, node.body, False, out)
        return out

    # -- guarded-by attributes --------------------------------------------
    def _collect_guards(self, ctx: CheckContext, classdef: ast.ClassDef,
                        out: List[Violation]) -> Dict[str, str]:
        guards: Dict[str, Tuple[str, int]] = {}
        assigned: Set[str] = set()
        for node in ast.walk(classdef):
            targets = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                attr = self_attribute(target)
                if attr is None:
                    continue
                assigned.add(attr)
                match = GUARDED_BY_RE.search(
                    ctx.lines[node.lineno - 1]
                    if node.lineno <= len(ctx.lines) else "")
                if match:
                    guards[attr] = (match.group(1), node.lineno)
        valid: Dict[str, str] = {}
        for attr, (lock, lineno) in sorted(guards.items()):
            if lock in assigned:
                valid[attr] = lock
            else:
                # Typo guard: an unknown lock name would make the
                # annotation dead and hide the intent silently.
                out.append(ctx.violation(
                    self.name, lineno,
                    "`%s` is declared guarded-by `%s`, but class `%s` "
                    "never assigns `self.%s`"
                    % (attr, lock, classdef.name, lock)))
        return valid

    def _check_class(self, ctx: CheckContext,
                     classdef: ast.ClassDef) -> Iterable[Violation]:
        out: List[Violation] = []
        guards = self._collect_guards(ctx, classdef, out)
        if not guards:
            return out
        for node in classdef.body:
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if node.name == "__init__":
                continue
            self._walk_guarded(ctx, guards, node.body, set(), out)
        return out

    def _walk_guarded(self, ctx: CheckContext, guards: Dict[str, str],
                      body: Iterable[ast.AST], held: Set[str],
                      out: List[Violation]) -> None:
        for node in body:
            self._visit_guarded(ctx, guards, node, held, out)

    def _visit_guarded(self, ctx: CheckContext, guards: Dict[str, str],
                       node: ast.AST, held: Set[str],
                       out: List[Violation]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                self._visit_guarded(ctx, guards, item.context_expr,
                                    held, out)
            self._walk_guarded(ctx, guards, node.body,
                               held | set(_with_lock_attrs(node)), out)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            # A closure may run later / on another thread: assume no
            # lock is held inside it.
            inner = (node.body if isinstance(node.body, list)
                     else [node.body])
            self._walk_guarded(ctx, guards, inner, set(), out)
            return
        attr = self_attribute(node)
        if attr is not None and attr in guards and guards[attr] not in held:
            out.append(ctx.violation(
                self.name, node,
                "`self.%s` is guarded-by `%s` but touched outside "
                "`with self.%s:`" % (attr, guards[attr], guards[attr])))
        for child in ast.iter_child_nodes(node):
            self._visit_guarded(ctx, guards, child, held, out)

    # -- blocking calls under the runtime lock ----------------------------
    def _check_blocking(self, ctx: CheckContext, imports: ImportMap,
                        body: Iterable[ast.AST], under_lock: bool,
                        out: List[Violation]) -> None:
        for node in body:
            self._visit_blocking(ctx, imports, node, under_lock, out)

    def _visit_blocking(self, ctx: CheckContext, imports: ImportMap,
                        node: ast.AST, under_lock: bool,
                        out: List[Violation]) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inside = under_lock or _holds_runtime_lock(node)
            for item in node.items:
                self._visit_blocking(ctx, imports, item.context_expr,
                                     under_lock, out)
            self._check_blocking(ctx, imports, node.body, inside, out)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            inner = (node.body if isinstance(node.body, list)
                     else [node.body])
            self._check_blocking(ctx, imports, inner, False, out)
            return
        if under_lock and isinstance(node, ast.Call):
            blocked = self._blocking_name(imports, node)
            if blocked is not None:
                out.append(ctx.violation(
                    self.name, node,
                    "blocking call `%s` while holding the runtime lock "
                    "— every request handler queues on it; do the I/O "
                    "or sleep outside the `with … .lock:` block"
                    % blocked))
        for child in ast.iter_child_nodes(node):
            self._visit_blocking(ctx, imports, child, under_lock, out)

    def _blocking_name(self, imports: ImportMap,
                       node: ast.Call) -> Optional[str]:
        dotted = imports.resolve(node.func)
        if dotted == "time.sleep":
            return dotted
        attr = final_attribute(node.func)
        if attr in BLOCKING_ATTRS:
            return dotted or ("….%s" % attr)
        return None
