"""Rule ``determinism`` — every random draw is seeded and seam-routed.

The reproduction's equivalence gates (bit-identical spike trains across
engines, transports and worker counts) only hold because every random
number is derived from the run's seed through one of three sanctioned
seams in :mod:`repro.neuron.population`:

* :func:`~repro.neuron.population.core_rng` — per-core machine streams,
* :func:`~repro.neuron.population.expansion_rng` — connectivity
  expansion,
* :func:`~repro.neuron.population.simulation_rng` — the host
  simulator / workload stream.

This rule therefore flags, everywhere in the tree:

* module-level calls into the *hidden global* RNGs
  (``random.random()``, ``np.random.rand()``, ``np.random.seed()``, …),
* ``random.Random()`` constructed without a seed,
* ``np.random.default_rng()`` constructed without a seed,

and, inside ``src/repro`` (the shipped packages), *any* direct
``np.random.default_rng(...)`` construction outside the seam module —
a seeded-but-private stream still decorrelates silently from the seams
the equivalence tests pin.
"""

from __future__ import annotations

import ast
from typing import Iterable, List

from repro.checks.asthelpers import ImportMap, call_has_argument
from repro.checks.framework import (CheckContext, Checker, Violation,
                                    register)

#: ``random.<fn>`` functions that draw from the module-global state.
GLOBAL_RANDOM_FUNCS = frozenset({
    "random", "seed", "randint", "randrange", "randbytes", "getrandbits",
    "choice", "choices", "shuffle", "sample", "uniform", "triangular",
    "betavariate", "expovariate", "gammavariate", "gauss",
    "lognormvariate", "normalvariate", "vonmisesvariate", "paretovariate",
    "weibullvariate", "binomialvariate",
})

#: The only ``numpy.random`` attributes that are not the legacy global
#: RNG surface: explicit generator/bit-generator construction.
NUMPY_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator",
    "PCG64", "PCG64DXSM", "MT19937", "Philox", "SFC64",
})

#: The one module allowed to call ``default_rng`` directly: the seams.
SEAM_MODULE_SUFFIX = "repro/neuron/population.py"


def _in_shipped_packages(ctx: CheckContext) -> bool:
    path = ctx.posix_path
    return "src/repro/" in path or path.startswith("repro/")


@register
class DeterminismChecker(Checker):
    name = "determinism"
    description = ("no hidden-global or unseeded RNGs; in src/repro, "
                   "generators come only from the core_rng/expansion_rng/"
                   "simulation_rng seams")

    def check_file(self, ctx: CheckContext) -> Iterable[Violation]:
        imports = ImportMap(ctx.tree)
        out: List[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = imports.resolve(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if dotted == "random.Random" and not call_has_argument(node):
                out.append(ctx.violation(
                    self.name, node,
                    "`random.Random()` without a seed is nondeterministic "
                    "— pass the run's seed"))
            elif (len(parts) == 2 and parts[0] == "random"
                    and parts[1] in GLOBAL_RANDOM_FUNCS):
                out.append(ctx.violation(
                    self.name, node,
                    "`%s()` draws from the hidden module-global RNG — "
                    "construct a seeded generator instead" % dotted))
            elif len(parts) >= 3 and parts[0:2] == ["numpy", "random"]:
                if parts[2] not in NUMPY_ALLOWED:
                    out.append(ctx.violation(
                        self.name, node,
                        "`%s()` uses numpy's hidden global RNG — "
                        "construct a generator via the sanctioned seams"
                        % dotted))
                elif parts[2] == "default_rng":
                    out.extend(self._check_default_rng(ctx, node))
        return out

    def _check_default_rng(self, ctx: CheckContext,
                           node: ast.Call) -> Iterable[Violation]:
        if ctx.posix_path.endswith(SEAM_MODULE_SUFFIX):
            # The seam module itself is the audited boundary: its
            # seed-is-None fallbacks are the one sanctioned opt-out.
            return
        if _in_shipped_packages(ctx):
            yield ctx.violation(
                self.name, node,
                "direct `np.random.default_rng(...)` in shipped code — "
                "route through core_rng/expansion_rng/simulation_rng "
                "(repro.neuron.population) so streams stay pinned to "
                "the run's seed")
        elif not call_has_argument(node):
            yield ctx.violation(
                self.name, node,
                "`np.random.default_rng()` without a seed is "
                "nondeterministic — pass a seed")
