"""Rule ``api-surface`` — the endpoint table, the server, the metrics
labels, the error codes and the README never drift apart.

:data:`repro.service.api.ENDPOINTS` is the declared public surface:
one ``(method, path, request, response, label)`` row per endpoint,
where ``label`` is both the route's name in ``server.py`` and the
per-endpoint metrics key.  This rule cross-checks, for every tree that
contains a ``repro/service/api.py``:

* the table is a well-formed literal: 5-element rows, known HTTP
  methods, paths under the declared API version, unique non-empty
  labels;
* every label appears in ``server.py``'s ``_route`` — i.e. each
  declared endpoint has a wired route and therefore a metrics label;
* every ``CODE_*`` typed error code defined in ``api.py`` is exported
  via ``__all__`` *and* referenced somewhere in the service package —
  a dead code constant means an error path the clients can no longer
  distinguish;
* every path template in the table appears in the repository README
  (the rendered endpoint table), so the documented surface is the
  shipped surface.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, List, Optional

from repro.checks.framework import (CheckContext, Checker, Project,
                                    Violation, register)

HTTP_METHODS = frozenset({"GET", "POST", "PUT", "PATCH", "DELETE"})

API_SUFFIX = "repro/service/api.py"

#: Sibling modules scanned for error-code references.
SERVICE_MODULES = ("api.py", "server.py", "runtime.py", "client.py",
                   "backpressure.py", "metrics.py", "__init__.py")


def _module_assign(tree: ast.Module, name: str) -> Optional[ast.Assign]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    return node
    return None


def _string_constants(node: ast.AST) -> Iterable[str]:
    for child in ast.walk(node):
        if isinstance(child, ast.Constant) and isinstance(child.value, str):
            yield child.value


@register
class ApiSurfaceChecker(Checker):
    name = "api-surface"
    description = ("ENDPOINTS rows ↔ server routes/metrics labels, typed "
                   "error codes exported and raised, README table current")

    def check_project(self, project: Project) -> Iterable[Violation]:
        out: List[Violation] = []
        for api_ctx in project.matching(r"repro/service/api\.py$"):
            if api_ctx.tree is not None:
                out.extend(self._check_surface(project, api_ctx))
        return out

    def _check_surface(self, project: Project,
                       api_ctx: CheckContext) -> Iterable[Violation]:
        out: List[Violation] = []
        service_dir = os.path.dirname(api_ctx.path)
        version = self._api_version(api_ctx)

        table = _module_assign(api_ctx.tree, "ENDPOINTS")
        if table is None:
            out.append(api_ctx.violation(
                self.name, 1, "no module-level ENDPOINTS table"))
            return out
        try:
            rows = ast.literal_eval(table.value)
        except ValueError:
            out.append(api_ctx.violation(
                self.name, table,
                "ENDPOINTS must be a pure literal so tooling can read "
                "it without importing the service"))
            return out

        labels: List[str] = []
        for row in rows:
            if not (isinstance(row, tuple) and len(row) == 5):
                out.append(api_ctx.violation(
                    self.name, table,
                    "ENDPOINTS row %r must be (method, path, request, "
                    "response, label)" % (row,)))
                continue
            method, path, _request, _response, label = row
            if method not in HTTP_METHODS:
                out.append(api_ctx.violation(
                    self.name, table,
                    "unknown HTTP method %r in ENDPOINTS" % (method,)))
            if version and not path.startswith("/%s" % version):
                out.append(api_ctx.violation(
                    self.name, table,
                    "endpoint path %r is outside the declared API "
                    "version /%s" % (path, version)))
            if not label or not isinstance(label, str):
                out.append(api_ctx.violation(
                    self.name, table,
                    "endpoint %s %s has no metrics label" % (method, path)))
            else:
                labels.append(label)
        duplicates = {name for name in labels if labels.count(name) > 1}
        for name in sorted(duplicates):
            out.append(api_ctx.violation(
                self.name, table,
                "metrics label %r is used by more than one endpoint "
                "— per-endpoint histograms would merge" % name))

        out.extend(self._check_server(project, api_ctx, service_dir,
                                      labels))
        out.extend(self._check_error_codes(project, api_ctx, service_dir))
        out.extend(self._check_readme(api_ctx, service_dir, rows))
        return out

    # ------------------------------------------------------------------
    def _api_version(self, api_ctx: CheckContext) -> Optional[str]:
        node = _module_assign(api_ctx.tree, "API_VERSION")
        if node is not None and isinstance(node.value, ast.Constant):
            return str(node.value.value)
        return None

    def _sibling(self, project: Project, service_dir: str,
                 filename: str) -> Optional[CheckContext]:
        wanted = os.path.join(service_dir, filename).replace(os.sep, "/")
        for ctx in project.files:
            if ctx.posix_path == wanted:
                return ctx
        return None

    def _check_server(self, project: Project, api_ctx: CheckContext,
                      service_dir: str,
                      labels: List[str]) -> Iterable[Violation]:
        server_ctx = self._sibling(project, service_dir, "server.py")
        if server_ctx is None or server_ctx.tree is None:
            yield api_ctx.violation(
                self.name, 1,
                "no server.py next to the ENDPOINTS table — every "
                "declared endpoint needs a route")
            return
        route_fn = None
        for node in ast.walk(server_ctx.tree):
            if (isinstance(node, ast.FunctionDef)
                    and node.name == "_route"):
                route_fn = node
                break
        haystack = route_fn if route_fn is not None else server_ctx.tree
        routed = set(_string_constants(haystack))
        for label in labels:
            if label not in routed:
                yield api_ctx.violation(
                    self.name, 1,
                    "endpoint label %r from ENDPOINTS has no matching "
                    "route (no metrics will ever carry it) in %s"
                    % (label, server_ctx.path))

    def _check_error_codes(self, project: Project, api_ctx: CheckContext,
                           service_dir: str) -> Iterable[Violation]:
        exported: List[str] = []
        all_node = _module_assign(api_ctx.tree, "__all__")
        if all_node is not None:
            exported = list(_string_constants(all_node.value))
        codes = {}
        for node in api_ctx.tree.body:
            if (isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and node.targets[0].id.startswith("CODE_")):
                codes[node.targets[0].id] = node.lineno
        references = set()
        for filename in SERVICE_MODULES:
            ctx = self._sibling(project, service_dir, filename)
            if ctx is None or ctx.tree is None:
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Name):
                    if (ctx is api_ctx
                            and node.id in codes
                            and node.lineno == codes[node.id]):
                        continue      # the definition itself
                    references.add(node.id)
                elif isinstance(node, ast.Attribute):
                    references.add(node.attr)
        for code, lineno in sorted(codes.items()):
            if exported and code not in exported:
                yield api_ctx.violation(
                    self.name, lineno,
                    "typed error code %s is not exported via __all__"
                    % code)
            if code not in references:
                yield api_ctx.violation(
                    self.name, lineno,
                    "typed error code %s is defined but never raised "
                    "or matched in the service package" % code)

    def _check_readme(self, api_ctx: CheckContext, service_dir: str,
                      rows) -> Iterable[Violation]:
        root = os.path.normpath(os.path.join(service_dir, os.pardir,
                                             os.pardir, os.pardir))
        readme_path = os.path.join(root, "README.md")
        if not os.path.exists(readme_path):
            yield api_ctx.violation(
                self.name, 1,
                "no README.md at %s — the endpoint table must be "
                "documented" % root)
            return
        with open(readme_path, encoding="utf-8") as handle:
            readme = handle.read()
        documented_paths = set()
        for row in rows:
            if isinstance(row, tuple) and len(row) == 5:
                documented_paths.add(row[1])
        for path in sorted(documented_paths):
            if path not in readme:
                yield api_ctx.violation(
                    self.name, 1,
                    "endpoint path %r is missing from the README "
                    "endpoint table" % path)
