"""The built-in rules of ``repro.checks``.

Importing this package registers every checker with the framework
registry (see :func:`repro.checks.framework.register`); adding a rule
is: write a module here with a ``@register``-decorated
:class:`~repro.checks.framework.Checker` subclass, import it below, and
add a flagged + clean fixture pair under ``tests/fixtures/checks/``.
"""

from repro.checks.rules import (  # noqa: F401  (import registers)
    api_surface,
    bench_hygiene,
    clocks,
    determinism,
    locks,
)
