"""Small AST utilities shared by the checkers.

The central piece is :class:`ImportMap`: checkers reason about *what a
call resolves to* (``numpy.random.default_rng``, ``time.monotonic``),
not what it happens to be spelled as at the call site (``np.…``,
``from time import monotonic``), so aliasing cannot hide a violation.
"""

from __future__ import annotations

import ast
from typing import Dict, Optional

__all__ = ["ImportMap", "call_has_argument", "final_attribute",
           "self_attribute"]


class ImportMap:
    """Resolves names at call sites back to dotted module paths."""

    def __init__(self, tree: ast.Module) -> None:
        #: ``import numpy as np`` → ``{"np": "numpy"}``;
        #: ``import numpy.random as nr`` → ``{"nr": "numpy.random"}``;
        #: plain ``import numpy.random`` binds ``numpy``.
        self.modules: Dict[str, str] = {}
        #: ``from numpy.random import default_rng as d`` →
        #: ``{"d": "numpy.random.default_rng"}``.
        self.names: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".")[0]
                        self.modules[root] = root
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                for alias in node.names:
                    local = alias.asname or alias.name
                    qualified = ("%s.%s" % (module, alias.name)
                                 if module else alias.name)
                    self.names[local] = qualified

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted path of an expression like ``np.random.default_rng``.

        Returns ``None`` for anything that does not bottom out in a
        plain name (subscripts, call results, ...).
        """
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        name = node.id
        base = self.names.get(name) or self.modules.get(name) or name
        parts.append(base)
        return ".".join(reversed(parts))


def call_has_argument(call: ast.Call) -> bool:
    """True if the call passes any positional or keyword argument."""
    return bool(call.args) or bool(call.keywords)


def final_attribute(node: ast.AST) -> Optional[str]:
    """The last attribute name of a dotted expression, if it is one."""
    return node.attr if isinstance(node, ast.Attribute) else None


def self_attribute(node: ast.AST) -> Optional[str]:
    """``attr`` for an expression that is exactly ``self.<attr>``."""
    if (isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"):
        return node.attr
    return None
