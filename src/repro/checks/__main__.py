"""``python -m repro.checks`` — run the invariant linter."""

import sys

from repro.checks.cli import main

if __name__ == "__main__":
    sys.exit(main())
