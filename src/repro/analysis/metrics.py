"""Spike-train and latency statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np


def mean_firing_rate(spike_counts: Sequence[int], duration_ms: float) -> float:
    """Mean firing rate in Hz of a population given per-neuron spike counts."""
    if duration_ms <= 0:
        raise ValueError("duration must be positive")
    counts = np.asarray(spike_counts, dtype=float)
    if counts.size == 0:
        return 0.0
    return float(counts.mean() * 1000.0 / duration_ms)


def isi_coefficient_of_variation(spike_times_ms: Sequence[float]) -> float:
    """Coefficient of variation of the inter-spike intervals of one train.

    Returns 0.0 for trains with fewer than three spikes (no meaningful
    interval statistics).  A Poisson train has CV close to 1; a regular
    train has CV close to 0.
    """
    times = np.sort(np.asarray(spike_times_ms, dtype=float))
    if times.size < 3:
        return 0.0
    intervals = np.diff(times)
    mean = intervals.mean()
    if mean == 0:
        return 0.0
    return float(intervals.std() / mean)


def spike_raster(spikes: Sequence[Tuple[float, int]], n_neurons: int,
                 duration_ms: float, bin_ms: float = 1.0) -> np.ndarray:
    """Bin ``(time, neuron)`` spike pairs into a (neurons x bins) raster."""
    if bin_ms <= 0 or duration_ms <= 0:
        raise ValueError("bin and duration must be positive")
    n_bins = int(np.ceil(duration_ms / bin_ms))
    raster = np.zeros((n_neurons, n_bins), dtype=int)
    for time_ms, neuron in spikes:
        if 0 <= neuron < n_neurons and 0 <= time_ms < duration_ms:
            raster[neuron, int(time_ms // bin_ms)] += 1
    return raster


@dataclass(frozen=True)
class LatencySummary:
    """Summary statistics of a latency distribution (microseconds)."""

    count: int
    mean_us: float
    p50_us: float
    p95_us: float
    p99_us: float
    max_us: float

    def within(self, deadline_us: float) -> bool:
        """True if even the maximum observed latency meets ``deadline_us``."""
        return self.max_us <= deadline_us


def latency_summary(latencies_us: Sequence[float]) -> LatencySummary:
    """Build a :class:`LatencySummary` from raw samples."""
    if not len(latencies_us):
        return LatencySummary(count=0, mean_us=0.0, p50_us=0.0, p95_us=0.0,
                              p99_us=0.0, max_us=0.0)
    data = np.asarray(latencies_us, dtype=float)
    return LatencySummary(
        count=int(data.size),
        mean_us=float(data.mean()),
        p50_us=float(np.percentile(data, 50)),
        p95_us=float(np.percentile(data, 95)),
        p99_us=float(np.percentile(data, 99)),
        max_us=float(data.max()))


def latency_by_distance(latencies_us: Sequence[float],
                        distances: Sequence[int]) -> Dict[int, LatencySummary]:
    """Group latency samples by hop distance (experiment E8)."""
    if len(latencies_us) != len(distances):
        raise ValueError("latencies and distances must be the same length")
    groups: Dict[int, List[float]] = {}
    for latency, distance in zip(latencies_us, distances):
        groups.setdefault(int(distance), []).append(latency)
    return {distance: latency_summary(samples)
            for distance, samples in sorted(groups.items())}
