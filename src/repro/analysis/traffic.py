"""Inter-chip link traffic statistics.

The communications fabric is "intended to operate in a lightly-loaded
regime to minimize congestion" (Section 5.3), and the multicast router
exists "to reduce total communication loading" relative to broadcast AER
(Section 4).  These helpers summarise what the links actually carried so
the benchmarks can quantify both claims.  Link and router counters are
maintained by both transports — per packet on the event path, in bulk by
the compiled transport fabric — so the summaries are transport-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.core.machine import SpiNNakerMachine


@dataclass(frozen=True)
class TrafficSummary:
    """Aggregate link-traffic statistics for one run."""

    total_packets: int
    total_bits: int
    active_links: int
    n_links: int
    max_link_packets: int
    mean_link_packets: float
    gini_concentration: float
    refused_packets: int

    @property
    def mean_packets_per_active_link(self) -> float:
        """Average load over the links that carried any traffic."""
        if self.active_links == 0:
            return 0.0
        return self.total_packets / self.active_links


def link_traffic_summary(machine: SpiNNakerMachine) -> TrafficSummary:
    """Summarise the traffic carried by every inter-chip link so far."""
    loads = np.array([link.packets_carried for link in machine.links.values()],
                     dtype=float)
    bits = sum(link.bits_carried for link in machine.links.values())
    refused = sum(link.packets_refused for link in machine.links.values())
    active = int(np.count_nonzero(loads))
    return TrafficSummary(
        total_packets=int(loads.sum()),
        total_bits=int(bits),
        active_links=active,
        n_links=loads.size,
        max_link_packets=int(loads.max()) if loads.size else 0,
        mean_link_packets=float(loads.mean()) if loads.size else 0.0,
        gini_concentration=_gini(loads),
        refused_packets=int(refused))


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of the load distribution (0 = even, 1 = concentrated)."""
    if values.size == 0:
        return 0.0
    total = values.sum()
    if total == 0:
        return 0.0
    sorted_values = np.sort(values)
    cumulative = np.cumsum(sorted_values)
    n = values.size
    # Standard discrete Gini formula.
    return float((n + 1 - 2 * np.sum(cumulative) / cumulative[-1]) / n)


def busiest_links(machine: SpiNNakerMachine,
                  top: int = 10) -> List[Tuple[str, int]]:
    """The ``top`` most heavily loaded links as ``(description, packets)``."""
    rows = [("%s -%s-> %s" % (link.source, link.direction.name, link.target),
             link.packets_carried)
            for link in machine.links.values() if link.packets_carried > 0]
    rows.sort(key=lambda item: -item[1])
    return rows[:top]


def per_chip_injection(machine: SpiNNakerMachine) -> Dict[str, int]:
    """Packets injected locally (by cores or the host) at each chip's router."""
    return {str(coordinate): chip.router.stats.injected_local
            for coordinate, chip in machine.chips.items()
            if chip.router.stats.injected_local > 0}


def transport_mix(machine: SpiNNakerMachine) -> Dict[str, int]:
    """How the machine's multicast traffic was carried.

    ``fabric_batches`` counts bulk accounting calls from the compiled
    transport fabric; ``multicast_routed`` counts logical packets however
    they travelled.  A pure event-driven run reports zero batches.
    """
    return {
        "multicast_routed": sum(chip.router.stats.multicast_routed
                                for chip in machine.chips.values()),
        "fabric_batches": sum(chip.router.stats.fabric_batches
                              for chip in machine.chips.values()),
    }
