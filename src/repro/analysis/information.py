"""Information-theoretic measures for neural codes (Section 5.4).

The paper's discussion of biological concurrency turns on how much
information a population of spiking neurons can convey: rate codes,
N-of-M population codes and rank-order codes trade spike count against
capacity, and the retina's lateral inhibition "reduces the information
redundancy in the resultant stream of spikes".  This module provides the
small set of estimators the coding benchmarks use to make those
statements quantitative:

* discrete entropy and mutual information between a stimulus variable
  and the decoded response;
* the theoretical capacity of N-of-M and rank-order codes
  (``log2 C(M, N)`` and ``log2 M!/(M-N)!`` respectively);
* a redundancy measure over a set of response channels, used to show
  that lateral inhibition decorrelates the ganglion-cell outputs.

All estimators work on plain sequences or numpy arrays and are
deliberately simple (plug-in estimators with optional bias correction);
the benchmarks use hundreds-to-thousands of samples where plug-in
estimates are adequate for the comparative claims being reproduced.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

import numpy as np

__all__ = [
    "entropy",
    "entropy_from_counts",
    "joint_entropy",
    "mutual_information",
    "n_of_m_capacity_bits",
    "rank_order_capacity_bits",
    "rate_code_capacity_bits",
    "redundancy",
    "population_sparseness",
    "ChannelStatistics",
    "channel_statistics",
]


def _probabilities(counts: Iterable[int]) -> np.ndarray:
    """Normalise a count vector into a probability vector."""
    array = np.asarray(list(counts), dtype=float)
    total = array.sum()
    if total <= 0:
        return np.zeros(0)
    return array[array > 0] / total


def entropy_from_counts(counts: Iterable[int]) -> float:
    """Shannon entropy (bits) of a distribution given as occurrence counts."""
    probabilities = _probabilities(counts)
    if probabilities.size == 0:
        return 0.0
    return float(-(probabilities * np.log2(probabilities)).sum())


def entropy(samples: Sequence[Hashable]) -> float:
    """Plug-in Shannon entropy (bits) of a sequence of discrete samples."""
    if not samples:
        return 0.0
    return entropy_from_counts(Counter(samples).values())


def joint_entropy(first: Sequence[Hashable], second: Sequence[Hashable]) -> float:
    """Entropy (bits) of the joint distribution of two aligned sample streams."""
    if len(first) != len(second):
        raise ValueError("joint entropy needs aligned sample sequences")
    return entropy(list(zip(first, second)))


def mutual_information(stimulus: Sequence[Hashable],
                       response: Sequence[Hashable]) -> float:
    """Mutual information (bits) between aligned stimulus and response samples.

    ``I(S; R) = H(S) + H(R) - H(S, R)`` with plug-in entropies.  The result
    is clipped at zero: tiny negative values can appear through floating-
    point cancellation when the variables are independent.
    """
    information = (entropy(stimulus) + entropy(response)
                   - joint_entropy(stimulus, response))
    return max(0.0, information)


def n_of_m_capacity_bits(n_active: int, population: int) -> float:
    """Capacity (bits) of an unordered N-of-M code: ``log2 C(M, N)``."""
    if not 0 <= n_active <= population:
        raise ValueError("need 0 <= N <= M")
    return math.log2(math.comb(population, n_active)) if population else 0.0


def rank_order_capacity_bits(n_active: int, population: int) -> float:
    """Capacity (bits) of a rank-order code: ``log2 (M! / (M-N)!)``.

    The N active neurons convey information both in *which* neurons fire
    and in the *order* in which they fire [20], so the codebook is the set
    of ordered selections of N neurons out of M.
    """
    if not 0 <= n_active <= population:
        raise ValueError("need 0 <= N <= M")
    return (math.lgamma(population + 1) - math.lgamma(population - n_active + 1)) / math.log(2)


def rate_code_capacity_bits(max_rate_hz: float, window_ms: float,
                            rate_resolution_hz: float = 1.0) -> float:
    """Capacity (bits) of a single-neuron rate code over an observation window.

    A rate code observed for ``window_ms`` can distinguish at most
    ``max_rate * window`` spike counts, i.e. roughly
    ``log2(1 + max_rate * window)`` bits; with a coarser resolvable rate
    step the number of distinguishable levels shrinks accordingly.  This is
    the quantity that collapses to ~1 bit when "there is time for any
    neuron ... to fire no more than once".
    """
    if max_rate_hz < 0 or window_ms < 0:
        raise ValueError("rate and window must be non-negative")
    if rate_resolution_hz <= 0:
        raise ValueError("rate resolution must be positive")
    max_count = max_rate_hz * window_ms / 1000.0
    levels = 1.0 + max_count / max(1.0, rate_resolution_hz * window_ms / 1000.0)
    return math.log2(levels)


def redundancy(channels: Sequence[Sequence[Hashable]]) -> float:
    """Multi-channel redundancy: ``sum_i H(X_i) - H(X_1, ..., X_n)`` in bits.

    Zero means the channels are statistically independent (no redundancy);
    larger values mean the channels repeat each other's information.  The
    retina benchmark uses this to show lateral inhibition lowers the
    redundancy of neighbouring ganglion-cell outputs.
    """
    if not channels:
        return 0.0
    lengths = {len(channel) for channel in channels}
    if len(lengths) != 1:
        raise ValueError("all channels must have the same number of samples")
    marginal = sum(entropy(list(channel)) for channel in channels)
    joint = entropy(list(zip(*channels)))
    return max(0.0, marginal - joint)


def population_sparseness(activity: Sequence[float]) -> float:
    """Treves–Rolls population sparseness of an activity vector in [0, 1].

    1 means maximally sparse (a single unit carries all the activity);
    0 means perfectly uniform activity.  Sparse population activity is the
    regime in which N-of-M codes with small N operate.
    """
    values = np.asarray(activity, dtype=float)
    if values.size == 0:
        return 0.0
    values = np.abs(values)
    total = values.sum()
    if total <= 0:
        return 0.0
    mean = values.mean()
    mean_square = (values ** 2).mean()
    if mean_square <= 0:
        return 0.0
    treves_rolls = (mean ** 2) / mean_square
    n = values.size
    if n == 1:
        return 0.0
    sparseness = (1.0 - treves_rolls) / (1.0 - 1.0 / n)
    # Floating-point cancellation can push perfectly uniform activity a few
    # ulps outside [0, 1]; clamp so callers can rely on the documented range.
    return float(min(1.0, max(0.0, sparseness)))


@dataclass(frozen=True)
class ChannelStatistics:
    """Summary statistics of a discrete response channel."""

    entropy_bits: float
    n_symbols: int
    n_samples: int
    most_common_symbol: Hashable
    most_common_fraction: float


def channel_statistics(samples: Sequence[Hashable]) -> ChannelStatistics:
    """Entropy and symbol statistics of one response channel."""
    if not samples:
        return ChannelStatistics(entropy_bits=0.0, n_symbols=0, n_samples=0,
                                 most_common_symbol=None,
                                 most_common_fraction=0.0)
    counts = Counter(samples)
    symbol, count = counts.most_common(1)[0]
    return ChannelStatistics(entropy_bits=entropy(samples),
                             n_symbols=len(counts),
                             n_samples=len(samples),
                             most_common_symbol=symbol,
                             most_common_fraction=count / len(samples))
