"""Analysis utilities used by the tests, examples and benchmarks.

* :mod:`repro.analysis.metrics` — spike-train statistics (rates, ISI
  coefficient of variation, rasters) and latency-distribution summaries.
* :mod:`repro.analysis.traffic` — inter-chip link traffic statistics used
  by the multicast-versus-broadcast and congestion experiments.
* :mod:`repro.analysis.information` — entropy, mutual-information and
  code-capacity estimators used by the neural-coding experiments of
  Section 5.4.
"""

from repro.analysis.information import (
    ChannelStatistics,
    channel_statistics,
    entropy,
    entropy_from_counts,
    joint_entropy,
    mutual_information,
    n_of_m_capacity_bits,
    population_sparseness,
    rank_order_capacity_bits,
    rate_code_capacity_bits,
    redundancy,
)
from repro.analysis.metrics import (
    LatencySummary,
    isi_coefficient_of_variation,
    latency_summary,
    mean_firing_rate,
    spike_raster,
)
from repro.analysis.traffic import TrafficSummary, link_traffic_summary

__all__ = [
    "ChannelStatistics",
    "channel_statistics",
    "entropy",
    "entropy_from_counts",
    "joint_entropy",
    "mutual_information",
    "n_of_m_capacity_bits",
    "population_sparseness",
    "rank_order_capacity_bits",
    "rate_code_capacity_bits",
    "redundancy",
    "LatencySummary",
    "isi_coefficient_of_variation",
    "latency_summary",
    "mean_firing_rate",
    "spike_raster",
    "TrafficSummary",
    "link_traffic_summary",
]
