"""Congestion analysis of the inter-chip fabric (Section 5.3).

The paper states that the communications fabric is "intended to operate in
a lightly-loaded regime to minimize congestion", that spike traffic is
bursty, and that "the failure of an inter-chip link will cause major local
congestion".  This module provides the measurement side of those claims:

* :func:`link_load_matrix` — the per-link load as a ``(width, height, 6)``
  array suitable for heat-map inspection;
* :func:`link_utilisations` — per-link utilisation over an observation
  window, using each link's modelled bandwidth;
* :func:`congestion_report` — aggregate utilisation, refusal and emergency
  statistics with the hotspot links spelled out;
* :func:`hotspot_chips` — the chips whose attached links carry the most
  traffic, which is where the monitor processor would intervene;
* :func:`saturation_injection_rate` — the analytic per-core injection rate
  at which the bisection of a torus saturates, used by the scale studies to
  show why the lightly-loaded regime is required.

All measurement functions are read-only: they never modify machine state,
so they can be called repeatedly during a run.  They read the per-link
counters that both transports maintain — per packet by the event-driven
router, in bulk by the compiled transport fabric
(:mod:`repro.router.fabric`) — so a congestion picture is available
whichever transport carried the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import SpiNNakerMachine

__all__ = [
    "LinkLoad",
    "CongestionReport",
    "link_load_matrix",
    "link_utilisations",
    "congestion_report",
    "hotspot_chips",
    "saturation_injection_rate",
]


@dataclass(frozen=True)
class LinkLoad:
    """The observed load of one unidirectional inter-chip link."""

    source: ChipCoordinate
    direction: Direction
    packets: int
    refused: int
    utilisation: float
    failed: bool

    @property
    def description(self) -> str:
        """Human-readable link label used in reports."""
        return "%s -%s->" % (self.source, self.direction.name)


@dataclass(frozen=True)
class CongestionReport:
    """Aggregate congestion statistics for one observation window."""

    elapsed_us: float
    total_packets: int
    total_refused: int
    mean_utilisation: float
    peak_utilisation: float
    links_above_threshold: int
    failed_links: int
    emergency_invocations: int
    dropped_packets: int
    hotspots: Tuple[LinkLoad, ...]

    @property
    def refusal_ratio(self) -> float:
        """Fraction of link offers that were refused (congestion back-pressure)."""
        offered = self.total_packets + self.total_refused
        if offered == 0:
            return 0.0
        return self.total_refused / offered

    @property
    def lightly_loaded(self) -> bool:
        """True when the fabric is in the paper's lightly-loaded regime."""
        return self.peak_utilisation < 0.5 and self.total_refused == 0


def link_load_matrix(machine: SpiNNakerMachine) -> np.ndarray:
    """Per-link packet counts as a ``(width, height, 6)`` array.

    Index ``[x, y, d]`` is the number of packets carried by the link leaving
    chip ``(x, y)`` in direction ``d`` since the machine was built.
    """
    shape = (machine.config.width, machine.config.height, len(Direction))
    matrix = np.zeros(shape, dtype=int)
    for (coordinate, direction), link in machine.links.items():
        matrix[coordinate.x, coordinate.y, direction.value] = link.packets_carried
    return matrix


def link_utilisations(machine: SpiNNakerMachine,
                      elapsed_us: Optional[float] = None) -> List[LinkLoad]:
    """Per-link utilisation over ``elapsed_us`` (defaults to the kernel time)."""
    if elapsed_us is None:
        elapsed_us = machine.kernel.now
    if elapsed_us < 0:
        raise ValueError("the observation window must be non-negative")
    loads: List[LinkLoad] = []
    for (coordinate, direction), link in machine.links.items():
        loads.append(LinkLoad(source=coordinate, direction=direction,
                              packets=link.packets_carried,
                              refused=link.packets_refused,
                              utilisation=link.utilisation(elapsed_us),
                              failed=link.failed))
    return loads


def congestion_report(machine: SpiNNakerMachine,
                      elapsed_us: Optional[float] = None,
                      utilisation_threshold: float = 0.5,
                      n_hotspots: int = 5) -> CongestionReport:
    """Build the aggregate congestion picture of the machine.

    ``utilisation_threshold`` defines what counts as a congested link;
    ``n_hotspots`` bounds how many of the worst links are listed.
    """
    if not 0.0 < utilisation_threshold <= 1.0:
        raise ValueError("utilisation threshold must lie in (0, 1]")
    if elapsed_us is None:
        elapsed_us = machine.kernel.now
    loads = link_utilisations(machine, elapsed_us)
    utilisations = np.array([load.utilisation for load in loads]) \
        if loads else np.zeros(1)
    hotspots = tuple(sorted((load for load in loads if load.packets > 0),
                            key=lambda load: -load.utilisation)[:n_hotspots])
    return CongestionReport(
        elapsed_us=elapsed_us,
        total_packets=sum(load.packets for load in loads),
        total_refused=sum(load.refused for load in loads),
        mean_utilisation=float(utilisations.mean()),
        peak_utilisation=float(utilisations.max()),
        links_above_threshold=sum(1 for load in loads
                                  if load.utilisation >= utilisation_threshold),
        failed_links=sum(1 for load in loads if load.failed),
        emergency_invocations=machine.total_emergency_invocations(),
        dropped_packets=machine.total_dropped_packets(),
        hotspots=hotspots)


def hotspot_chips(machine: SpiNNakerMachine,
                  top: int = 5) -> List[Tuple[ChipCoordinate, int]]:
    """Chips ranked by the traffic on their outgoing links (busiest first)."""
    if top < 1:
        raise ValueError("need at least one hotspot")
    per_chip: Dict[ChipCoordinate, int] = {}
    for (coordinate, _direction), link in machine.links.items():
        per_chip[coordinate] = per_chip.get(coordinate, 0) + link.packets_carried
    ranked = sorted(per_chip.items(), key=lambda item: -item[1])
    return [(coordinate, packets) for coordinate, packets in ranked[:top]
            if packets > 0]


def saturation_injection_rate(width: int, height: int,
                              link_packets_per_us: float = 6.0,
                              cores_per_chip: int = 20,
                              mean_hops: Optional[float] = None) -> float:
    """Per-core injection rate (packets/ms) at which the torus saturates.

    The aggregate link bandwidth of a ``width x height`` torus is
    ``6 * width * height * link_packets_per_us``; uniformly-destined traffic
    with a mean path length of ``mean_hops`` consumes that many link
    traversals per packet, so the sustainable aggregate injection rate is
    the ratio of the two.  Dividing by the number of application cores
    gives the per-core rate the lightly-loaded design point must stay well
    below.
    """
    if width < 1 or height < 1:
        raise ValueError("the mesh must have positive dimensions")
    if link_packets_per_us <= 0 or cores_per_chip < 2:
        raise ValueError("need positive link bandwidth and at least two "
                         "cores per chip (one monitor, one application)")
    if mean_hops is None:
        # Mean shortest-path hop count of a uniform random pair on a torus
        # is approximately (width + height) / 4 for rectangular tori.
        mean_hops = (width + height) / 4.0
    if mean_hops <= 0:
        raise ValueError("the mean hop count must be positive")
    total_link_rate_per_us = len(Direction) * width * height * link_packets_per_us
    aggregate_injection_per_us = total_link_rate_per_us / mean_hops
    application_cores = width * height * (cores_per_chip - 1)
    per_core_per_us = aggregate_injection_per_us / application_cores
    return per_core_per_us * 1000.0
