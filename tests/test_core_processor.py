"""Unit tests for the processor subsystem and its event model (Figs 4, 7)."""

from __future__ import annotations

import pytest

from repro.core.clock import ClockDomain
from repro.core.dma import DMAController
from repro.core.event_kernel import EventKernel
from repro.core.packets import MulticastPacket
from repro.core.processor import ProcessorState, ProcessorSubsystem
from repro.core.sdram import SDRAM


def make_core(kernel=None, send_packet=None):
    kernel = kernel or EventKernel()
    sdram = SDRAM()
    dma = DMAController(kernel, sdram)
    core = ProcessorSubsystem(kernel, core_id=0,
                              clock=ClockDomain("core-0", 200.0),
                              dma=dma, send_packet=send_packet)
    return kernel, core


class TestLifecycle:
    def test_initial_state_is_off(self):
        _, core = make_core()
        assert core.state is ProcessorState.OFF
        assert not core.is_available

    def test_self_test_pass_moves_to_ready(self):
        _, core = make_core()
        assert core.run_self_test(True)
        assert core.state is ProcessorState.READY
        assert core.is_available

    def test_self_test_failure_moves_to_failed(self):
        _, core = make_core()
        assert not core.run_self_test(False)
        assert core.state is ProcessorState.FAILED
        assert not core.is_available

    def test_become_monitor_requires_ready(self):
        _, core = make_core()
        with pytest.raises(RuntimeError):
            core.become_monitor()
        core.run_self_test(True)
        core.become_monitor()
        assert core.state is ProcessorState.MONITOR

    def test_failed_core_cannot_start_application(self):
        _, core = make_core()
        core.run_self_test(False)
        with pytest.raises(RuntimeError):
            core.start_application()

    def test_disable_maps_core_out(self):
        _, core = make_core()
        core.run_self_test(True)
        core.disable()
        assert core.state is ProcessorState.DISABLED
        assert not core.is_available

    def test_application_core_flag(self):
        _, core = make_core()
        core.run_self_test(True)
        core.start_application()
        assert core.is_application_core


class TestMemoryBudget:
    def test_code_must_fit_itcm(self):
        _, core = make_core()
        core.load_application(32 * 1024)
        with pytest.raises(MemoryError):
            core.load_application(32 * 1024 + 1)

    def test_data_must_fit_dtcm(self):
        _, core = make_core()
        with pytest.raises(MemoryError):
            core.load_application(1024, data_bytes=64 * 1024 + 1)


class TestEventModel:
    def test_packet_handler_runs_after_handler_cost(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        received = []
        core.on_packet(lambda packet: received.append((kernel.now, packet.key)))
        core.deliver_packet(MulticastPacket(key=3))
        kernel.run()
        assert len(received) == 1
        time, key = received[0]
        assert key == 3
        # 80 cycles at 200 MHz is 0.4 us.
        assert time == pytest.approx(0.4)

    def test_packets_ignored_before_application_starts(self):
        kernel, core = make_core()
        core.run_self_test(True)
        handled = []
        core.on_packet(lambda packet: handled.append(packet))
        core.deliver_packet(MulticastPacket(key=1))
        kernel.run()
        assert handled == []
        assert core.packets_received == 1

    def test_timer_fires_periodically(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        ticks = []
        core.on_timer(lambda: ticks.append(kernel.now))
        core.start_timer(1000.0)
        kernel.run_until(3500.0)
        assert len(ticks) == 3

    def test_stop_timer_halts_ticks(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        ticks = []
        core.on_timer(lambda: ticks.append(kernel.now))
        core.start_timer(1000.0)
        kernel.run_until(1500.0)
        core.stop_timer()
        kernel.run_until(5000.0)
        assert len(ticks) == 1

    def test_timer_offset_staggers_first_tick(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        ticks = []
        core.on_timer(lambda: ticks.append(kernel.now))
        core.start_timer(1000.0, start_offset_us=250.0)
        kernel.run_until(1300.0)
        assert len(ticks) == 1

    def test_priority_order_packet_before_timer(self):
        # A packet and a timer event pending together must run the packet
        # handler first (priority 1 beats priority 3, Figure 7).
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        order = []
        core.on_packet(lambda packet: order.append("packet"))
        core.on_timer(lambda: order.append("timer"))
        # Raise both interrupts at the same simulated instant while the
        # core is busy with an earlier packet, so they queue together.
        core.deliver_packet(MulticastPacket(key=1))
        core.deliver_packet(MulticastPacket(key=2))
        core._timer_tick(kernel)
        kernel.run()
        assert order[0] == "packet"
        assert order.count("packet") == 2
        assert order[-1] == "timer"

    def test_busy_time_accumulates(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        core.on_packet(lambda packet: None)
        for key in range(5):
            core.deliver_packet(MulticastPacket(key=key))
        kernel.run()
        assert core.busy_time_us == pytest.approx(5 * 0.4)
        assert core.handler_invocations["packet"] == 5

    def test_charge_cycles_extends_busy_time(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        core.on_packet(lambda packet: core.charge_cycles(200.0))
        core.deliver_packet(MulticastPacket(key=0))
        kernel.run()
        assert core.busy_time_us == pytest.approx(0.4 + 1.0)

    def test_core_sleeps_when_idle(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        core.on_packet(lambda packet: None)
        core.deliver_packet(MulticastPacket(key=0))
        kernel.run()
        assert core.state is ProcessorState.SLEEPING

    def test_send_multicast_requires_comms_controller(self):
        _, core = make_core(send_packet=None)
        with pytest.raises(RuntimeError):
            core.send_multicast(MulticastPacket(key=1))

    def test_send_multicast_counts_packets(self):
        sent = []
        kernel, core = make_core(send_packet=lambda cid, pkt: sent.append((cid, pkt.key)))
        core.send_multicast(MulticastPacket(key=9))
        assert sent == [(0, 9)]
        assert core.packets_sent == 1

    def test_utilisation_bounded(self):
        kernel, core = make_core()
        core.run_self_test(True)
        core.start_application()
        core.on_packet(lambda packet: None)
        core.deliver_packet(MulticastPacket(key=0))
        kernel.run()
        assert 0.0 < core.utilisation(10.0) <= 1.0
        assert core.utilisation(0.0) == 0.0

    def test_invalid_timer_period_rejected(self):
        _, core = make_core()
        with pytest.raises(ValueError):
            core.start_timer(0.0)
        with pytest.raises(ValueError):
            core.start_timer(1000.0, start_offset_us=-1.0)
