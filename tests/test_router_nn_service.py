"""Tests for the nearest-neighbour management service (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.router.nn import NeighbourhoodService
from repro.runtime.boot import BootController


def booted_machine(width=3, height=3, cores=4, seed=2):
    machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                             cores_per_chip=cores))
    BootController(machine, seed=seed).boot()
    return machine


ORIGIN = ChipCoordinate(0, 0)


class TestProbe:
    def test_probe_booted_neighbour(self):
        service = NeighbourhoodService(booted_machine())
        assert service.probe(ORIGIN, Direction.EAST) is True
        assert service.stats.probes_sent == 1
        assert service.stats.replies_received == 1

    def test_census_covers_all_six_directions(self):
        service = NeighbourhoodService(booted_machine())
        census = service.census(ChipCoordinate(1, 1))
        assert set(census) == set(Direction)
        assert all(census.values())
        assert service.dead_neighbours(ChipCoordinate(1, 1)) == []

    def test_probe_across_failed_link_reports_dead(self):
        machine = booted_machine()
        machine.fail_link(ORIGIN, Direction.NORTH)
        service = NeighbourhoodService(machine)
        assert service.probe(ORIGIN, Direction.NORTH) is False
        assert Direction.NORTH in service.dead_neighbours(ORIGIN)
        assert service.stats.requests_unanswered >= 1

    def test_probe_unbooted_neighbour_reports_dead(self):
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=4))
        # No boot: chips have no monitor and report themselves not alive.
        service = NeighbourhoodService(machine)
        assert service.probe(ORIGIN, Direction.EAST) is False


class TestPeekPoke:
    def test_poke_then_peek_round_trip(self):
        machine = booted_machine()
        service = NeighbourhoodService(machine)
        assert service.poke(ORIGIN, Direction.EAST, address=3, value=0xBEEF)
        assert service.peek(ORIGIN, Direction.EAST, address=3) == 0xBEEF
        neighbour = machine.chips[ChipCoordinate(1, 0)]
        assert neighbour.system_ram[3] == 0xBEEF

    def test_peek_out_of_range_returns_none(self):
        service = NeighbourhoodService(booted_machine())
        assert service.peek(ORIGIN, Direction.EAST, address=10_000) is None

    def test_negative_addresses_rejected(self):
        service = NeighbourhoodService(booted_machine())
        with pytest.raises(ValueError):
            service.peek(ORIGIN, Direction.EAST, address=-1)
        with pytest.raises(ValueError):
            service.poke(ORIGIN, Direction.EAST, address=-1, value=0)

    def test_poke_across_failed_link_fails(self):
        machine = booted_machine()
        machine.fail_link(ORIGIN, Direction.WEST)
        service = NeighbourhoodService(machine)
        assert service.poke(ORIGIN, Direction.WEST, address=0, value=1) is False

    def test_copy_boot_code_writes_every_word(self):
        machine = booted_machine()
        service = NeighbourhoodService(machine)
        image = [0x100 + i for i in range(16)]
        written = service.copy_boot_code(ORIGIN, Direction.NORTH, image)
        assert written == len(image)
        # The neighbour to the north of (0, 0) is (0, 1).
        neighbour = machine.chips[ChipCoordinate(0, 1)]
        assert neighbour.system_ram[:len(image)] == image

    def test_statistics_track_requests(self):
        service = NeighbourhoodService(booted_machine())
        service.probe(ORIGIN, Direction.EAST)
        service.peek(ORIGIN, Direction.EAST, 0)
        service.poke(ORIGIN, Direction.EAST, 0, 7)
        stats = service.stats
        assert stats.probes_sent == 1
        assert stats.peeks_sent == 1
        assert stats.pokes_sent == 1
        assert stats.requests_served == 3
        assert stats.replies_received == 3


class TestHandlerCoexistence:
    def test_boot_handlers_preserved_after_uninstall(self):
        machine = booted_machine()
        handlers_before = {coordinate: chip._nn_handler
                           for coordinate, chip in machine.chips.items()}
        service = NeighbourhoodService(machine)
        assert machine.chips[ORIGIN]._nn_handler is not handlers_before[ORIGIN]
        service.uninstall()
        handlers_after = {coordinate: chip._nn_handler
                          for coordinate, chip in machine.chips.items()}
        assert handlers_after == handlers_before

    def test_service_does_not_break_subsequent_boot_traffic(self):
        # Installing the service and then re-running boot must still work:
        # non-service commands are forwarded to the previous handler.
        machine = booted_machine()
        NeighbourhoodService(machine)
        result = BootController(machine, seed=9).boot()
        assert result.all_chips_operational

    def test_torus_wraparound_neighbours_are_reachable(self):
        # On a 3x3 torus the west neighbour of (0, 0) is (2, 0).
        machine = booted_machine()
        service = NeighbourhoodService(machine)
        assert service.poke(ORIGIN, Direction.WEST, address=1, value=42)
        assert machine.chips[ChipCoordinate(2, 0)].system_ram[1] == 42
