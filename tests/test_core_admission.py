"""Tests for the QoS admission-control layer (Section 4, reference [12])."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import (
    BEST_EFFORT,
    GUARANTEED_REALTIME,
    AdmissionController,
    TokenBucketRegulator,
    TrafficClass,
)


class TestTrafficClass:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            TrafficClass(name="bad", guaranteed_rate_packets_per_ms=-1.0)

    def test_zero_burst_rejected(self):
        with pytest.raises(ValueError):
            TrafficClass(name="bad", guaranteed_rate_packets_per_ms=1.0,
                         burst_packets=0)

    def test_predefined_classes(self):
        assert BEST_EFFORT.guaranteed_rate_packets_per_ms == 0.0
        assert GUARANTEED_REALTIME.guaranteed_rate_packets_per_ms > 0.0
        assert GUARANTEED_REALTIME.priority < BEST_EFFORT.priority


class TestTokenBucketRegulator:
    def test_burst_admitted_then_throttled(self):
        cls = TrafficClass(name="rt", guaranteed_rate_packets_per_ms=1.0,
                           burst_packets=4)
        regulator = TokenBucketRegulator(cls)
        admitted = [regulator.admit(0.0) for _ in range(6)]
        assert admitted == [True, True, True, True, False, False]
        assert regulator.admitted == 4
        assert regulator.rejected == 2

    def test_tokens_refill_at_guaranteed_rate(self):
        cls = TrafficClass(name="rt", guaranteed_rate_packets_per_ms=2.0,
                           burst_packets=2)
        regulator = TokenBucketRegulator(cls)
        assert regulator.admit(0.0)
        assert regulator.admit(0.0)
        assert not regulator.admit(0.0)
        # After 1 ms, 2 tokens have accrued again.
        assert regulator.admit(1.0)
        assert regulator.admit(1.0)
        assert not regulator.admit(1.0)

    def test_tokens_never_exceed_burst_depth(self):
        cls = TrafficClass(name="rt", guaranteed_rate_packets_per_ms=10.0,
                           burst_packets=3)
        regulator = TokenBucketRegulator(cls)
        regulator.admit(0.0)
        # A long idle period refills to the burst depth, not beyond.
        regulator.admit(100.0)
        assert regulator.tokens <= cls.burst_packets

    def test_time_must_not_go_backwards(self):
        regulator = TokenBucketRegulator(GUARANTEED_REALTIME)
        regulator.admit(5.0)
        with pytest.raises(ValueError):
            regulator.admit(4.0)

    def test_would_admit_has_no_side_effects(self):
        cls = TrafficClass(name="rt", guaranteed_rate_packets_per_ms=1.0,
                           burst_packets=1)
        regulator = TokenBucketRegulator(cls)
        assert regulator.would_admit(0.0)
        assert regulator.would_admit(0.0)
        assert regulator.admitted == 0
        assert regulator.admit(0.0)
        assert not regulator.would_admit(0.0)

    def test_zero_rate_class_never_refills(self):
        regulator = TokenBucketRegulator(BEST_EFFORT)
        for _ in range(BEST_EFFORT.burst_packets):
            assert regulator.admit(0.0)
        assert not regulator.admit(1000.0)

    @settings(max_examples=50, deadline=None)
    @given(rate=st.floats(min_value=0.1, max_value=50.0),
           burst=st.integers(min_value=1, max_value=32),
           n=st.integers(min_value=1, max_value=200))
    def test_long_term_rate_never_exceeded(self, rate, burst, n):
        """Over any window the admitted count is bounded by burst + rate * T."""
        cls = TrafficClass(name="p", guaranteed_rate_packets_per_ms=rate,
                           burst_packets=burst)
        regulator = TokenBucketRegulator(cls)
        window_ms = 10.0
        admitted = 0
        for i in range(n):
            time_ms = i * window_ms / n
            if regulator.admit(time_ms):
                admitted += 1
        assert admitted <= burst + rate * window_ms + 1e-9


class TestAdmissionController:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(link_capacity_packets_per_ms=0.0)
        with pytest.raises(ValueError):
            AdmissionController(reservable_fraction=0.0)
        with pytest.raises(ValueError):
            AdmissionController(reservable_fraction=1.5)

    def test_registration_polices_reservable_capacity(self):
        controller = AdmissionController(link_capacity_packets_per_ms=100.0,
                                         reservable_fraction=0.5)
        heavy = TrafficClass(name="heavy", guaranteed_rate_packets_per_ms=30.0)
        assert controller.register("core-0", heavy)
        assert controller.register("core-1", heavy) is False
        assert controller.reserved_rate_packets_per_ms == pytest.approx(30.0)

    def test_reregistration_is_idempotent(self):
        controller = AdmissionController()
        assert controller.register("core-0", GUARANTEED_REALTIME)
        assert controller.register("core-0", GUARANTEED_REALTIME)
        assert controller.reserved_rate_packets_per_ms == pytest.approx(
            GUARANTEED_REALTIME.guaranteed_rate_packets_per_ms)

    def test_deregistration_releases_rate(self):
        controller = AdmissionController(link_capacity_packets_per_ms=100.0,
                                         reservable_fraction=0.5)
        heavy = TrafficClass(name="heavy", guaranteed_rate_packets_per_ms=40.0)
        controller.register("core-0", heavy)
        controller.deregister("core-0", "heavy")
        assert controller.reserved_rate_packets_per_ms == 0.0
        assert controller.register("core-1", heavy)

    def test_reserved_traffic_admitted_on_reservation(self):
        controller = AdmissionController()
        controller.register("core-0", GUARANTEED_REALTIME)
        decision = controller.request("core-0", "realtime-spikes", now_ms=0.0)
        assert decision.admitted
        assert decision.reason == "reservation"
        assert controller.stats.admitted_on_reservation == 1

    def test_unreserved_traffic_uses_spare_capacity(self):
        controller = AdmissionController(link_capacity_packets_per_ms=10.0)
        decision = controller.request("core-3", "best-effort", now_ms=0.0)
        assert decision.admitted
        assert decision.reason == "spare-capacity"

    def test_spare_capacity_is_bounded_per_window(self):
        controller = AdmissionController(link_capacity_packets_per_ms=5.0,
                                         reservable_fraction=0.5)
        admitted = controller.admit_burst("core-3", "best-effort", now_ms=0.0,
                                          n_packets=20)
        assert admitted == 5
        assert controller.stats.rejected == 15

    def test_spare_window_resets_after_one_ms(self):
        controller = AdmissionController(link_capacity_packets_per_ms=4.0)
        first = controller.admit_burst("src", "best-effort", 0.0, 10)
        second = controller.admit_burst("src", "best-effort", 1.5, 10)
        assert first == 4
        assert second == 4

    def test_over_subscribed_requests_rejected_and_logged(self):
        controller = AdmissionController(link_capacity_packets_per_ms=2.0,
                                         reservable_fraction=0.5)
        controller.admit_burst("src", "best-effort", 0.0, 5)
        rejected = [d for d in controller.decisions if not d.admitted]
        assert rejected
        assert all(d.reason == "over-subscribed" for d in rejected)

    def test_statistics_are_consistent(self):
        controller = AdmissionController(link_capacity_packets_per_ms=8.0)
        controller.register("core-0", GUARANTEED_REALTIME)
        controller.admit_burst("core-0", "realtime-spikes", 0.0, 10)
        controller.admit_burst("core-5", "best-effort", 0.2, 10)
        stats = controller.stats
        assert stats.requests == 20
        assert stats.admitted + stats.rejected == stats.requests
        assert stats.admitted == (stats.admitted_on_reservation
                                  + stats.admitted_on_spare_capacity)
        assert 0.0 <= stats.admission_ratio <= 1.0

    def test_admission_ratio_zero_with_no_requests(self):
        assert AdmissionController().stats.admission_ratio == 0.0

    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController().admit_burst("s", "best-effort", 0.0, -1)

    def test_admitted_rate_for_unknown_source_is_zero(self):
        controller = AdmissionController()
        assert controller.admitted_rate_for("ghost", "realtime-spikes") == 0

    def test_reserved_class_still_served_under_best_effort_flood(self):
        """QoS property: a flood of best-effort traffic cannot starve a
        reserved real-time source of its guaranteed rate."""
        controller = AdmissionController(link_capacity_packets_per_ms=50.0,
                                         reservable_fraction=0.75)
        rt = TrafficClass(name="rt", guaranteed_rate_packets_per_ms=10.0,
                          burst_packets=10)
        controller.register("rt-core", rt)
        rt_admitted = 0
        for step in range(100):
            now = step * 0.1
            controller.admit_burst("noisy", "best-effort", now, 20)
            if controller.request("rt-core", "rt", now).admitted:
                rt_admitted += 1
        # 10 ms simulated at 10 packets/ms guaranteed -> about 100 admissions
        # are owed; allow the initial bucket fill to dominate the floor.
        assert rt_admitted >= 90
