"""Tests for the ``repro.checks`` invariant linter.

Each rule gets at least one deliberately-violating fixture and one clean
fixture under ``tests/fixtures/checks/`` (a directory the engine never
descends into on its own — fixtures would fail the real gate by design).
The suite closes with the gate itself: the linter must exit clean over
the actual ``src``, ``tests`` and ``benchmarks`` trees.
"""

from __future__ import annotations

import json
import os

from repro.checks import registered_checkers, render_report, run_paths
from repro.checks.cli import main
from repro.checks.framework import (RULE_BAD_SUPPRESSION, RULE_PARSE_ERROR,
                                    iter_python_files)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
FIXTURES = os.path.join(REPO_ROOT, "tests", "fixtures", "checks")


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def rules_hit(paths):
    violations, _ = run_paths(paths if isinstance(paths, list) else [paths])
    return violations, {v.rule for v in violations}


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------
def test_at_least_five_rules_registered():
    names = set(registered_checkers())
    assert {"determinism", "clock-discipline", "lock-discipline",
            "api-surface", "bench-hygiene"} <= names


# ---------------------------------------------------------------------------
# determinism
# ---------------------------------------------------------------------------
def test_determinism_flags_every_hidden_rng():
    violations, rules = rules_hit(fixture("determinism_flagged.py"))
    assert rules == {"determinism"}
    messages = " ".join(v.message for v in violations)
    assert "random.random" in messages
    assert "random.Random()" in messages
    assert "numpy.random.rand" in messages
    assert "without a seed" in messages
    assert len(violations) == 5


def test_determinism_clean_fixture_passes():
    _, rules = rules_hit(fixture("determinism_clean.py"))
    assert rules == set()


def test_determinism_seam_discipline_inside_shipped_tree():
    violations, rules = rules_hit([fixture("det_tree")])
    # The private seeded generator in shipped code is flagged; the seam
    # module itself is exempt.
    assert rules == {"determinism"}
    assert len(violations) == 1
    assert violations[0].path.endswith("engine.py")
    assert "route through" in violations[0].message


# ---------------------------------------------------------------------------
# clock-discipline
# ---------------------------------------------------------------------------
def test_clocks_flags_ambient_reads():
    violations, rules = rules_hit(fixture("clocks_flagged.py"))
    assert rules == {"clock-discipline"}
    messages = " ".join(v.message for v in violations)
    assert "time.time" in messages
    assert "time.monotonic" in messages
    assert "datetime.now" in messages
    assert "utcnow" in messages
    assert len(violations) == 4


def test_clocks_clean_fixture_passes():
    _, rules = rules_hit(fixture("clocks_clean.py"))
    assert rules == set()


def test_clocks_seam_and_benchmarks_are_exempt():
    _, rules = rules_hit([fixture("clock_tree")])
    assert rules == set()


def test_clocks_restricts_perf_counter_to_the_profile_seam():
    violations, rules = rules_hit([fixture("clock_perf_tree")])
    # Shipped code times itself through repro.profile; the seam module
    # itself is the one sanctioned perf_counter site.
    assert rules == {"clock-discipline"}
    assert all(v.path.endswith("engine.py") for v in violations)
    assert len(violations) == 2
    assert "repro.profile.perf_now" in violations[0].message


# ---------------------------------------------------------------------------
# lock-discipline
# ---------------------------------------------------------------------------
def test_locks_flags_unguarded_access_and_blocking_calls():
    violations, rules = rules_hit(fixture("locks_flagged.py"))
    assert rules == {"lock-discipline"}
    guarded = [v for v in violations if "guarded-by" in v.message]
    blocking = [v for v in violations if "blocking call" in v.message]
    assert len(guarded) == 2          # bump() and read()
    assert len(blocking) == 2         # time.sleep and sock.sendall
    assert any("time.sleep" in v.message for v in blocking)


def test_locks_clean_fixture_passes():
    _, rules = rules_hit(fixture("locks_clean.py"))
    assert rules == set()


def test_locks_flags_guard_naming_a_nonexistent_lock():
    violations, rules = rules_hit(fixture("locks_typo.py"))
    assert rules == {"lock-discipline"}
    assert len(violations) == 1
    assert "never assigns" in violations[0].message


# ---------------------------------------------------------------------------
# api-surface
# ---------------------------------------------------------------------------
def test_api_surface_clean_tree_passes():
    _, rules = rules_hit([fixture("api_clean")])
    assert rules == set()


def test_api_surface_flags_every_kind_of_drift():
    violations, rules = rules_hit([fixture("api_flagged")])
    assert rules == {"api-surface"}
    messages = " ".join(v.message for v in violations)
    assert "must be (method, path, request, response, label)" in messages
    assert "'ghost'" in messages and "no matching" in messages
    assert "outside the declared API version" in messages
    assert "CODE_ORPHANED" in messages
    assert "missing from the README" in messages


# ---------------------------------------------------------------------------
# bench-hygiene
# ---------------------------------------------------------------------------
def test_bench_hygiene_clean_tree_passes():
    _, rules = rules_hit([fixture("bench_clean")])
    assert rules == set()


def test_bench_hygiene_flags_silent_and_mislabelled_benches():
    violations, rules = rules_hit([fixture("bench_flagged")])
    assert rules == {"bench-hygiene"}
    by_path = {os.path.basename(v.path): v.message for v in violations}
    assert "emits no machine-readable results" in by_path["bench_x2_demo.py"]
    assert "disagrees with the filename" in by_path["bench_x3_demo.py"]
    assert "records no related metric key" in by_path["bench_x4_demo.py"]
    assert "'fast_speedup'" in by_path["bench_x4_demo.py"]
    assert "emits no profile_* metric key" in by_path["bench_x6_profiled.py"]
    gate_messages = [v.message for v in violations
                     if v.path.endswith("check_regression.py")]
    assert any("no baseline" in m for m in gate_messages)          # x9
    assert any("no such key" in m for m in gate_messages)          # x8


def test_bench_hygiene_profiling_bench_with_attach_profile_passes():
    violations, _ = rules_hit([fixture("bench_clean")])
    assert not any(v.path.endswith("bench_x5_profiled.py")
                   for v in violations)


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------
def test_suppression_with_reason_silences_the_line():
    _, rules = rules_hit(fixture("suppress_with_reason.py"))
    assert rules == set()


def test_file_level_suppression_silences_the_whole_file():
    _, rules = rules_hit(fixture("suppress_file_level.py"))
    assert rules == set()


def test_suppression_without_reason_is_a_violation():
    violations, rules = rules_hit(fixture("suppress_without_reason.py"))
    # The reasonless suppression is rejected AND the underlying clock
    # violation stays live.
    assert rules == {RULE_BAD_SUPPRESSION, "clock-discipline"}
    bad = [v for v in violations if v.rule == RULE_BAD_SUPPRESSION]
    assert "without a reason" in bad[0].message


def test_suppression_of_unknown_rule_is_a_violation():
    violations, rules = rules_hit(fixture("suppress_unknown_rule.py"))
    assert rules == {RULE_BAD_SUPPRESSION}
    assert "unknown rule" in violations[0].message


def test_syntax_errors_are_reported_not_crashed_on():
    violations, rules = rules_hit(fixture("parse_error.py"))
    assert rules == {RULE_PARSE_ERROR}
    assert "syntax error" in violations[0].message


# ---------------------------------------------------------------------------
# engine plumbing
# ---------------------------------------------------------------------------
def test_fixture_directories_are_skipped_in_directory_walks():
    found = iter_python_files([os.path.join(REPO_ROOT, "tests")])
    assert not any("fixtures" in path.replace(os.sep, "/").split("/")
                   for path in found)
    assert any(path.endswith("test_checks.py") for path in found)


def test_report_counts_every_rule_including_zeroes():
    violations, n_files = run_paths([fixture("clocks_flagged.py")])
    report = render_report(violations, n_files)
    assert report["violation_total"] == 4
    assert report["counts_by_rule"]["clock-discipline"] == 4
    # Zero-filled entries for every registered rule + the meta rules.
    for name in registered_checkers():
        assert name in report["counts_by_rule"]
    assert report["counts_by_rule"]["determinism"] == 0
    assert report["counts_by_rule"][RULE_BAD_SUPPRESSION] == 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------
def test_cli_exits_nonzero_on_violations(capsys):
    assert main([fixture("clocks_flagged.py")]) == 1
    out = capsys.readouterr().out
    assert "[clock-discipline]" in out
    assert "violation(s)" in out


def test_cli_exits_zero_on_clean_input(capsys):
    assert main([fixture("clocks_clean.py")]) == 0
    assert "checks: OK" in capsys.readouterr().out


def test_cli_json_format(capsys):
    assert main(["--format", "json", fixture("clocks_flagged.py")]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "repro.checks"
    assert payload["violation_total"] == 4


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for name in ("determinism", "clock-discipline", "lock-discipline",
                 "api-surface", "bench-hygiene"):
        assert name in out


def test_cli_report_writes_the_artifact(tmp_path, capsys):
    target = tmp_path / "CHECKS_report.json"
    assert main(["report", "--json", str(target),
                 fixture("clocks_clean.py")]) == 0
    payload = json.loads(target.read_text())
    assert payload["violation_total"] == 0
    assert "report written" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# The gate itself
# ---------------------------------------------------------------------------
def test_whole_tree_is_clean():
    """The blocking CI invariant: src, tests and benchmarks lint clean."""
    paths = [os.path.join(REPO_ROOT, name)
             for name in ("src", "tests", "benchmarks")]
    violations, n_files = run_paths(paths)
    assert n_files > 100
    pretty = "\n".join("%s:%d [%s] %s" % (v.path, v.line, v.rule, v.message)
                       for v in violations)
    assert not violations, "\n" + pretty
