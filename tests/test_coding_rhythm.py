"""Tests for background-rhythm salvo segmentation (Section 5.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.rank_order import RankOrderCode
from repro.coding.rhythm import (
    BackgroundRhythm,
    RhythmicRankOrderChannel,
    SalvoSegmenter,
)


class TestBackgroundRhythm:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            BackgroundRhythm(period_ms=0.0)
        with pytest.raises(ValueError):
            BackgroundRhythm(rising_fraction=0.0)
        with pytest.raises(ValueError):
            BackgroundRhythm(rising_fraction=1.0)

    def test_cycle_indexing(self):
        rhythm = BackgroundRhythm(period_ms=25.0)
        assert rhythm.cycle_of(0.0) == 0
        assert rhythm.cycle_of(24.9) == 0
        assert rhythm.cycle_of(25.0) == 1
        assert rhythm.cycle_of(76.0) == 3

    def test_phase_offset_shifts_cycles(self):
        rhythm = BackgroundRhythm(period_ms=20.0, phase_offset_ms=5.0)
        assert rhythm.cycle_of(4.9) == -1
        assert rhythm.cycle_of(5.0) == 0
        assert rhythm.cycle_start(2) == pytest.approx(45.0)

    def test_rising_and_falling_phases(self):
        rhythm = BackgroundRhythm(period_ms=10.0, rising_fraction=0.6)
        assert rhythm.is_rising(0.0)
        assert rhythm.is_rising(5.9)
        assert not rhythm.is_rising(6.0)
        assert not rhythm.is_rising(9.9)
        assert rhythm.is_rising(10.0)

    def test_rising_window_bounds(self):
        rhythm = BackgroundRhythm(period_ms=10.0, rising_fraction=0.5)
        start, end = rhythm.rising_window(3)
        assert start == pytest.approx(30.0)
        assert end == pytest.approx(35.0)

    def test_amplitude_is_bounded(self):
        rhythm = BackgroundRhythm(period_ms=25.0)
        values = [rhythm.amplitude(t) for t in np.linspace(0.0, 100.0, 200)]
        assert max(values) <= 1.0 + 1e-9
        assert min(values) >= -1.0 - 1e-9

    @settings(max_examples=50, deadline=None)
    @given(time_ms=st.floats(min_value=0.0, max_value=1e4),
           period=st.floats(min_value=1.0, max_value=100.0))
    def test_phase_always_in_unit_interval(self, time_ms, period):
        rhythm = BackgroundRhythm(period_ms=period)
        assert 0.0 <= rhythm.phase_of(time_ms) < 1.0


class TestSalvoSegmenter:
    def test_spikes_grouped_by_cycle(self):
        rhythm = BackgroundRhythm(period_ms=10.0, rising_fraction=0.5)
        spikes = [(1.0, 0), (2.0, 1), (11.0, 2), (13.0, 3)]
        salvos = SalvoSegmenter(rhythm).segment(spikes)
        assert [s.cycle for s in salvos] == [0, 1]
        assert salvos[0].order == [0, 1]
        assert salvos[1].order == [2, 3]
        assert salvos[1].n_spikes == 2

    def test_falling_phase_spikes_discarded(self):
        rhythm = BackgroundRhythm(period_ms=10.0, rising_fraction=0.5)
        spikes = [(1.0, 0), (7.0, 1), (8.0, 2)]
        segmenter = SalvoSegmenter(rhythm)
        salvos = segmenter.segment(spikes)
        assert len(salvos) == 1
        assert salvos[0].order == [0]
        assert segmenter.rejected_fraction(spikes) == pytest.approx(2.0 / 3.0)

    def test_repeated_neuron_counts_once_in_order(self):
        rhythm = BackgroundRhythm(period_ms=10.0, rising_fraction=0.9)
        spikes = [(1.0, 4), (2.0, 4), (3.0, 1)]
        salvo = SalvoSegmenter(rhythm).segment(spikes)[0]
        assert salvo.order == [4, 1]
        assert salvo.n_spikes == 3

    def test_empty_stream(self):
        segmenter = SalvoSegmenter(BackgroundRhythm())
        assert segmenter.segment([]) == []
        assert segmenter.rejected_fraction([]) == 0.0

    def test_empty_cycles_omitted(self):
        rhythm = BackgroundRhythm(period_ms=10.0)
        spikes = [(1.0, 0), (41.0, 1)]
        salvos = SalvoSegmenter(rhythm).segment(spikes)
        assert [s.cycle for s in salvos] == [0, 4]


class TestRhythmicRankOrderChannel:
    def _channel(self, jitter_ms=0.0, seed=0, n_symbols=4, population=12):
        rng = np.random.default_rng(7)
        codebook = rng.uniform(0.1, 1.0, size=(n_symbols, population))
        return RhythmicRankOrderChannel(
            code=RankOrderCode(n_active=8),
            rhythm=BackgroundRhythm(period_ms=25.0, rising_fraction=0.6),
            codebook=codebook, jitter_ms=jitter_ms, seed=seed)

    def test_codebook_validation(self):
        code = RankOrderCode()
        rhythm = BackgroundRhythm()
        with pytest.raises(ValueError):
            RhythmicRankOrderChannel(code, rhythm, codebook=[])
        with pytest.raises(ValueError):
            RhythmicRankOrderChannel(code, rhythm,
                                     codebook=[[1.0, 2.0], [1.0]])

    def test_unknown_symbol_rejected(self):
        channel = self._channel()
        with pytest.raises(ValueError):
            channel.spikes_for_symbol(99, cycle=0)

    def test_spikes_stay_inside_rising_window(self):
        channel = self._channel(jitter_ms=1.0, seed=3)
        for cycle in range(4):
            window_start, window_end = channel.rhythm.rising_window(cycle)
            for time_ms, neuron in channel.spikes_for_symbol(1, cycle):
                assert window_start <= time_ms < window_end
                assert 0 <= neuron < channel.population_size

    def test_noiseless_transmission_is_perfect(self):
        channel = self._channel()
        report = channel.run([0, 1, 2, 3, 2, 1, 0])
        assert report.symbols_received == report.symbols_sent
        assert report.accuracy == 1.0
        assert len(report.salvos) == 7

    def test_one_salvo_per_symbol_per_cycle(self):
        channel = self._channel()
        stream = channel.transmit([3, 0, 2], start_cycle=5)
        salvos = SalvoSegmenter(channel.rhythm).segment(stream)
        assert [s.cycle for s in salvos] == [5, 6, 7]

    def test_moderate_jitter_mostly_decodable(self):
        channel = self._channel(jitter_ms=2.0, seed=11)
        symbols = [0, 1, 2, 3] * 5
        report = channel.run(symbols)
        assert report.accuracy >= 0.7

    def test_empty_symbol_sequence(self):
        report = self._channel().run([])
        assert report.accuracy == 0.0
        assert report.symbols_received == []
