"""End-to-end multi-tenancy: concurrent jobs on one shared machine.

The acceptance scenario for the allocation subsystem: two concurrent jobs
boot disjoint leases of one 8x8 machine and run spiking applications to
completion with non-interfering routing; a third, over-quota job queues
and is scheduled after a release; fault-injected chips are never
allocated.
"""

from __future__ import annotations

import pytest

from repro.alloc.job import JobState
from repro.alloc.server import AllocationServer
from repro.alloc.queue import TenantQuota
from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.host.host_system import HostSystem
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.boot import BootController
from repro.runtime.application import NeuralApplication, run_concurrently

FAULTY = ChipCoordinate(5, 1)


@pytest.fixture
def facility():
    """An 8x8 machine with one dead chip, host and allocation server."""
    machine = SpiNNakerMachine(MachineConfig(width=8, height=8,
                                             cores_per_chip=6))
    for core in machine.chips[FAULTY].cores:
        core.run_self_test(False)
    host = HostSystem(machine)
    server = AllocationServer(host, power_on_delay_us=50.0)
    return machine, host, server


def small_network(seed: int) -> Network:
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(24, rate_hz=80.0, label="stimulus")
    excitatory = Population(48, "lif", label="excitatory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.2, weight=0.9,
                                              delay_range=(1, 4)))
    return network


def test_two_concurrent_jobs_and_a_queued_third(facility):
    machine, host, server = facility
    server.scheduler.queue.set_quota(TenantQuota(
        tenant="shared-lab", max_leased_chips=32, submission_burst=8))

    job_a = server.create_job("shared-lab", 4, 4, keepalive_ms=1e9)
    job_b = server.create_job("shared-lab", 4, 4, keepalive_ms=1e9)
    job_c = server.create_job("shared-lab", 4, 4, keepalive_ms=1e9)
    machine.run()

    # A and B hold disjoint leases; C is over the 32-chip tenant quota.
    assert job_a.state is JobState.READY
    assert job_b.state is JobState.READY
    assert job_c.state is JobState.QUEUED
    chips_a = set(job_a.machine_view.chips)
    chips_b = set(job_b.machine_view.chips)
    assert not chips_a & chips_b

    # The dead chip was never allocated to anybody.
    assert FAULTY not in chips_a and FAULTY not in chips_b
    assert FAULTY in server.scheduler.partitioner.faulty

    # Each job boots its own sub-machine independently.
    for job, seed in ((job_a, 11), (job_b, 22)):
        boot = BootController(job.machine_view, seed=seed).boot()
        assert boot.monitors_elected == 16
        assert boot.p2p_tables_configured == 16

    # Both applications run side by side on the shared kernel.
    applications = [
        NeuralApplication(job.machine_view, small_network(seed),
                          max_neurons_per_core=8, seed=seed)
        for job, seed in ((job_a, 11), (job_b, 22))]
    result_a, result_b = run_concurrently(applications, 100.0)

    for result in (result_a, result_b):
        assert result.total_spikes("excitatory") > 0
        assert result.packets_sent > 0
        assert result.packets_dropped == 0
        assert result.within_deadline_fraction() == 1.0

    # Non-interference: no packet of either job crossed its lease
    # boundary (and no emergency detour ever left a lease).
    for job in (job_a, job_b):
        boundary_traffic = sum(link.packets_carried
                               for link in job.machine_view.boundary_links())
        assert boundary_traffic == 0
        assert job.machine_view.total_emergency_invocations() == 0

    # Releasing A makes room for C within the quota; C then runs too.
    assert host.release_job(job_a.job_id)["released"]
    machine.run()
    assert job_c.state is JobState.READY
    chips_c = set(job_c.machine_view.chips)
    assert FAULTY not in chips_c
    assert not chips_c & set(job_b.machine_view.chips)

    boot_c = BootController(job_c.machine_view, seed=33).boot()
    assert boot_c.monitors_elected == 16
    application_c = NeuralApplication(job_c.machine_view, small_network(33),
                                      max_neurons_per_core=8, seed=33)
    result_c = application_c.run(50.0)
    assert result_c.total_spikes("excitatory") > 0
    assert result_c.packets_dropped == 0

    # Everything can be handed back; the pool ends whole minus the dead
    # chip, with zero fragmentation after coalescing.
    host.release_job(job_b.job_id)
    host.release_job(job_c.job_id)
    partitioner = server.scheduler.partitioner
    assert partitioner.leased_area == 0
    assert partitioner.free_area == 63
    assert partitioner.fragmentation() < 0.5


def test_leases_spanning_a_full_axis_wrap_like_a_torus(facility):
    machine, _host, server = facility
    job = server.create_job("ring-lab", 8, 2, keepalive_ms=1e9)
    machine.run()
    assert job.state is JobState.READY
    view = job.machine_view
    geometry = view.geometry
    assert geometry.wraps_x and not geometry.wraps_y
    # Wrapping makes the far corner 1 hop away along x, not 7.
    left = ChipCoordinate(0, geometry.rect.y)
    right = ChipCoordinate(7, geometry.rect.y)
    assert geometry.distance(left, right) == 1
    route = geometry.route_chips(left, right)
    assert all(chip in view.chips for chip in route)


def test_interior_lease_routes_never_leave_the_rectangle(facility):
    machine, _host, server = facility
    job = server.create_job("corner-lab", 4, 4, keepalive_ms=1e9)
    machine.run()
    view = job.machine_view
    geometry = view.geometry
    chips = list(geometry.all_chips())
    for source in chips:
        for target in chips:
            for chip in geometry.route_chips(source, target):
                assert view.lease.rect.contains(chip)
