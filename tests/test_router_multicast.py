"""Unit tests for the multicast router: table routing, default routing,
emergency routing and the wait/divert/drop policy (Sections 4 and 5.3)."""

from __future__ import annotations

import pytest

from repro.core.event_kernel import EventKernel
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.packets import EmergencyState, MulticastPacket
from repro.router.multicast import Router, RouterConfig
from repro.router.routing_table import MulticastRoutingTable


class RouterHarness:
    """A router wired to scriptable link and core stubs."""

    def __init__(self, config: RouterConfig = None):
        self.kernel = EventKernel()
        self.table = MulticastRoutingTable()
        self.router = Router(self.kernel, ChipCoordinate(1, 1),
                             table=self.table, config=config or RouterConfig())
        self.blocked = set()
        self.transmitted = []
        self.delivered = []
        self.monitor = []
        self.router.connect(self._transmit, self._deliver, self._notify)

    def _transmit(self, direction, packet):
        if direction in self.blocked:
            return False
        self.transmitted.append((direction, packet))
        return True

    def _deliver(self, core_id, packet):
        self.delivered.append((core_id, packet))

    def _notify(self, event, **info):
        self.monitor.append((event, info))


class TestTableRouting:
    def test_hit_copies_to_links_and_cores(self):
        harness = RouterHarness()
        harness.table.add(key=10, mask=0xFFFFFFFF,
                          links=[Direction.EAST, Direction.NORTH], cores=[2, 5])
        decision = harness.router.route_multicast(MulticastPacket(key=10))
        assert set(decision.links) == {Direction.EAST, Direction.NORTH}
        assert set(decision.cores) == {2, 5}
        assert len(harness.transmitted) == 2
        assert len(harness.delivered) == 2
        assert harness.router.stats.table_hits == 1

    def test_multicast_duplicates_packet_not_key(self):
        harness = RouterHarness()
        harness.table.add(key=3, mask=0xFFFFFFFF,
                          links=[Direction.EAST, Direction.WEST, Direction.SOUTH])
        harness.router.route_multicast(MulticastPacket(key=3))
        keys = {packet.key for _, packet in harness.transmitted}
        assert keys == {3}
        assert len(harness.transmitted) == 3

    def test_unconnected_router_raises(self):
        router = Router(EventKernel(), ChipCoordinate(0, 0))
        with pytest.raises(RuntimeError):
            router.route_multicast(MulticastPacket(key=1))


class TestDefaultRouting:
    def test_miss_from_link_goes_straight_through(self):
        harness = RouterHarness()
        decision = harness.router.decide(MulticastPacket(key=999),
                                         arrival=Direction.WEST)
        assert decision.default_routed
        assert decision.links == [Direction.EAST]

    def test_miss_from_local_core_is_dropped(self):
        harness = RouterHarness()
        harness.router.route_multicast(MulticastPacket(key=999), arrival=None)
        assert harness.router.stats.dropped == 1
        assert harness.monitor[0][0] == "packet-dropped"

    def test_all_arrival_directions_map_to_opposite(self):
        harness = RouterHarness()
        for arrival in Direction:
            decision = harness.router.decide(MulticastPacket(key=1234),
                                             arrival=arrival)
            assert decision.links == [arrival.opposite]


class TestEmergencyRouting:
    def test_first_leg_packet_takes_fixed_second_leg(self):
        harness = RouterHarness()
        packet = MulticastPacket(key=5, emergency=EmergencyState.FIRST_LEG)
        decision = harness.router.decide(packet, arrival=Direction.SOUTH_WEST)
        assert decision.links == [Direction.emergency_second_leg(Direction.SOUTH_WEST)]

    def test_first_leg_cannot_be_injected_locally(self):
        harness = RouterHarness()
        packet = MulticastPacket(key=5, emergency=EmergencyState.FIRST_LEG)
        with pytest.raises(ValueError):
            harness.router.decide(packet, arrival=None)

    def test_second_leg_default_route_restores_heading(self):
        harness = RouterHarness()
        packet = MulticastPacket(key=77, emergency=EmergencyState.SECOND_LEG)
        # Blocked link EAST: first leg NE, second leg S.  The packet
        # arrives at the final chip on the opposite of S (= NORTH); default
        # routing must continue EAST, the original heading.
        decision = harness.router.decide(packet, arrival=Direction.NORTH)
        assert decision.links == [Direction((Direction.NORTH.value + 4) % 6)]

    def test_blocked_link_triggers_emergency_after_wait(self):
        config = RouterConfig(emergency_wait_us=1.0, drop_wait_us=2.0,
                              retries_per_wait=1)
        harness = RouterHarness(config)
        harness.table.add(key=8, mask=0xFFFFFFFF, links=[Direction.EAST])
        harness.blocked.add(Direction.EAST)
        harness.router.route_multicast(MulticastPacket(key=8))
        harness.kernel.run()
        stats = harness.router.stats
        assert stats.emergency_invocations == 1
        assert stats.emergency_successes == 1
        assert stats.dropped == 0
        # The packet left on the first emergency leg with FIRST_LEG state.
        directions = [d for d, _ in harness.transmitted]
        first_leg, _ = Direction.EAST.emergency_pair()
        assert directions == [first_leg]
        assert harness.transmitted[0][1].emergency is EmergencyState.FIRST_LEG
        # The monitor is informed of the invocation (Section 5.3).
        assert harness.monitor[0][0] == "emergency-routing"

    def test_transient_congestion_clears_before_emergency(self):
        config = RouterConfig(emergency_wait_us=2.0, retries_per_wait=2)
        harness = RouterHarness(config)
        harness.table.add(key=8, mask=0xFFFFFFFF, links=[Direction.EAST])
        harness.blocked.add(Direction.EAST)
        harness.router.route_multicast(MulticastPacket(key=8))
        # Unblock the link before the retry fires.
        harness.blocked.clear()
        harness.kernel.run()
        assert harness.router.stats.emergency_invocations == 0
        assert harness.router.stats.dropped == 0
        assert len(harness.transmitted) == 1

    def test_packet_dropped_when_emergency_leg_also_blocked(self):
        config = RouterConfig(emergency_wait_us=1.0, drop_wait_us=1.0,
                              retries_per_wait=1)
        harness = RouterHarness(config)
        harness.table.add(key=8, mask=0xFFFFFFFF, links=[Direction.EAST])
        first_leg, _ = Direction.EAST.emergency_pair()
        harness.blocked.update({Direction.EAST, first_leg})
        harness.router.route_multicast(MulticastPacket(key=8))
        harness.kernel.run()
        stats = harness.router.stats
        assert stats.dropped == 1
        events = [event for event, _ in harness.monitor]
        assert "packet-dropped" in events
        # The router never wedges: it is still able to route new packets.
        harness.blocked.clear()
        harness.router.route_multicast(MulticastPacket(key=8))
        assert harness.router.stats.forwarded >= 1

    def test_emergency_disabled_drops_directly(self):
        config = RouterConfig(emergency_routing_enabled=False,
                              emergency_wait_us=1.0, retries_per_wait=1)
        harness = RouterHarness(config)
        harness.table.add(key=8, mask=0xFFFFFFFF, links=[Direction.EAST])
        harness.blocked.add(Direction.EAST)
        harness.router.route_multicast(MulticastPacket(key=8))
        harness.kernel.run()
        assert harness.router.stats.emergency_invocations == 0
        assert harness.router.stats.dropped == 1

    def test_delivery_ratio(self):
        harness = RouterHarness(RouterConfig(emergency_routing_enabled=False,
                                             retries_per_wait=1))
        harness.table.add(key=1, mask=0xFFFFFFFF, links=[Direction.EAST])
        harness.router.route_multicast(MulticastPacket(key=1))
        assert harness.router.delivery_ratio() == 1.0
        harness.blocked.add(Direction.EAST)
        harness.router.route_multicast(MulticastPacket(key=1))
        harness.kernel.run()
        assert harness.router.delivery_ratio() == pytest.approx(0.5)
