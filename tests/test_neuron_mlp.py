"""Tests for the hardware-targeted MLP substrate (reference [3])."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neuron.mlp import (
    MLP,
    FixedPointFormat,
    SparseLayer,
    synthetic_classification_task,
)


class TestFixedPointFormat:
    def test_invalid_formats_rejected(self):
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=-1)
        with pytest.raises(ValueError):
            FixedPointFormat(integer_bits=0, fractional_bits=0)

    def test_s87_properties(self):
        fmt = FixedPointFormat(integer_bits=8, fractional_bits=7)
        assert fmt.total_bits == 16
        assert fmt.resolution == pytest.approx(1.0 / 128.0)
        assert fmt.max_value == pytest.approx(256.0 - 1.0 / 128.0)
        assert fmt.min_value == pytest.approx(-256.0)

    def test_quantisation_rounds_and_clips(self):
        fmt = FixedPointFormat(integer_bits=2, fractional_bits=2)
        values = np.array([0.1, 0.13, 10.0, -10.0])
        quantised = fmt.quantise(values)
        assert quantised[0] == pytest.approx(0.0)
        assert quantised[1] == pytest.approx(0.25)
        assert quantised[2] == pytest.approx(fmt.max_value)
        assert quantised[3] == pytest.approx(fmt.min_value)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=-4.0, max_value=4.0), min_size=1,
                    max_size=20))
    def test_quantisation_error_bounded_by_half_lsb(self, values):
        fmt = FixedPointFormat(integer_bits=4, fractional_bits=8)
        quantised = fmt.quantise(np.array(values))
        errors = np.abs(quantised - np.array(values))
        assert np.all(errors <= fmt.resolution / 2.0 + 1e-12)


class TestSparseLayer:
    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            SparseLayer(0, 4)
        with pytest.raises(ValueError):
            SparseLayer(4, 4, fan_in=0)
        with pytest.raises(ValueError):
            SparseLayer(4, 4, fan_in=5)
        with pytest.raises(ValueError):
            SparseLayer(4, 4, activation="sigmoid")

    def test_fan_in_cap_respected(self):
        rng = np.random.default_rng(0)
        layer = SparseLayer(32, 16, fan_in=5, rng=rng)
        per_unit = layer.mask.sum(axis=0)
        assert np.all(per_unit == 5)
        assert layer.effective_fan_in() == pytest.approx(5.0)
        assert layer.n_connections == 5 * 16

    def test_pruned_weights_are_zero_and_stay_zero(self):
        rng = np.random.default_rng(1)
        layer = SparseLayer(16, 8, fan_in=3, rng=rng)
        assert np.all(layer.weights[~layer.mask] == 0.0)
        inputs = rng.normal(size=(10, 16))
        outputs = layer.forward(inputs)
        layer.backward(np.ones_like(outputs), learning_rate=0.5)
        assert np.all(layer.weights[~layer.mask] == 0.0)

    def test_backward_before_forward_raises(self):
        layer = SparseLayer(4, 2)
        with pytest.raises(RuntimeError):
            layer.backward(np.zeros((1, 2)), learning_rate=0.1)

    def test_activations(self):
        rng = np.random.default_rng(2)
        relu = SparseLayer(4, 3, activation="relu", rng=rng)
        assert np.all(relu.forward(np.ones((2, 4))) >= 0.0)
        tanh = SparseLayer(4, 3, activation="tanh", rng=rng)
        assert np.all(np.abs(tanh.forward(np.ones((2, 4)))) <= 1.0)


class TestMLPTraining:
    def test_needs_two_layers(self):
        with pytest.raises(ValueError):
            MLP([10])

    def test_invalid_training_arguments(self):
        mlp = MLP([4, 8, 2], seed=0)
        inputs, labels = synthetic_classification_task(
            n_classes=2, n_features=4, n_samples_per_class=5, seed=0)
        with pytest.raises(ValueError):
            mlp.train(inputs, labels, epochs=0)
        with pytest.raises(ValueError):
            mlp.train(inputs, labels, learning_rate=0.0)
        with pytest.raises(ValueError):
            mlp.train(inputs, labels[:-1])

    def test_forward_outputs_are_probabilities(self):
        mlp = MLP([8, 16, 3], seed=1)
        inputs = np.random.default_rng(0).normal(size=(12, 8))
        probabilities = mlp.forward(inputs)
        assert probabilities.shape == (12, 3)
        assert np.allclose(probabilities.sum(axis=1), 1.0)
        assert np.all(probabilities >= 0.0)

    def test_training_learns_the_synthetic_task(self):
        inputs, labels = synthetic_classification_task(
            n_classes=4, n_features=16, n_samples_per_class=40, noise=0.2,
            seed=5)
        mlp = MLP([16, 32, 4], seed=5)
        untrained = mlp.accuracy(inputs, labels)
        result = mlp.train(inputs, labels, epochs=40, learning_rate=0.3,
                           seed=5)
        assert result.final_accuracy > 0.9
        assert result.final_accuracy > untrained
        assert result.losses[-1] < result.losses[0]

    def test_fan_in_limited_network_still_learns(self):
        inputs, labels = synthetic_classification_task(
            n_classes=3, n_features=12, n_samples_per_class=40, noise=0.2,
            seed=9)
        mlp = MLP([12, 24, 3], fan_in=4, seed=9)
        for layer in mlp.layers[:-1]:
            assert layer.effective_fan_in() == pytest.approx(4.0)
        result = mlp.train(inputs, labels, epochs=60, learning_rate=0.3,
                           seed=9)
        assert result.final_accuracy > 0.8

    def test_smaller_fan_in_means_fewer_connections(self):
        dense = MLP([16, 32, 4], seed=2)
        sparse = MLP([16, 32, 4], fan_in=4, seed=2)
        assert sparse.total_connections() < dense.total_connections()

    def test_accuracy_of_empty_set_is_zero(self):
        mlp = MLP([4, 2], seed=0)
        assert mlp.accuracy(np.zeros((0, 4)), np.zeros(0, dtype=int)) == 0.0


class TestQuantisation:
    def _trained(self, seed=11):
        inputs, labels = synthetic_classification_task(
            n_classes=4, n_features=16, n_samples_per_class=40, noise=0.2,
            seed=seed)
        mlp = MLP([16, 24, 4], seed=seed)
        mlp.train(inputs, labels, epochs=40, learning_rate=0.3, seed=seed)
        return mlp, inputs, labels

    def test_sixteen_bit_weights_preserve_accuracy(self):
        mlp, inputs, labels = self._trained()
        quantised = mlp.quantised(FixedPointFormat(integer_bits=8,
                                                   fractional_bits=7))
        assert quantised.accuracy(inputs, labels) >= \
            mlp.accuracy(inputs, labels) - 0.05

    def test_very_coarse_weights_destroy_accuracy(self):
        mlp, inputs, labels = self._trained()
        coarse = mlp.quantised(FixedPointFormat(integer_bits=1,
                                                fractional_bits=0))
        assert coarse.accuracy(inputs, labels) < mlp.accuracy(inputs, labels)

    def test_quantised_copy_is_independent(self):
        mlp, inputs, _labels = self._trained()
        quantised = mlp.quantised(FixedPointFormat())
        original_weights = mlp.layers[0].weights.copy()
        quantised.layers[0].weights[:] = 0.0
        assert np.array_equal(mlp.layers[0].weights, original_weights)

    def test_quantised_masks_match_original(self):
        inputs, labels = synthetic_classification_task(seed=3)
        mlp = MLP([16, 24, 4], fan_in=6, seed=3)
        mlp.train(inputs, labels, epochs=5, learning_rate=0.2, seed=3)
        quantised = mlp.quantised(FixedPointFormat())
        for original, copy in zip(mlp.layers, quantised.layers):
            assert np.array_equal(original.mask, copy.mask)
            assert np.all(copy.weights[~copy.mask] == 0.0)


class TestSyntheticTask:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            synthetic_classification_task(n_classes=1)
        with pytest.raises(ValueError):
            synthetic_classification_task(n_features=0)
        with pytest.raises(ValueError):
            synthetic_classification_task(noise=-0.1)

    def test_shapes_and_labels(self):
        inputs, labels = synthetic_classification_task(
            n_classes=3, n_features=8, n_samples_per_class=10, seed=0)
        assert inputs.shape == (30, 8)
        assert labels.shape == (30,)
        assert set(labels) == {0, 1, 2}
        assert np.bincount(labels).tolist() == [10, 10, 10]

    def test_reproducible_with_seed(self):
        first = synthetic_classification_task(seed=42)
        second = synthetic_classification_task(seed=42)
        assert np.array_equal(first[0], second[0])
        assert np.array_equal(first[1], second[1])
