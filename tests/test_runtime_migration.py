"""Tests for run-time functional migration (abstract; Sections 2.2, 3.2)."""

from __future__ import annotations

import pytest

from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import OneToOneConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController
from repro.runtime.migration import FunctionalMigrator, MigrationError


def booted_machine(width=3, height=3, cores=6):
    machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                             cores_per_chip=cores))
    BootController(machine, seed=5).boot()
    return machine


def small_feedforward(seed=17, n=30):
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(n, rate_hz=80.0, label="mig-stim")
    target = Population(n, "lif", label="mig-target")
    target.record(spikes=True)
    network.connect(stimulus, target, OneToOneConnector(weight=5.0,
                                                        delay_ticks=1))
    return network


def prepared_application(machine=None, seed=17):
    machine = machine or booted_machine()
    application = NeuralApplication(machine, small_feedforward(seed=seed),
                                    max_neurons_per_core=10, seed=seed)
    application.prepare()
    return application


class TestMigratorConstruction:
    def test_for_application_requires_prepared_application(self):
        machine = booted_machine()
        application = NeuralApplication(machine, small_feedforward(),
                                        max_neurons_per_core=10, seed=1)
        with pytest.raises(MigrationError):
            FunctionalMigrator.for_application(application)

    def test_spare_slots_exclude_monitor_and_occupied_cores(self):
        application = prepared_application()
        migrator = FunctionalMigrator.for_application(application)
        occupied = set(migrator.occupied_slots())
        spares = migrator.spare_slots()
        assert occupied.isdisjoint(spares)
        for coordinate, core_id in spares:
            chip = application.machine.chips[coordinate]
            assert core_id != chip.monitor_core_id


class TestEvacuation:
    def test_evacuate_core_moves_vertex_and_disables_core(self):
        application = prepared_application()
        migrator = FunctionalMigrator.for_application(application)
        (old_chip, old_core), vertex = next(iter(migrator.occupied_slots().items()))
        report = migrator.evacuate_core(old_chip, old_core)

        assert report.n_moves == 1
        moved_vertex, old_slot, new_slot = report.moves[0]
        assert moved_vertex == vertex
        assert old_slot == (old_chip, old_core)
        assert new_slot != old_slot
        assert application.placement.locations[vertex] == new_slot
        assert (old_chip, old_core) in report.cores_mapped_out
        assert not application.machine.chips[old_chip].cores[old_core].is_available

    def test_evacuating_empty_core_is_a_no_op_move(self):
        application = prepared_application()
        migrator = FunctionalMigrator.for_application(application)
        spare_chip, spare_core = migrator.spare_slots()[0]
        report = migrator.evacuate_core(spare_chip, spare_core)
        assert report.n_moves == 0
        assert (spare_chip, spare_core) in report.cores_mapped_out

    def test_routing_tables_regenerated_after_move(self):
        application = prepared_application()
        migrator = FunctionalMigrator.for_application(application)
        (old_chip, old_core), _vertex = next(iter(migrator.occupied_slots().items()))
        report = migrator.evacuate_core(old_chip, old_core)
        assert report.routing_entries_before > 0
        assert report.routing_entries_after > 0
        assert report.runtimes_rebuilt == 1

    def test_keys_are_preserved_across_migration(self):
        """Virtualised topology: a neuron's routing key never changes."""
        application = prepared_application()
        keys_before = {vertex: application.keys.key_space(vertex).key_for(0)
                       for vertex in application.placement.locations}
        migrator = FunctionalMigrator.for_application(application)
        (old_chip, old_core), _ = next(iter(migrator.occupied_slots().items()))
        migrator.evacuate_core(old_chip, old_core)
        keys_after = {vertex: application.keys.key_space(vertex).key_for(0)
                      for vertex in application.placement.locations}
        assert keys_before == keys_after

    def test_evacuate_chip_clears_every_vertex_on_it(self):
        application = prepared_application(booted_machine(3, 3, 8))
        migrator = FunctionalMigrator.for_application(application)
        target_chip = next(iter(migrator.occupied_slots()))[0]
        migrator.evacuate_chip(target_chip)
        remaining = [slot for slot in migrator.occupied_slots()
                     if slot[0] == target_chip]
        assert remaining == []

    def test_duplicate_suspects_handled_once(self):
        application = prepared_application()
        migrator = FunctionalMigrator.for_application(application)
        slot = next(iter(migrator.occupied_slots()))
        report = migrator.evacuate_cores([slot, slot])
        assert report.n_moves == 1
        assert report.cores_mapped_out.count(slot) == 1

    def test_migration_fails_when_no_spares_left(self):
        # A 2x2 machine with only 2 cores per chip has one monitor and one
        # application core per chip: evacuating every application core at
        # once cannot succeed.
        machine = booted_machine(2, 2, 2)
        network = Network(seed=3)
        stimulus = SpikeSourcePoisson(4, rate_hz=50.0, label="s")
        target = Population(4, "lif", label="t")
        network.connect(stimulus, target, OneToOneConnector(weight=2.0))
        application = NeuralApplication(machine, network,
                                        max_neurons_per_core=2, seed=3)
        application.prepare()
        migrator = FunctionalMigrator.for_application(application)
        suspects = list(migrator.occupied_slots())
        with pytest.raises(MigrationError):
            migrator.evacuate_cores(suspects)


class TestApplicationContinuity:
    def test_application_still_produces_spikes_after_migration(self):
        machine = booted_machine()
        application = NeuralApplication(machine, small_feedforward(seed=23),
                                        max_neurons_per_core=10, seed=23)
        application.prepare()
        first = application.run(50.0)
        spikes_before = first.total_spikes("mig-target")

        migrator = FunctionalMigrator.for_application(application)
        (old_chip, old_core), _ = next(iter(migrator.occupied_slots().items()))
        migrator.evacuate_core(old_chip, old_core)

        second = application.run(50.0)
        assert second.total_spikes("mig-target") > spikes_before

    def test_fabric_application_survives_migration(self):
        # Regression: rebuilt runtimes must inherit the application's
        # transport/propagation modes, and the fabric delivery legs must
        # be recompiled so none point at an evacuated runtime object.
        machine = booted_machine()
        application = NeuralApplication(machine, small_feedforward(seed=29),
                                        max_neurons_per_core=10, seed=29,
                                        transport="fabric", stagger_us=0.0)
        application.prepare()
        first = application.run(40.0)
        events_before = first.synaptic_events

        migrator = FunctionalMigrator.for_application(application)
        (old_chip, old_core), _ = next(iter(migrator.occupied_slots().items()))
        migrator.evacuate_core(old_chip, old_core)

        live = set(map(id, application.core_runtimes))
        for runtime in application.core_runtimes:
            assert runtime.transport == "fabric"
            assert runtime.propagation == application.propagation
            for delivery in runtime.fabric_deliveries:
                assert id(delivery.runtime) in live

        second = application.run(40.0)
        assert second.synaptic_events > events_before
        assert application.unmatched_packets == 0

    def test_prefer_same_chip_keeps_vertex_local_when_possible(self):
        application = prepared_application(booted_machine(3, 3, 8))
        migrator = FunctionalMigrator.for_application(application)
        # Pick an occupied core whose chip still has at least one spare.
        for (chip, core), _vertex in migrator.occupied_slots().items():
            if any(slot[0] == chip for slot in migrator.spare_slots()):
                report = migrator.evacuate_core(chip, core)
                _v, _old, (new_chip, _new_core) = report.moves[0]
                assert new_chip == chip
                break
        else:  # pragma: no cover - machine always has on-chip spares here
            pytest.skip("no chip with both an occupied and a spare core")
