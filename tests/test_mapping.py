"""Unit tests for placement, key allocation, routing generation and
synaptic-matrix construction (Section 5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.mapping.keys import KeyAllocator, KeySpace, VERTEX_MASK
from repro.mapping.placement import Placement, PlacementError, Placer, Vertex
from repro.mapping.routing_generator import RoutingTableGenerator
from repro.mapping.synaptic_matrix import SynapticMatrixBuilder
from repro.neuron.connectors import AllToAllConnector, FixedProbabilityConnector, OneToOneConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.neuron.synapse import SynapticRow


def build_network(n_stim=30, n_exc=60, seed=7):
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(n_stim, rate_hz=50.0, label="m-stim")
    excitatory = Population(n_exc, "lif", label="m-exc")
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.3, weight=0.5,
                                              delay_range=(1, 4)))
    network.connect(excitatory, excitatory,
                    FixedProbabilityConnector(p_connect=0.1, weight=0.2))
    return network


class TestPlacement:
    def test_partition_respects_core_budget(self, medium_machine):
        placer = Placer(medium_machine, max_neurons_per_core=25)
        partition = placer.partition(build_network())
        assert all(v.n_neurons <= 25 for slices in partition.values()
                   for v in slices)
        assert len(partition["m-exc"]) == 3

    def test_partition_covers_every_neuron(self, medium_machine):
        placer = Placer(medium_machine, max_neurons_per_core=16)
        partition = placer.partition(build_network())
        for label, size in (("m-stim", 30), ("m-exc", 60)):
            covered = sorted((v.slice_start, v.slice_stop)
                             for v in partition[label])
            assert covered[0][0] == 0
            assert covered[-1][1] == size
            for (_, stop), (start, _) in zip(covered, covered[1:]):
                assert stop == start

    def test_place_assigns_unique_cores(self, medium_machine):
        placement = Placer(medium_machine, max_neurons_per_core=16).place(
            build_network())
        locations = list(placement.locations.values())
        assert len(locations) == len(set(locations))

    def test_place_never_uses_monitor_core(self, medium_machine):
        placement = Placer(medium_machine, max_neurons_per_core=16).place(
            build_network())
        for chip, core in placement.locations.values():
            monitor = medium_machine.chips[chip].monitor_core_id or 0
            assert core != monitor

    def test_placement_error_when_machine_too_small(self):
        machine = SpiNNakerMachine(MachineConfig(width=1, height=1,
                                                 cores_per_chip=2))
        with pytest.raises(PlacementError):
            Placer(machine, max_neurons_per_core=10).place(build_network())

    def test_vertex_for_neuron_resolves_slice(self, medium_machine):
        placement = Placer(medium_machine, max_neurons_per_core=16).place(
            build_network())
        vertex, local = placement.vertex_for_neuron("m-exc", 40)
        assert vertex.slice_start <= 40 < vertex.slice_stop
        assert local == 40 - vertex.slice_start
        with pytest.raises(KeyError):
            placement.vertex_for_neuron("m-exc", 500)

    def test_round_robin_and_locality_both_legal(self, medium_machine):
        for strategy in ("round-robin", "locality"):
            machine = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                                     cores_per_chip=6))
            placement = Placer(machine, max_neurons_per_core=16,
                               strategy=strategy).place(build_network())
            assert placement.n_cores_used == len(placement.vertices)

    def test_locality_places_population_contiguously(self):
        machine = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                                 cores_per_chip=6))
        placement = Placer(machine, max_neurons_per_core=16,
                           strategy="locality").place(build_network())
        chips = [placement.location_of(v)[0]
                 for v in placement.vertices_of("m-exc")]
        geometry = machine.geometry
        spread = max(geometry.distance(chips[0], other) for other in chips)
        assert spread <= 2

    def test_invalid_strategy_rejected(self, medium_machine):
        with pytest.raises(ValueError):
            Placer(medium_machine, strategy="simulated-annealing")

    def test_failed_cores_skipped(self):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=4))
        machine.chips[ChipCoordinate(0, 0)].cores[2].run_self_test(False)
        placement = Placer(machine, max_neurons_per_core=16).place(
            build_network(n_stim=10, n_exc=20))
        assert (ChipCoordinate(0, 0), 2) not in placement.locations.values()


class TestKeyAllocation:
    def _placement(self, machine):
        return Placer(machine, max_neurons_per_core=16).place(build_network())

    def test_key_spaces_are_unique(self, medium_machine):
        placement = self._placement(medium_machine)
        keys = KeyAllocator(placement)
        bases = [space.base_key for space in keys.all_key_spaces().values()]
        assert len(bases) == len(set(bases))

    def test_key_encodes_placement(self, medium_machine):
        placement = self._placement(medium_machine)
        keys = KeyAllocator(placement)
        for vertex, (chip, core) in placement.locations.items():
            base = keys.key_space(vertex).base_key
            assert KeyAllocator.unpack_base(base) == (chip, core)

    def test_neuron_round_trip(self, medium_machine):
        placement = self._placement(medium_machine)
        keys = KeyAllocator(placement)
        key = keys.key_for_neuron("m-exc", 33)
        assert keys.neuron_for_key(key) == ("m-exc", 33)

    def test_unknown_key_resolves_to_none(self, medium_machine):
        placement = self._placement(medium_machine)
        keys = KeyAllocator(placement)
        assert keys.vertex_for_key(0xFFFFFFFF) is None
        assert keys.neuron_for_key(0xFFFFFFFF) is None

    def test_key_space_mask_covers_neuron_bits(self):
        space = KeySpace(base_key=0x00012800)
        assert space.mask == VERTEX_MASK
        assert space.key_for(5) == 0x00012805
        assert space.neuron_of(0x00012805) == 5
        with pytest.raises(ValueError):
            space.key_for(5000)
        with pytest.raises(ValueError):
            space.neuron_of(0xFF012805)

    def test_core_field_width_enforced(self):
        with pytest.raises(ValueError):
            KeyAllocator.pack_base(ChipCoordinate(0, 0), 40)
        with pytest.raises(ValueError):
            KeyAllocator.pack_base(ChipCoordinate(300, 0), 1)


class TestRoutingGeneration:
    def _mapped(self, machine, network=None):
        network = network or build_network()
        placement = Placer(machine, max_neurons_per_core=16).place(network)
        keys = KeyAllocator(placement)
        generator = RoutingTableGenerator(machine, placement, keys)
        return network, placement, keys, generator

    def test_generate_installs_entries(self, medium_machine):
        network, placement, keys, generator = self._mapped(medium_machine)
        summary = generator.generate(network)
        assert summary.entries_installed > 0
        assert summary.multicast_trees > 0
        assert summary.chips_touched >= 1

    def test_tree_spans_source_and_destinations(self, medium_machine):
        network, placement, keys, generator = self._mapped(medium_machine)
        source = ChipCoordinate(0, 0)
        destinations = [ChipCoordinate(2, 1), ChipCoordinate(3, 3)]
        tree = generator.build_tree(source, destinations)
        assert source in tree
        for destination in destinations:
            assert destination in tree

    def test_tree_link_count_no_worse_than_separate_routes(self, medium_machine):
        network, placement, keys, generator = self._mapped(medium_machine)
        source = ChipCoordinate(0, 0)
        destinations = [ChipCoordinate(3, 0), ChipCoordinate(3, 1),
                        ChipCoordinate(3, 2)]
        tree = generator.build_tree(source, destinations)
        tree_links = sum(len(links) for links in tree.values())
        separate = sum(medium_machine.geometry.distance(source, d)
                       for d in destinations)
        assert tree_links <= separate

    def test_destinations_follow_synapses(self, medium_machine):
        network = Network(seed=1)
        a = Population(10, label="d-a")
        b = Population(10, label="d-b")
        network.connect(a, b, OneToOneConnector(weight=1.0))
        network, placement, keys, generator = self._mapped(medium_machine,
                                                           network)
        vertex_a = placement.vertices_of("d-a")[0]
        destinations = generator.destinations_of(
            network, vertex_a, np.random.default_rng(1))
        chip_b, core_b = placement.location_of(placement.vertices_of("d-b")[0])
        assert destinations == {chip_b: {core_b}}

    def test_broadcast_generates_more_entries_than_multicast(self):
        machine_multicast = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                                           cores_per_chip=6))
        machine_broadcast = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                                           cores_per_chip=6))
        network = build_network()
        for machine, broadcast in ((machine_multicast, False),
                                   (machine_broadcast, True)):
            placement = Placer(machine, max_neurons_per_core=16).place(network)
            keys = KeyAllocator(placement)
            generator = RoutingTableGenerator(machine, placement, keys)
            if broadcast:
                broadcast_summary = generator.generate_broadcast(network)
            else:
                multicast_summary = generator.generate(network, minimise=False)
        assert (broadcast_summary.total_tree_links
                > multicast_summary.total_tree_links)

    def test_minimisation_reduces_or_preserves_entry_count(self, medium_machine):
        network, placement, keys, generator = self._mapped(medium_machine)
        summary = generator.generate(network, minimise=True)
        assert summary.entries_after_minimisation <= summary.entries_installed


class TestSynapticMatrices:
    def _built(self, machine):
        network = build_network()
        placement = Placer(machine, max_neurons_per_core=16).place(network)
        keys = KeyAllocator(placement)
        builder = SynapticMatrixBuilder(machine, placement, keys)
        data = builder.build(network)
        return network, placement, keys, data

    def test_every_placed_vertex_has_core_data(self, medium_machine):
        network, placement, keys, data = self._built(medium_machine)
        assert set(data.keys()) == set(placement.locations.values())

    def test_total_synapses_match_network(self, medium_machine):
        network, placement, keys, data = self._built(medium_machine)
        expected = network.n_synapses(np.random.default_rng(network.seed))
        total = sum(core.total_synapses for core in data.values())
        assert total == expected

    def test_population_table_lookup_finds_rows(self, medium_machine):
        network, placement, keys, data = self._built(medium_machine)
        # Pick a stimulus neuron and check its key resolves on some core.
        key = keys.key_for_neuron("m-stim", 3)
        hits = [core for core in data.values()
                if core.population_table.lookup(key) is not None]
        assert hits, "at least one target core must hold a row for the key"

    def test_rows_in_sdram_decode_to_local_targets(self, medium_machine):
        network, placement, keys, data = self._built(medium_machine)
        key = keys.key_for_neuron("m-stim", 3)
        for (chip_coord, core_id), core_data in data.items():
            lookup = core_data.population_table.lookup(key)
            if lookup is None:
                continue
            address, words = lookup
            chip = medium_machine.chips[chip_coord]
            row = SynapticRow.unpack(key, chip.sdram.read_block(address, words))
            assert all(0 <= s.target < core_data.vertex.n_neurons for s in row)

    def test_sdram_usage_accounted(self, medium_machine):
        network, placement, keys, data = self._built(medium_machine)
        for (chip_coord, _), core_data in data.items():
            chip = medium_machine.chips[chip_coord]
            assert chip.sdram.bytes_allocated > 0
            assert core_data.total_sdram_words >= core_data.total_synapses

    def test_misses_counted_for_unknown_keys(self, medium_machine):
        network, placement, keys, data = self._built(medium_machine)
        core_data = next(iter(data.values()))
        assert core_data.population_table.lookup(0xFFFFF800) is None
        assert core_data.population_table.misses >= 1
