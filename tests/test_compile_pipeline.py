"""The pass-based mapping compiler (`repro.compile`).

Acceptance checks of the pipeline refactor:

* pipeline equivalence — for seeded networks the pipeline produces
  placements, key allocations, routing tables, route programs and SDRAM
  synaptic blocks identical to the pre-refactor inline tool-chain
  (replayed here through the legacy ``Placer`` / ``KeyAllocator`` /
  ``RoutingTableGenerator`` / ``SynapticMatrixBuilder`` path), for event
  and fabric transports and for multicast and broadcast routing;
* per-pass artifact caching and dependency-tracked invalidation;
* incremental re-map — a chip condemnation re-runs only the affected
  passes over the affected vertices, and (after a reset) reproduces a
  cold compile on the shrunken machine spike for spike.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.server import AllocationServer
from repro.compile import MappingPipeline
from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.host.host_system import HostSystem
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placer
from repro.mapping.routing_generator import RoutingTableGenerator
from repro.mapping.synaptic_matrix import SynapticMatrixBuilder
from repro.neuron.connectors import FixedProbabilityConnector, OneToOneConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController
from repro.runtime.monitor import MonitorService

SEED = 91


def booted_machine(width=3, height=3, cores=6):
    machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                             cores_per_chip=cores))
    BootController(machine, seed=1).boot()
    return machine


def layered_network(seed=SEED):
    """Two projections, several vertices per population, mixed fan-out."""
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(48, rate_hz=60.0, label="cp-stim")
    relay = Population(48, "lif", label="cp-relay")
    out = Population(32, "lif", label="cp-out")
    relay.record(spikes=True)
    out.record(spikes=True)
    network.connect(stimulus, relay, OneToOneConnector(weight=4.0,
                                                       delay_ticks=1))
    network.connect(relay, out,
                    FixedProbabilityConnector(0.25, weight=1.2,
                                              delay_range=(1, 6)))
    return network


def legacy_toolchain(machine, network, *, expansion_seed,
                     max_neurons_per_core=8, strategy="locality",
                     broadcast=False, fabric=False):
    """The pre-refactor inline mapping tool-chain, stage by stage."""
    placer = Placer(machine, max_neurons_per_core, strategy)
    placement = placer.place(network)
    keys = KeyAllocator(placement)
    generator = RoutingTableGenerator(machine, placement, keys)
    if broadcast:
        generator.generate_broadcast(network, seed=expansion_seed)
    else:
        generator.generate(network, seed=expansion_seed,
                           compile_programs=fabric)
    builder = SynapticMatrixBuilder(machine, placement, keys)
    core_data = builder.build(network, seed=expansion_seed)
    return placement, keys, generator, core_data


def sdram_blocks(machine, core_data):
    """Every core's population-table records plus the packed SDRAM words."""
    blocks = {}
    for (chip_coordinate, core_id), data in core_data.items():
        chip = machine.chips[chip_coordinate]
        records = []
        for entry in data.population_table.entries:
            words = chip.sdram.peek_block(
                entry.sdram_address, entry.row_stride_words * entry.n_rows)
            records.append((entry.key, entry.mask, entry.sdram_address,
                            entry.row_stride_words, entry.n_rows,
                            tuple(words)))
        blocks[(chip_coordinate, core_id)] = records
    return blocks


class TestPipelineLegacyEquivalence:
    @pytest.mark.parametrize("broadcast,fabric", [
        (False, False),   # event transport, multicast routing
        (False, True),    # fabric transport, multicast routing
        (True, False),    # event transport, broadcast routing
    ])
    def test_pipeline_matches_legacy_toolchain(self, broadcast, fabric):
        network = layered_network()
        legacy_machine = booted_machine()
        placement, keys, generator, core_data = legacy_toolchain(
            legacy_machine, network, expansion_seed=SEED,
            broadcast=broadcast, fabric=fabric)

        pipeline_machine = booted_machine()
        pipeline = MappingPipeline(pipeline_machine, network, seed=SEED,
                                   max_neurons_per_core=8,
                                   broadcast_routing=broadcast,
                                   compile_transport=fabric)
        ctx = pipeline.run()

        # Placement and key allocation are identical.
        assert ctx.placement.locations == placement.locations
        assert ctx.keys.all_key_spaces() == keys.all_key_spaces()

        # Every chip's installed routing table is identical, entry for
        # entry and in order (same minimisation input -> same output).
        for coordinate in legacy_machine.chips:
            legacy_table = legacy_machine.chips[coordinate].router.table
            pipeline_table = pipeline_machine.chips[coordinate].router.table
            assert list(pipeline_table.entries) == list(legacy_table.entries)

        # The SDRAM synaptic blocks land at the same addresses with the
        # same packed words and population-table records.
        assert (sdram_blocks(pipeline_machine, ctx.core_data)
                == sdram_blocks(legacy_machine, core_data))

        # And the compiled transport programs (fabric mode) agree.
        if fabric:
            assert ctx.route_programs == generator.compiled_programs
        else:
            assert ctx.route_programs == {}

    def test_prepare_is_reentrant_with_mode_guard(self):
        # A prepared application refuses to be silently re-prepared into
        # a different routing mode (remap through the pipeline instead).
        machine = booted_machine()
        application = NeuralApplication(machine, layered_network(),
                                        max_neurons_per_core=8, seed=SEED)
        application.prepare(broadcast_routing=True)
        with pytest.raises(RuntimeError):
            application.prepare(broadcast_routing=False)


class TestPassCaching:
    def test_second_run_is_all_cache_hits(self):
        machine = booted_machine()
        pipeline = MappingPipeline(machine, layered_network(), seed=SEED,
                                   max_neurons_per_core=8)
        pipeline.run()
        pipeline.run()
        for row in pipeline.report():
            assert row["cache_hits"] == 1, row
            assert row["runs"] == 1, row

    def test_unrelated_condemnation_keeps_downstream_cached(self):
        # Condemning a chip that hosts no vertices changes the machine
        # fingerprint (the place pass re-runs) but displaces nothing, so
        # routing, synaptic matrices and transport all cache-hit.
        machine = booted_machine(4, 4, 6)
        pipeline = MappingPipeline(machine, layered_network(), seed=SEED,
                                   max_neurons_per_core=8)
        ctx = pipeline.run()
        used = set(chip for chip, _ in ctx.placement.locations.values())
        idle = [c for c in machine.chips if c not in used]
        assert idle, "test needs an unused chip"
        MonitorService(machine).condemn_chip(idle[-1])
        pipeline.run()
        assert pipeline.records["place"].runs == 2
        for name in ("route", "compress", "synaptic-matrices",
                     "compile-transport"):
            assert pipeline.records[name].cache_hits == 1, name

    def test_partition_preserving_network_change_rebuilds_synapses(self):
        # Regression: adding a projection between already-partitioned
        # populations (or changing connector parameters) changes the
        # connectivity without changing the partition — the packed-block
        # cache and every core's SDRAM data must still be rebuilt, or
        # routing and synaptic data go out of sync.
        machine = booted_machine(4, 4, 6)
        network = layered_network()
        pipeline = MappingPipeline(machine, network, seed=SEED,
                                   max_neurons_per_core=8)
        pipeline.run()
        network.connect(network.population("cp-stim"),
                        network.population("cp-out"),
                        FixedProbabilityConnector(0.5, weight=0.3))
        ctx = pipeline.run()
        assert "full" in pipeline.records["synaptic-matrices"].last_scope
        mapped = sum(data.total_synapses for data in ctx.core_data.values())
        assert mapped == network.n_synapses()
        # And the new projection's packets resolve at their targets.
        application = NeuralApplication(booted_machine(4, 4, 6),
                                        network, max_neurons_per_core=8,
                                        seed=SEED, stagger_us=0.0)
        result = application.run(40.0)
        assert result.total_spikes() > 0
        assert application.unmatched_packets == 0

    def test_network_change_invalidates_everything(self):
        machine = booted_machine(4, 4, 6)
        network = layered_network()
        pipeline = MappingPipeline(machine, network, seed=SEED,
                                   max_neurons_per_core=8)
        first = pipeline.run()
        entries_before = first.routing_summary.entries_installed
        feedback = Population(16, "lif", label="cp-feedback")
        network.connect(network.population("cp-out"), feedback,
                        FixedProbabilityConnector(0.3, weight=0.5))
        ctx = pipeline.run()
        assert pipeline.records["partition"].runs == 2
        assert pipeline.records["route"].runs == 2
        assert "full" in pipeline.records["synaptic-matrices"].last_scope
        assert ctx.routing_summary.entries_installed > entries_before
        assert any(v.population_label == "cp-feedback"
                   for v in ctx.placement.locations)


class TestIncrementalRemap:
    def _prepare(self, seed=SEED):
        machine = booted_machine(3, 3, 6)
        application = NeuralApplication(machine, layered_network(seed),
                                        max_neurons_per_core=8, seed=seed,
                                        stagger_us=0.0)
        application.prepare()
        return machine, application

    @staticmethod
    def _victim(application):
        """A chip hosting vertices, condemned last in raster order."""
        return application.placement.chips_used()[-1]

    def test_condemnation_remap_matches_cold_compile(self):
        # Satellite: condemn a chip mid-run via the monitor, re-map
        # incrementally, and check the re-mapped network reproduces a
        # cold full compile on the shrunken machine — same placement,
        # same spike trains.
        machine, application = self._prepare()
        monitor = MonitorService(machine)
        monitor.attach_application(application, reset=True)
        application.run(40.0)                  # mid-run fault
        victim = self._victim(application)
        monitor.condemn_chip(victim)           # triggers the re-map
        assert monitor.report.remaps_requested == 1
        remapped = application.run(80.0)

        cold_machine = booted_machine(3, 3, 6)
        MonitorService(cold_machine).condemn_chip(victim)
        cold_application = NeuralApplication(cold_machine, layered_network(),
                                             max_neurons_per_core=8,
                                             seed=SEED, stagger_us=0.0)
        cold = cold_application.run(80.0)

        assert (application.placement.locations
                == cold_application.placement.locations)
        assert victim not in application.placement.chips_used()
        for label in cold.spike_counts:
            assert np.array_equal(remapped.spike_counts[label],
                                  cold.spike_counts[label])
        for label in cold.spikes:
            assert sorted(remapped.spikes[label]) == sorted(cold.spikes[label])
        assert remapped.delivered_charge_na == cold.delivered_charge_na

    def test_condemnation_remaps_only_affected_passes(self):
        machine, application = self._prepare()
        monitor = MonitorService(machine)
        monitor.attach_application(application)
        victim = self._victim(application)
        displaced = sum(1 for chip, _ in
                        application.placement.locations.values()
                        if chip == victim)
        assert displaced > 0
        monitor.condemn_chip(victim)
        records = application.pipeline.records
        # The partition artifact is untouched; the expensive expansion-
        # derived artifacts (reach, packed blocks) were reused; only the
        # displaced vertices' cores were rebuilt.
        assert records["partition"].cache_hits >= 1
        scope = records["synaptic-matrices"].last_scope
        assert "full" not in scope
        rebuilt = int(scope.split()[0])
        assert rebuilt < len(application.placement.locations)

    def test_live_remap_keeps_surviving_state_and_delivery(self):
        machine, application = self._prepare()
        monitor = MonitorService(machine)
        monitor.attach_application(application)   # reset=False: live path
        application.run(40.0)
        before = application.result.total_spikes()
        survivors = {id(r) for r in application.core_runtimes
                     if r.chip_coordinate != self._victim(application)}
        monitor.condemn_chip(self._victim(application))
        result = application.run(60.0)
        # Surviving runtimes were kept (state intact), displaced ones
        # rebuilt, and the application keeps spiking with clean routing.
        kept = {id(r) for r in application.core_runtimes}
        assert survivors <= kept
        assert result.total_spikes() > before
        assert application.unmatched_packets == 0


class TestSharedArtifacts:
    def test_host_injects_spikes_through_compiled_keys(self):
        machine = booted_machine()
        network = layered_network()
        application = NeuralApplication(machine, network,
                                        max_neurons_per_core=8, seed=SEED)
        application.prepare()
        host = HostSystem(machine)
        received_before = sum(r.core.packets_received
                              for r in application.core_runtimes)
        host.inject_population_spike(application.keys, "cp-relay", 3)
        machine.run()
        received_after = sum(r.core.packets_received
                             for r in application.core_runtimes)
        assert received_after > received_before
        assert application.unmatched_packets == 0

    def test_host_simulator_and_pipeline_share_expansion(self):
        # Whichever side expands first, both count the same synapses for
        # the same seed: one shared expansion artifact, no private caches.
        network = layered_network()
        reference = network.run(10.0)            # host expands first
        machine = booted_machine()
        pipeline = MappingPipeline(machine, network, seed=SEED,
                                   max_neurons_per_core=8)
        ctx = pipeline.run()
        mapped = sum(data.total_synapses for data in ctx.core_data.values())
        assert mapped == network.n_synapses() > 0
        assert reference.total_spikes() >= 0


class TestLeaseCompile:
    def test_job_compiles_against_confined_view(self):
        machine = SpiNNakerMachine(MachineConfig(width=8, height=8,
                                                 cores_per_chip=6))
        host = HostSystem(machine)
        server = AllocationServer(host, power_on_delay_us=10.0)
        job = server.create_job("tenant", 4, 4, keepalive_ms=1e9)
        machine.run()
        view = job.machine_view
        assert view is not None
        BootController(view, seed=7).boot()
        application = NeuralApplication(view, layered_network(),
                                        max_neurons_per_core=8, seed=SEED)
        application.prepare()
        leased = set(view.chips)
        # The compiled artifacts never leave the lease.
        assert set(application.placement.chips_used()) <= leased
        assert set(application.pipeline.ctx.chip_entries) <= leased
        result = application.run(40.0)
        assert result.total_spikes() > 0

    def test_lease_shrink_triggers_incremental_remap(self):
        # A chip condemned inside a live lease is carved out of the view
        # entirely; the job's re-map must re-place around the hole
        # without touching (or crashing on) the chip that vanished.
        machine = SpiNNakerMachine(MachineConfig(width=8, height=8,
                                                 cores_per_chip=6))
        host = HostSystem(machine)
        server = AllocationServer(host, power_on_delay_us=10.0)
        job = server.create_job("tenant", 4, 4, keepalive_ms=1e9)
        machine.run()
        view = job.machine_view
        BootController(view, seed=7).boot()
        application = NeuralApplication(view, layered_network(),
                                        max_neurons_per_core=8, seed=SEED,
                                        stagger_us=0.0)
        application.run(20.0)
        victim = application.placement.chips_used()[-1]
        server.scheduler.handle_dead_chip(victim)
        view.refresh()
        assert victim not in view.chips
        application.remap()
        assert victim not in application.placement.chips_used()
        before = application.result.total_spikes()
        application.run(30.0)
        assert application.result.total_spikes() > before
        assert application.unmatched_packets == 0
