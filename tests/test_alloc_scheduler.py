"""Tests for the multi-tenant allocation subsystem (repro.alloc)."""

from __future__ import annotations

import pytest

from repro.alloc.job import JobRequest, JobState
from repro.alloc.partition import MachinePartitioner, Rect, subtract
from repro.alloc.queue import TenantQuota
from repro.alloc.scheduler import AllocationScheduler
from repro.alloc.server import (ERROR_BAD_COMMAND, ERROR_BAD_REQUEST,
                                ERROR_INTERNAL, ERROR_NO_SUCH_JOB,
                                AllocationServer)
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.host.host_system import HostCommand, HostSystem, SDPMessage
from repro.runtime.monitor import MonitorService


def make_machine(width=8, height=8, cores=4) -> SpiNNakerMachine:
    return SpiNNakerMachine(MachineConfig(width=width, height=height,
                                          cores_per_chip=cores))


def fail_chip(machine: SpiNNakerMachine, x: int, y: int) -> ChipCoordinate:
    """Fail every core of one chip (the partitioner's fault predicate)."""
    coordinate = ChipCoordinate(x, y)
    for core in machine.chips[coordinate].cores:
        core.run_self_test(False)
    return coordinate


# ----------------------------------------------------------------------
# Rectangle arithmetic
# ----------------------------------------------------------------------
class TestRect:
    def test_subtract_interior_hole_covers_complement(self):
        pieces = subtract(Rect(0, 0, 8, 8), Rect(3, 3, 2, 2))
        assert sum(p.area for p in pieces) == 64 - 4
        covered = {c for p in pieces for c in p.chips()}
        assert ChipCoordinate(3, 3) not in covered
        assert ChipCoordinate(0, 0) in covered and len(covered) == 60

    def test_subtract_disjoint_is_identity(self):
        rect = Rect(0, 0, 4, 4)
        assert subtract(rect, Rect(5, 5, 2, 2)) == [rect]

    def test_coalesce_merges_edge_sharing_rectangles(self):
        machine = make_machine()
        partitioner = MachinePartitioner(machine)
        a = partitioner.allocate(4, 4)
        b = partitioner.allocate(4, 4)  # beside a: together the 8x4 bottom
        partitioner.allocate(8, 4)      # the top half stays leased
        partitioner.release(a)
        partitioner.release(b)
        assert partitioner.free_rectangles == [Rect(0, 0, 8, 4)]


# ----------------------------------------------------------------------
# Fault-aware allocation
# ----------------------------------------------------------------------
class TestFaultAwareness:
    def test_failed_chips_are_never_allocated(self):
        machine = make_machine()
        faulty = [fail_chip(machine, 2, 2), fail_chip(machine, 5, 6)]
        partitioner = MachinePartitioner(machine)
        leases = []
        for width, height in ((2, 2), (1, 1)):
            while True:
                lease = partitioner.allocate(width, height)
                if lease is None:
                    break
                leases.append(lease)
        allocated = {c for lease in leases for c in lease.chips()}
        for coordinate in faulty:
            assert coordinate not in allocated
        # Everything except the dead silicon is allocatable.
        assert len(allocated) == 64 - len(faulty)

    def test_chip_with_all_links_failed_is_unusable(self):
        machine = make_machine(4, 4)
        dead = ChipCoordinate(1, 1)
        for direction in Direction:
            machine.fail_link(dead, direction)
        partitioner = MachinePartitioner(machine)
        assert dead in partitioner.faulty
        assert partitioner.free_area == 15

    def test_every_policy_avoids_faults(self):
        for policy in ("first-fit", "best-fit", "locality-fit"):
            machine = make_machine()
            faulty = fail_chip(machine, 1, 1)
            partitioner = MachinePartitioner(machine)
            lease = partitioner.allocate(4, 4, policy=policy)
            assert lease is not None
            assert faulty not in lease.chips()


# ----------------------------------------------------------------------
# Fragmentation and coalescing
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_out_of_order_release_coalesces_back_to_solid_block(self):
        machine = make_machine()
        partitioner = MachinePartitioner(machine)
        quads = [partitioner.allocate(4, 4) for _ in range(4)]
        assert all(lease is not None for lease in quads)
        assert partitioner.free_area == 0
        # Release in a scrambled order; every release coalesces.
        for index in (2, 0, 3, 1):
            partitioner.release(quads[index])
        assert partitioner.free_rectangles == [Rect(0, 0, 8, 8)]
        assert partitioner.fragmentation() == 0.0

    def test_wide_request_needs_coalescing_of_adjacent_releases(self):
        machine = make_machine()
        partitioner = MachinePartitioner(machine)
        quads = [partitioner.allocate(4, 4) for _ in range(4)]
        # Free the two bottom quadrants (released out of order).
        bottom = [lease for lease in quads if lease.rect.y == 0]
        partitioner.release(bottom[1])
        partitioner.release(bottom[0])
        # 8x4 only fits if the two 4x4 holes merged into one rectangle.
        wide = partitioner.allocate(8, 4)
        assert wide is not None
        assert wide.rect == Rect(0, 0, 8, 4)

    def test_fragmentation_statistic_tracks_free_list_shape(self):
        machine = make_machine()
        partitioner = MachinePartitioner(machine)
        assert partitioner.fragmentation() == 0.0
        a = partitioner.allocate(3, 3)
        b = partitioner.allocate(3, 3)
        partitioner.release(a)
        assert 0.0 < partitioner.fragmentation() < 1.0
        partitioner.release(b)
        assert partitioner.fragmentation() == 0.0


# ----------------------------------------------------------------------
# Queue and quotas
# ----------------------------------------------------------------------
class TestQueueAndQuotas:
    def test_priority_order_with_fifo_tie_break(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine)
        filler = scheduler.submit(JobRequest("filler", 8, 8))
        assert filler.state.is_active
        q = [scheduler.submit(JobRequest("t%d" % i, 4, 4, priority=p))
             for i, p in enumerate((5, 1, 5, 2))]
        pending = scheduler.queued_jobs()
        assert [job.request.priority for job in pending] == [1, 2, 5, 5]
        assert pending[2] is q[0]  # FIFO among equal priorities

    def test_oversized_request_is_rejected_not_queued(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine)
        job = scheduler.submit(JobRequest("alice", 20, 20))
        assert job.state is JobState.REJECTED
        assert not scheduler.queued_jobs()

    def test_submission_rate_limit_rejects_burst_overflow(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine)
        scheduler.queue.set_quota(TenantQuota(
            tenant="alice", submission_rate_per_ms=0.001,
            submission_burst=2, max_active_jobs=100))
        outcomes = [scheduler.submit(JobRequest("alice", 1, 1)).state
                    for _ in range(4)]
        assert outcomes[:2] == [JobState.QUEUED, JobState.QUEUED] or \
            outcomes[:2] == [JobState.POWERING, JobState.POWERING]
        assert outcomes[2] is JobState.REJECTED
        assert outcomes[3] is JobState.REJECTED
        assert scheduler.stats.rejected == 2

    def test_over_quota_job_queues_then_runs_after_release(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=0.0)
        scheduler.queue.set_quota(TenantQuota(tenant="alice",
                                              max_active_jobs=1,
                                              submission_burst=8))
        first = scheduler.submit(JobRequest("alice", 2, 2))
        second = scheduler.submit(JobRequest("alice", 2, 2))
        assert first.state is JobState.POWERING
        assert second.state is JobState.QUEUED
        assert scheduler.stats.skips_quota >= 1
        scheduler.release(first.job_id)
        assert second.state is JobState.POWERING
        machine.run()
        assert second.state is JobState.READY

    def test_chip_quota_counts_leased_area(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine)
        scheduler.queue.set_quota(TenantQuota(tenant="alice",
                                              max_leased_chips=20,
                                              submission_burst=8))
        big = scheduler.submit(JobRequest("alice", 4, 4))     # 16 chips
        small = scheduler.submit(JobRequest("alice", 3, 3))   # would be 25
        assert big.state.is_active
        assert small.state is JobState.QUEUED

    def test_smaller_job_can_overtake_blocked_head_of_queue(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine)
        filler = scheduler.submit(JobRequest("bob", 8, 7))
        blocked = scheduler.submit(JobRequest("bob", 4, 4, priority=1))
        nimble = scheduler.submit(JobRequest("carol", 8, 1, priority=5))
        assert filler.state.is_active
        assert blocked.state is JobState.QUEUED   # no 4x4 hole left
        assert nimble.state.is_active             # the 8x1 strip fits


# ----------------------------------------------------------------------
# Keepalive expiry
# ----------------------------------------------------------------------
class TestKeepaliveExpiry:
    def test_expired_job_is_reclaimed_and_queue_drains(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=0.0)
        holder = scheduler.submit(JobRequest("alice", 8, 8,
                                             keepalive_ms=5.0))
        machine.run()
        assert holder.state is JobState.READY
        waiter = scheduler.submit(JobRequest("bob", 4, 4,
                                             keepalive_ms=1e6))
        assert waiter.state is JobState.QUEUED
        # Advance past the keepalive interval without touching the job.
        machine.kernel.run_until(machine.kernel.now + 10_000.0)
        expired = scheduler.sweep()
        assert holder in expired
        assert holder.state is JobState.EXPIRED
        assert waiter.state is JobState.POWERING
        machine.run()
        assert waiter.state is JobState.READY

    def test_keepalives_keep_the_job_alive(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=0.0)
        job = scheduler.submit(JobRequest("alice", 2, 2, keepalive_ms=5.0))
        machine.run()
        for _ in range(5):
            machine.kernel.run_until(machine.kernel.now + 3_000.0)
            assert scheduler.keepalive(job.job_id)
            assert not scheduler.sweep()
        assert job.state is JobState.READY

    def test_queued_job_of_a_crashed_client_expires_too(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=0.0)
        scheduler.queue.set_quota(TenantQuota(tenant="alice",
                                              max_active_jobs=1,
                                              submission_burst=8))
        holder = scheduler.submit(JobRequest("alice", 2, 2,
                                             keepalive_ms=1e6))
        stuck = scheduler.submit(JobRequest("alice", 2, 2,
                                            keepalive_ms=5.0))
        assert stuck.state is JobState.QUEUED
        machine.kernel.run_until(machine.kernel.now + 10_000.0)
        scheduler.sweep()
        assert stuck.state is JobState.EXPIRED
        assert holder.state.is_active  # its keepalive interval is huge

    def test_periodic_expiry_timer_reclaims_without_manual_sweeps(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=0.0)
        job = scheduler.submit(JobRequest("alice", 2, 2, keepalive_ms=4.0))
        scheduler.start_expiry_timer(period_ms=1.0)
        machine.kernel.run_until(machine.kernel.now + 20_000.0)
        scheduler.stop_expiry_timer()
        assert job.state is JobState.EXPIRED
        assert scheduler.partitioner.leased_area == 0


# ----------------------------------------------------------------------
# Lifecycle invariants
# ----------------------------------------------------------------------
class TestJobLifecycle:
    def test_illegal_transitions_are_rejected(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=0.0)
        job = scheduler.submit(JobRequest("alice", 2, 2))
        machine.run()
        assert job.state is JobState.READY
        with pytest.raises(ValueError):
            job.transition(JobState.POWERING, 0.0)
        scheduler.release(job.job_id)
        assert job.state is JobState.FREED
        assert not scheduler.release(job.job_id)  # terminal: no-op

    def test_release_while_powering_cancels_power_on(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=500.0)
        job = scheduler.submit(JobRequest("alice", 2, 2))
        assert job.state is JobState.POWERING
        scheduler.release(job.job_id)
        machine.run()
        assert job.state is JobState.FREED
        assert job.machine_view is None
        assert scheduler.partitioner.leased_area == 0

    def test_history_records_the_whole_path(self):
        machine = make_machine()
        scheduler = AllocationScheduler(machine, power_on_delay_us=0.0)
        job = scheduler.submit(JobRequest("alice", 2, 2))
        machine.run()
        scheduler.release(job.job_id)
        assert [state for state, _t in job.history] == [
            JobState.QUEUED, JobState.POWERING, JobState.READY,
            JobState.FREED]


# ----------------------------------------------------------------------
# Placement policies
# ----------------------------------------------------------------------
class TestPlacementPolicies:
    def test_best_fit_prefers_the_tightest_hole(self):
        machine = make_machine()
        partitioner = MachinePartitioner(machine)
        # Carve the free space into an 8x4 hole at y=0 and an 8x2 hole at
        # y=6, kept apart by a live 8x2 lease at y=4.
        big = partitioner.allocate(8, 4)
        partitioner.allocate(8, 2)
        small = partitioner.allocate(8, 2)
        partitioner.release(big)
        partitioner.release(small)
        lease = partitioner.allocate(3, 2, policy="best-fit")
        assert lease.rect.y == 6  # the tight 8x2 hole, not the 8x4 one
        first = partitioner.allocate(3, 2, policy="first-fit")
        assert first.rect.y == 0  # first-fit takes the raster-first hole

    def test_locality_fit_hugs_the_gateway(self):
        machine = make_machine()
        partitioner = MachinePartitioner(machine)
        lease = partitioner.allocate(2, 2, policy="locality-fit")
        gateway = machine.ethernet_chips[0]
        assert machine.geometry.distance(lease.rect.centre(), gateway) <= 2

    def test_locality_fit_keeps_clear_of_faulty_silicon(self):
        machine = make_machine()
        # A fault wall near the origin makes the origin corner unattractive.
        for x in range(3):
            fail_chip(machine, x, 2)
        fail_chip(machine, 2, 0)
        fail_chip(machine, 2, 1)
        partitioner = MachinePartitioner(machine)
        lease = partitioner.allocate(2, 2, policy="locality-fit")
        perimeter_faults = partitioner._faulty_perimeter(lease.rect)
        assert perimeter_faults == 0


# ----------------------------------------------------------------------
# Monitor integration: leases shrink when chips die
# ----------------------------------------------------------------------
class TestMonitorIntegration:
    def test_condemned_chip_shrinks_the_owning_lease(self):
        machine = make_machine()
        host = HostSystem(machine)
        server = AllocationServer(host, power_on_delay_us=0.0)
        monitor = MonitorService(machine)
        server.attach_monitor(monitor)
        job = server.create_job("alice", 4, 4)
        machine.run()
        assert job.state is JobState.READY
        victim = next(iter(job.machine_view.chips))
        monitor.condemn_chip(victim)
        assert victim not in job.machine_view.chips
        assert job.lease.n_chips == 15
        assert monitor.report.chips_condemned == 1
        # The dead chip never returns to the pool, even after release.
        server.release(job.job_id)
        assert victim in server.scheduler.partitioner.faulty
        assert server.scheduler.partitioner.free_area == 63

    def test_condemning_twice_counts_once(self):
        machine = make_machine()
        host = HostSystem(machine)
        server = AllocationServer(host)
        monitor = MonitorService(machine)
        server.attach_monitor(monitor)
        monitor.condemn_chip(ChipCoordinate(3, 3))
        monitor.condemn_chip(ChipCoordinate(3, 3))
        server.scheduler.handle_dead_chip(ChipCoordinate(3, 3))  # repeat
        assert monitor.report.chips_condemned == 1
        assert server.scheduler.stats.chips_condemned == 1

    def test_reclaimed_job_no_longer_reports_a_lease(self):
        machine = make_machine()
        host = HostSystem(machine)
        server = AllocationServer(host, power_on_delay_us=0.0)
        job = server.create_job("alice", 2, 2)
        machine.run()
        released = host.release_job(job.job_id)
        assert released["state"] == "freed"
        assert "lease" not in released  # the chips went back to the pool
        assert job.lease is None

    def test_condemned_free_chip_leaves_the_pool(self):
        machine = make_machine()
        host = HostSystem(machine)
        server = AllocationServer(host)
        monitor = MonitorService(machine)
        server.attach_monitor(monitor)
        monitor.condemn_chip(ChipCoordinate(3, 3))
        lease = server.scheduler.partitioner.allocate(8, 8)
        assert lease is None  # the full square no longer exists
        assert server.scheduler.partitioner.free_area == 63


# ----------------------------------------------------------------------
# SDP command surface
# ----------------------------------------------------------------------
class TestAllocationServerSDP:
    def test_create_keepalive_release_round_trip(self):
        machine = make_machine()
        host = HostSystem(machine)
        AllocationServer(host, power_on_delay_us=0.0)
        created = host.create_job("alice", 3, 3, priority=2,
                                  keepalive_ms=50.0)
        assert created["state"] in ("queued", "powering")
        machine.run()
        job_id = created["job_id"]
        alive = host.job_keepalive(job_id)
        assert alive["alive"] and alive["state"] == "ready"
        released = host.release_job(job_id)
        assert released["released"] and released["state"] == "freed"

    def test_unknown_job_and_bad_arguments_report_errors(self):
        machine = make_machine()
        host = HostSystem(machine)
        AllocationServer(host)
        assert "error" in host.job_keepalive(999)
        assert "error" in host.release_job(999)
        assert "error" in host.create_job("", 2, 2)  # unnamed tenant

    def test_commands_without_server_report_errors(self):
        machine = make_machine()
        host = HostSystem(machine)
        response = host.send(SDPMessage(HostCommand.CREATE_JOB, host.gateway,
                                        {"tenant": "alice", "width": 1,
                                         "height": 1})).response
        assert "error" in response

    def test_chip_commands_are_unaffected(self):
        machine = make_machine()
        host = HostSystem(machine)
        AllocationServer(host)
        status = host.query_status(host.gateway)
        assert "booted" in status

    def test_malformed_create_job_gets_a_typed_error_not_a_crash(self):
        machine = make_machine()
        host = HostSystem(machine)
        server = AllocationServer(host)
        # Arguments that are not even a mapping must not raise.
        response = server.handle(HostCommand.CREATE_JOB, None)
        assert response["code"] == ERROR_BAD_REQUEST
        # A mapping whose fields do not coerce is a bad request too.
        response = host.send(SDPMessage(HostCommand.CREATE_JOB, host.gateway,
                                        {"tenant": "alice", "width": "wide",
                                         "height": 2})).response
        assert response["code"] == ERROR_BAD_REQUEST
        # The dispatch loop survived: a well-formed command still works.
        created = host.create_job("alice", 2, 2)
        assert created["state"] in ("queued", "powering")

    def test_unknown_jobs_and_commands_carry_typed_codes(self):
        machine = make_machine()
        host = HostSystem(machine)
        server = AllocationServer(host)
        assert host.job_keepalive(999)["code"] == ERROR_NO_SUCH_JOB
        assert host.release_job(999)["code"] == ERROR_NO_SUCH_JOB
        response = server.handle(HostCommand.QUERY_STATUS, {})
        assert response["code"] == ERROR_BAD_COMMAND

    def test_internal_faults_map_to_internal_error(self, monkeypatch):
        machine = make_machine()
        host = HostSystem(machine)
        server = AllocationServer(host)

        def explode(_request):
            raise RuntimeError("scheduler fault")

        monkeypatch.setattr(server.scheduler, "submit", explode)
        response = host.send(SDPMessage(HostCommand.CREATE_JOB, host.gateway,
                                        {"tenant": "alice", "width": 1,
                                         "height": 1})).response
        assert response["code"] == ERROR_INTERNAL
        assert "scheduler fault" in response["error"]
        # The host is still serving: the fault never crossed the wire.
        assert "booted" in host.query_status(host.gateway)
