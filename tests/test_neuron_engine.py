"""Tests for the vectorized CSR spike-propagation engine.

Covers the CSR compilation/round-trips, the vectorized ring-buffer
scatter, the packed SDRAM word codec, the vectorized STDP rule and —
most importantly — the equivalence suite: seeded networks must produce
identical spike trains under ``propagation="csr"`` and
``propagation="reference"`` on both the host simulator and the
on-machine runtime.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import (
    FixedProbabilityConnector,
    FromListConnector,
)
from repro.neuron.engine import (
    CSRMatrix,
    decode_packed_row,
    pack_synapse_words,
    unpack_synapse_words,
)
from repro.neuron.network import Network
from repro.neuron.population import Population, Projection, SpikeSourcePoisson
from repro.neuron.stdp import STDPMechanism
from repro.neuron.synapse import DeferredEventBuffer, Synapse, SynapticRow
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController


def random_rows(rng, n_pre=20, n_post=30, p=0.4):
    return FixedProbabilityConnector(
        p_connect=p, weight_range=(-2.0, 3.0),
        delay_range=(1, 16)).build(n_pre, n_post, rng)


class TestCSRMatrix:
    def test_from_rows_to_rows_round_trip(self, rng):
        rows = random_rows(rng)
        csr = CSRMatrix.from_rows(rows, 20, 30)
        recovered = csr.to_rows()
        for pre in range(20):
            assert recovered[pre] == list(rows.get(pre, []))

    def test_row_ptr_matches_row_lengths(self, rng):
        rows = random_rows(rng)
        csr = CSRMatrix.from_rows(rows, 20, 30)
        assert csr.n_synapses == sum(len(r) for r in rows.values())
        assert np.array_equal(csr.row_lengths(),
                              [len(rows.get(i, ())) for i in range(20)])

    def test_handles_sparse_row_keys(self, rng):
        rows = FromListConnector([(3, 1, 0.5, 2), (17, 0, -0.25, 9)]).build(
            20, 4, rng)
        csr = CSRMatrix.from_rows(rows, 20, 4)
        assert csr.n_synapses == 2
        assert csr.max_delay() == 9
        assert list(csr.pre_index) == [3, 17]

    def test_rejects_bad_row_keys_and_targets(self):
        with pytest.raises(IndexError):
            CSRMatrix.from_rows({25: [Synapse(0, 1.0)]}, 20, 4)
        with pytest.raises(ValueError):
            CSRMatrix.from_rows({0: [Synapse(9, 1.0)]}, 20, 4)

    def test_synapse_slots_preserve_reference_order(self, rng):
        rows = random_rows(rng)
        csr = CSRMatrix.from_rows(rows, 20, 30)
        spiking = np.array([2, 7, 13])
        slots = csr.synapse_slots(spiking)
        expected_targets = [s.target for pre in spiking
                            for s in rows.get(int(pre), ())]
        assert list(csr.targets[slots]) == expected_targets

    def test_submatrix_matches_manual_filter(self, rng):
        rows = random_rows(rng, n_pre=24, n_post=32)
        csr = CSRMatrix.from_rows(rows, 24, 32)
        block = csr.submatrix(8, 16, 10, 25)
        expected = {}
        for pre in range(8, 16):
            expected[pre - 8] = [Synapse(s.target - 10, s.weight, s.delay_ticks)
                                 for s in rows.get(pre, ())
                                 if 10 <= s.target < 25]
        assert block.to_rows() == expected

    def test_connector_build_csr_matches_build(self):
        connector = FixedProbabilityConnector(p_connect=0.4,
                                              weight_range=(-1.0, 1.0),
                                              delay_range=(1, 16))
        rows = connector.build(20, 30, np.random.default_rng(8))
        csr = connector.build_csr(20, 30, np.random.default_rng(8))
        assert csr.to_rows() == {pre: list(rows.get(pre, []))
                                 for pre in range(20)}

    def test_write_back_syncs_mutated_weights(self, rng):
        rows = random_rows(rng)
        csr = CSRMatrix.from_rows(rows, 20, 30)
        csr.weights *= 0.5
        csr.write_back(rows)
        recompiled = CSRMatrix.from_rows(rows, 20, 30)
        assert np.array_equal(recompiled.weights, csr.weights)


class TestPackedWordCodec:
    def test_pack_words_match_synapse_pack(self, rng):
        rows = random_rows(rng, n_pre=10, n_post=50)
        csr = CSRMatrix.from_rows(rows, 10, 50)
        words = pack_synapse_words(csr.targets, csr.weights, csr.delay_ticks)
        expected = [s.pack() for pre in range(10)
                    for s in rows.get(pre, ())]
        assert [int(w) for w in words] == expected

    def test_unpack_words_match_synapse_unpack(self, rng):
        synapses = [Synapse(i * 7 % 100, w, d)
                    for i, (w, d) in enumerate(zip(
                        np.linspace(-120.0, 120.0, 40), range(1, 17)))]
        words = [s.pack() for s in synapses]
        targets, weights, delays = unpack_synapse_words(words)
        for i, word in enumerate(words):
            reference = Synapse.unpack(word)
            assert targets[i] == reference.target
            assert weights[i] == reference.weight
            assert delays[i] == reference.delay_ticks

    def test_pack_rejects_oversized_target(self):
        with pytest.raises(ValueError):
            pack_synapse_words(np.array([5000]), np.array([1.0]),
                               np.array([1]))

    def test_pack_rejects_negative_target(self):
        with pytest.raises(ValueError):
            pack_synapse_words(np.array([-1]), np.array([1.0]), np.array([1]))

    def test_add_events_invalid_batch_leaves_buffer_untouched(self):
        buffer = DeferredEventBuffer(8)
        with pytest.raises(IndexError):
            buffer.add_events(np.array([0, 1, 8]), np.ones(3),
                              np.array([1, 1, 1]))
        assert buffer.pending_charge() == 0.0
        assert buffer.events_deferred == 0

    def test_pack_rejects_out_of_range_delays(self):
        with pytest.raises(ValueError):
            pack_synapse_words(np.array([0]), np.array([1.0]), np.array([0]))
        with pytest.raises(ValueError):
            pack_synapse_words(np.array([0]), np.array([1.0]), np.array([17]))

    def test_csr_matrix_rejects_out_of_range_delays(self):
        with pytest.raises(ValueError):
            CSRMatrix(1, 4, np.array([0, 1]), np.array([0]),
                      np.array([1.0]), np.array([0]))

    def test_pack_rows_matches_synaptic_row_pack(self, rng):
        rows = random_rows(rng, n_pre=8, n_post=12)
        csr = CSRMatrix.from_rows(rows, 8, 12)
        packed = csr.pack_rows()
        for pre in range(8):
            assert packed[pre] == SynapticRow(pre, rows.get(pre, ())).pack()

    def test_packed_rows_round_trip_with_padding(self, rng):
        rows = random_rows(rng, n_pre=8, n_post=12)
        csr = CSRMatrix.from_rows(rows, 8, 12)
        packed = [words + [0, 0] for words in csr.pack_rows()]  # SDRAM pad
        recovered = CSRMatrix.from_packed_rows(packed, 12)
        assert np.array_equal(recovered.targets, csr.targets)
        assert np.array_equal(recovered.delay_ticks, csr.delay_ticks)
        # Weights go through fixed-point quantisation.
        assert np.all(np.abs(recovered.weights - csr.weights) <= 1.0 / 16 + 1e-9)

    def test_decode_packed_row_validation(self):
        with pytest.raises(ValueError):
            decode_packed_row([])
        with pytest.raises(ValueError):
            decode_packed_row([5, 0])


class TestVectorizedBufferScatter:
    def test_add_events_equals_scalar_adds(self, rng):
        targets = rng.integers(0, 10, size=200)
        weights = rng.uniform(-2.0, 2.0, size=200)
        delays = rng.integers(1, 17, size=200)
        vector = DeferredEventBuffer(10)
        scalar = DeferredEventBuffer(10)
        vector.add_events(targets, weights, delays)
        for t, w, d in zip(targets, weights, delays):
            scalar.add_input(int(t), float(w), int(d))
        for _ in range(17):
            assert np.array_equal(vector.drain(), scalar.drain())
        assert vector.events_deferred == scalar.events_deferred == 200

    def test_add_events_validation(self):
        buffer = DeferredEventBuffer(4)
        with pytest.raises(IndexError):
            buffer.add_events(np.array([4]), np.array([1.0]), np.array([1]))
        with pytest.raises(ValueError):
            buffer.add_events(np.array([0]), np.array([1.0]), np.array([0]))
        buffer.add_events(np.array([], dtype=int), np.array([]),
                          np.array([], dtype=int))
        assert buffer.events_deferred == 0

    def test_add_events_result_independent_of_batch_size(self):
        # 33 events take the vectorized path, 32 the scalar one; a cell
        # saturating mid-batch must land identically either way.
        from repro.neuron.synapse import WEIGHT_SATURATION_NA

        def fill(n_events):
            buffer = DeferredEventBuffer(4)
            targets = np.zeros(n_events, dtype=int)
            weights = np.full(n_events, 2.0 * WEIGHT_SATURATION_NA / 3.0)
            weights[-1] = -1.0
            buffer.add_events(targets, weights, np.ones(n_events, dtype=int))
            buffer.drain()
            return buffer.drain()[0], buffer.saturations

        small_value, small_sats = fill(32)
        large_value, large_sats = fill(33)
        expected = WEIGHT_SATURATION_NA  # sum exceeds the limit, clamped once
        assert small_value == pytest.approx(expected)
        assert large_value == pytest.approx(expected)
        assert small_sats == large_sats == 1

    def test_dense_and_sparse_clamp_paths_agree(self):
        # Above/below the events-vs-population threshold the clamp uses a
        # row scan vs unique-cell dedup; results must match.
        from repro.neuron.synapse import WEIGHT_SATURATION_NA

        def fill(n_neurons):
            buffer = DeferredEventBuffer(n_neurons)
            n_events = 64
            targets = np.arange(n_events) % 2
            weights = np.full(n_events, WEIGHT_SATURATION_NA / 8.0)
            buffer.add_events(targets, weights,
                              np.ones(n_events, dtype=int))
            buffer.drain()
            drained = buffer.drain()
            return drained[0], drained[1], buffer.saturations

        sparse = fill(1000)   # 64 events < 1000 neurons -> unique-cell path
        dense = fill(4)       # 64 events >= 4 neurons -> row-scan path
        assert sparse[:2] == dense[:2]
        assert sparse[2] == dense[2] == 2

    def test_scatter_equals_object_loop(self, rng):
        rows = random_rows(rng, n_pre=30, n_post=25)
        csr = CSRMatrix.from_rows(rows, 30, 25)
        spiking = np.flatnonzero(rng.random(30) < 0.5)
        vector = DeferredEventBuffer(25)
        scalar = DeferredEventBuffer(25)
        scattered = csr.scatter(spiking, vector)
        for pre in spiking:
            for synapse in rows.get(int(pre), ()):
                scalar.add_synapse(synapse)
        assert scattered == scalar.events_deferred
        for _ in range(17):
            assert np.array_equal(vector.drain(), scalar.drain())


class TestHostEquivalence:
    """propagation="csr" must replay propagation="reference" exactly."""

    @staticmethod
    def build_network(plastic=False):
        network = Network(seed=7)
        stimulus = SpikeSourcePoisson(60, rate_hz=90.0, label="stim")
        excitatory = Population(120, "lif", label="exc")
        inhibitory = Population(40, "izhikevich", label="inh")
        excitatory.record(spikes=True, voltages=True)
        inhibitory.record(spikes=True)
        plasticity = STDPMechanism(60, 120) if plastic else None
        network.connect(stimulus, excitatory,
                        FixedProbabilityConnector(0.25, weight=1.2,
                                                  delay_range=(1, 8)),
                        plasticity=plasticity)
        network.connect(excitatory, inhibitory,
                        FixedProbabilityConnector(0.2, weight=0.8,
                                                  delay_range=(1, 4)))
        network.connect(inhibitory, excitatory,
                        FixedProbabilityConnector(0.3, weight=-0.9))
        network.connect(excitatory, excitatory,
                        FixedProbabilityConnector(0.05, weight=0.3,
                                                  weight_range=(0.1, 0.5)))
        return network

    def test_spike_trains_identical(self):
        reference = self.build_network().run(250.0, propagation="reference")
        fast = self.build_network().run(250.0, propagation="csr")
        assert reference.total_spikes() > 0
        assert reference.spikes == fast.spikes
        for label in reference.spike_counts:
            assert np.array_equal(reference.spike_counts[label],
                                  fast.spike_counts[label])

    def test_membrane_voltages_bit_identical(self):
        reference = self.build_network().run(150.0, propagation="reference")
        fast = self.build_network().run(150.0, propagation="csr")
        assert np.array_equal(reference.voltages["exc"],
                              fast.voltages["exc"])

    def test_stdp_learning_identical(self):
        def learned_weights(propagation):
            network = self.build_network(plastic=True)
            network.run(250.0, propagation=propagation)
            plastic = network.projections[0]
            rows = plastic.build_rows(np.random.default_rng(7))
            return ([s.weight for row in rows.values() for s in row],
                    plastic.plasticity)

        ref_weights, ref_mech = learned_weights("reference")
        csr_weights, csr_mech = learned_weights("csr")
        assert any(abs(w - 1.2) > 1e-9 for w in ref_weights)
        assert ref_weights == csr_weights
        assert ref_mech.potentiation_events == csr_mech.potentiation_events
        assert ref_mech.depression_events == csr_mech.depression_events
        assert ref_mech.rows_modified == csr_mech.rows_modified

    def test_invalid_propagation_mode_rejected(self):
        with pytest.raises(ValueError):
            Network(seed=1).run(10.0, propagation="warp")


class TestUpdateCSREquivalence:
    def test_update_csr_matches_update(self, rng):
        rows_ref = random_rows(rng, n_pre=15, n_post=15, p=0.6)
        csr = CSRMatrix.from_rows(rows_ref, 15, 15)
        reference = STDPMechanism(15, 15)
        vectorized = STDPMechanism(15, 15)
        spike_rng = np.random.default_rng(3)
        for tick in range(60):
            pre = spike_rng.random(15) < 0.2
            post = spike_rng.random(15) < 0.2
            reference.update(rows_ref, pre, post, float(tick))
            vectorized.update_csr(csr, pre, post, float(tick))
        flattened = [s.weight for i in range(15)
                     for s in rows_ref.get(i, ())]
        assert flattened == list(csr.weights)
        assert reference.potentiation_events == vectorized.potentiation_events
        assert reference.depression_events == vectorized.depression_events
        assert reference.rows_modified == vectorized.rows_modified


class TestOnMachineEquivalence:
    @staticmethod
    def run_application(propagation):
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=6))
        BootController(machine, seed=1).boot()
        network = Network(seed=21)
        stimulus = SpikeSourcePoisson(40, rate_hz=80.0, label="stim")
        target = Population(80, "lif", label="tgt")
        target.record(spikes=True)
        network.connect(stimulus, target,
                        FixedProbabilityConnector(0.3, weight=1.5,
                                                  delay_range=(1, 6)))
        network.connect(target, target,
                        FixedProbabilityConnector(0.05, weight=0.4))
        application = NeuralApplication(machine, network,
                                        max_neurons_per_core=16, seed=21,
                                        propagation=propagation)
        return application.run(120.0)

    def test_on_machine_csr_identical_to_reference(self):
        reference = self.run_application("reference")
        fast = self.run_application("csr")
        assert reference.total_spikes() > 0
        assert reference.spikes == fast.spikes
        assert reference.packets_sent == fast.packets_sent
        for label in reference.spike_counts:
            assert np.array_equal(reference.spike_counts[label],
                                  fast.spike_counts[label])

    def test_invalid_propagation_mode_rejected(self):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=4))
        with pytest.raises(ValueError):
            NeuralApplication(machine, Network(seed=1), propagation="warp")


class TestSeedKeyedExpansionCache:
    """Regression tests for the cross-seed cache-poisoning bug."""

    @staticmethod
    def build_projection():
        pre = Population(30, label="cache-pre-%d" % id(object()))
        post = Population(30, label="cache-post-%d" % id(object()))
        return Projection(pre, post, FixedProbabilityConnector(0.3))

    def test_different_seeds_get_different_expansions(self):
        projection = self.build_projection()
        rows_a = projection.build_rows(np.random.default_rng(1), seed=1)
        rows_b = projection.build_rows(np.random.default_rng(2), seed=2)
        assert rows_a is not rows_b
        assert ({(p, s.target) for p, r in rows_a.items() for s in r}
                != {(p, s.target) for p, r in rows_b.items() for s in r})

    def test_same_seed_reuses_expansion(self):
        projection = self.build_projection()
        rows_a = projection.build_rows(np.random.default_rng(1), seed=1)
        rows_b = projection.build_rows(np.random.default_rng(1), seed=1)
        assert rows_a is rows_b

    def test_network_rerun_with_new_seed_rebuilds_connectivity(self):
        network = Network(seed=1)
        stimulus = SpikeSourcePoisson(30, rate_hz=100.0, label="cp-stim")
        target = Population(30, "lif", label="cp-tgt")
        projection = network.connect(stimulus, target,
                                     FixedProbabilityConnector(0.3,
                                                               weight=2.0))
        network.run(50.0, seed=1)
        rows_seed_1 = projection.build_rows(np.random.default_rng(1), seed=1)
        network.run(50.0, seed=2)
        rows_seed_2 = projection.build_rows(np.random.default_rng(2), seed=2)
        assert ({(p, s.target) for p, r in rows_seed_1.items() for s in r}
                != {(p, s.target) for p, r in rows_seed_2.items() for s in r})

    def test_seeded_runs_reproduce_after_interleaved_seed(self):
        def totals(seed):
            network = Network()
            stimulus = SpikeSourcePoisson(30, rate_hz=100.0,
                                          label="rep-stim-%d" % id(object()))
            target = Population(30, "lif",
                                label="rep-tgt-%d" % id(object()))
            network.connect(stimulus, target,
                            FixedProbabilityConnector(0.3, weight=2.0))
            return network, (lambda: network.run(80.0, seed=seed)
                             .total_spikes())

        network_a, run_a = totals(5)
        first = run_a()
        network_a.run(80.0, seed=6)   # would poison the old unkeyed cache
        assert run_a() == first

    def test_unseeded_network_shares_expansion_with_mapping_layer(self):
        # An unseeded Network must not end up with one expansion under
        # cache key None (host) and another under key 0 (mapping).
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=4))
        BootController(machine, seed=1).boot()
        network = Network()   # seed=None
        stimulus = SpikeSourcePoisson(10, rate_hz=50.0, label="us-stim")
        target = Population(20, "lif", label="us-tgt")
        network.connect(stimulus, target,
                        FixedProbabilityConnector(0.5, weight=1.0))
        application = NeuralApplication(machine, network,
                                        max_neurons_per_core=8)
        application.prepare()
        mapped_synapses = sum(runtime.synaptic_data.total_synapses
                              for runtime in application.core_runtimes)
        # n_synapses expands under the same (None) cache key, so it must
        # hit the mapping layer's expansion and count the same synapses.
        assert network.n_synapses() == mapped_synapses > 0

    def test_mapping_first_and_host_first_expansions_agree(self):
        # Whatever layer expands first, the same seed must register the
        # same connectivity — even with several projections whose
        # expansion order differs between the layers.
        def build_network():
            network = Network(seed=13)
            a = Population(12, "lif", label="ord-a")
            b = Population(12, "lif", label="ord-b")
            c = SpikeSourcePoisson(12, rate_hz=50.0, label="ord-c")
            network.connect(a, b, FixedProbabilityConnector(0.4, weight=0.5))
            network.connect(c, b, FixedProbabilityConnector(0.4, weight=0.5))
            network.connect(b, a, FixedProbabilityConnector(0.4, weight=0.5))
            return network

        def synapse_sets(network):
            rng = np.random.default_rng(0)   # cache hit; rng unused
            return [{(pre, s.target) for pre, row in
                     projection.build_rows(rng, seed=13).items()
                     for s in row}
                    for projection in network.projections]

        mapped = build_network()
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=6))
        BootController(machine, seed=1).boot()
        NeuralApplication(machine, mapped, max_neurons_per_core=6,
                          seed=13).prepare()

        simulated = build_network()
        simulated.run(10.0)
        assert synapse_sets(mapped) == synapse_sets(simulated)

    def test_compile_csr_cached_per_seed(self):
        projection = self.build_projection()
        csr_a = projection.compile_csr(np.random.default_rng(1), seed=1)
        csr_b = projection.compile_csr(np.random.default_rng(1), seed=1)
        csr_c = projection.compile_csr(np.random.default_rng(2), seed=2)
        assert csr_a is csr_b
        assert csr_a is not csr_c

    def test_refresh_invalidates_compiled_csr(self):
        projection = self.build_projection()
        rng = np.random.default_rng(1)
        csr_a = projection.compile_csr(rng, seed=1)
        projection.build_rows(rng, refresh=True, seed=1)
        csr_b = projection.compile_csr(rng, seed=1)
        assert csr_a is not csr_b

    def test_unseeded_refresh_does_not_clobber_seeded_entry(self):
        projection = self.build_projection()
        rows_seeded = projection.build_rows(np.random.default_rng(1), seed=1)
        projection.build_rows(np.random.default_rng(99), refresh=True)
        assert projection.build_rows(np.random.default_rng(1),
                                     seed=1) is rows_seeded

    def test_reference_stdp_run_invalidates_compiled_csr(self):
        # A reference-mode plastic run mutates the cached rows in place;
        # a later CSR compile must see the learned weights, not a stale
        # pre-run compilation.
        network = Network(seed=9)
        stimulus = SpikeSourcePoisson(20, rate_hz=80.0, label="inv-stim")
        target = Population(20, "lif", label="inv-tgt")
        projection = network.connect(stimulus, target,
                                     FixedProbabilityConnector(0.5,
                                                               weight=3.0),
                                     plasticity=STDPMechanism(20, 20))
        stale = projection.compile_csr(np.random.default_rng(9), seed=9)
        network.run(300.0, propagation="reference")
        fresh = projection.compile_csr(np.random.default_rng(9), seed=9)
        assert fresh is not stale
        rows = projection.build_rows(np.random.default_rng(9), seed=9)
        assert [s.weight for i in sorted(rows) for s in rows[i]] == \
            list(fresh.weights)

