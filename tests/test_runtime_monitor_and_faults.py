"""Tests for emergency routing under link failure, the Monitor Processor's
mitigation actions and the fault-injection helpers (Sections 2.2, 5.3)."""

from __future__ import annotations

import pytest

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.packets import MulticastPacket
from repro.core.processor import ProcessorState
from repro.fault.injection import FaultCampaign, FaultInjector
from repro.router.multicast import RouterConfig
from repro.runtime.monitor import MonitorService


def straight_line_machine(length=4):
    """A 1 x ``length`` strip with a single east-bound route installed.

    A route for key 42 is installed from chip (0,0) east through every chip
    to the last one, which delivers to core 1.  This is the Figure 8
    scenario: origin, pass-through default nodes, target.
    """
    machine = SpiNNakerMachine(MachineConfig(
        width=length, height=3, cores_per_chip=4,
        router_config=RouterConfig(emergency_wait_us=0.5, drop_wait_us=1.0,
                                   retries_per_wait=2)))
    for x in range(length - 1):
        machine.chips[ChipCoordinate(x, 0)].router.table.add(
            key=42, mask=0xFFFFFFFF, links=[Direction.EAST])
    target = machine.chips[ChipCoordinate(length - 1, 0)]
    target.router.table.add(key=42, mask=0xFFFFFFFF, cores=[1])
    core = target.cores[1]
    core.run_self_test(True)
    core.start_application()
    received = []
    core.on_packet(lambda packet: received.append(packet.key))
    return machine, received


class TestEmergencyRoutingOnMachine:
    def test_packets_delivered_without_failure(self):
        machine, received = straight_line_machine()
        for _ in range(10):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        assert len(received) == 10
        assert machine.total_emergency_invocations() == 0

    def test_failed_link_bypassed_by_emergency_routing(self):
        machine, received = straight_line_machine()
        machine.fail_link(ChipCoordinate(1, 0), Direction.EAST)
        for _ in range(10):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        # Every packet still arrives, via the triangle around the dead link.
        assert len(received) == 10
        assert machine.total_emergency_invocations() >= 10
        assert machine.total_dropped_packets() == 0

    def test_emergency_routing_disabled_loses_packets(self):
        machine = SpiNNakerMachine(MachineConfig(
            width=4, height=3, cores_per_chip=4,
            router_config=RouterConfig(emergency_routing_enabled=False,
                                       emergency_wait_us=0.5,
                                       retries_per_wait=1)))
        for x in range(3):
            machine.chips[ChipCoordinate(x, 0)].router.table.add(
                key=42, mask=0xFFFFFFFF, links=[Direction.EAST])
        target = machine.chips[ChipCoordinate(3, 0)]
        target.router.table.add(key=42, mask=0xFFFFFFFF, cores=[1])
        received = []
        target.cores[1].run_self_test(True)
        target.cores[1].start_application()
        target.cores[1].on_packet(lambda packet: received.append(packet.key))

        machine.fail_link(ChipCoordinate(1, 0), Direction.EAST)
        for _ in range(10):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        assert len(received) == 0
        assert machine.total_dropped_packets() == 10

    def test_dropped_packets_reported_to_monitor(self):
        machine, received = straight_line_machine()
        # Fail both the direct link and its first emergency leg so that
        # even emergency routing cannot save the packets.
        blocked = ChipCoordinate(1, 0)
        machine.fail_link(blocked, Direction.EAST)
        first_leg, _ = Direction.EAST.emergency_pair()
        machine.fail_link(blocked, first_leg)
        machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        assert machine.total_dropped_packets() == 1
        mailbox = machine.chips[blocked].monitor_mailbox
        assert any(note["event"] == "packet-dropped" for note in mailbox)


class TestMonitorService:
    def test_permanent_reroute_after_threshold(self):
        machine, received = straight_line_machine()
        machine.fail_link(ChipCoordinate(1, 0), Direction.EAST)
        monitor = MonitorService(machine, emergency_threshold=3)
        for _ in range(5):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        report = monitor.process_mailboxes()
        assert report.emergency_notifications >= 3
        assert report.links_rerouted == 1
        # After the permanent reroute, traffic no longer invokes emergency
        # routing at the failed chip.
        before = machine.chips[ChipCoordinate(1, 0)].router.stats.emergency_invocations
        for _ in range(5):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        after = machine.chips[ChipCoordinate(1, 0)].router.stats.emergency_invocations
        assert after == before
        assert len(received) == 10

    def test_reroute_rewrites_only_affected_entries(self):
        machine, _ = straight_line_machine()
        chip = machine.chips[ChipCoordinate(1, 0)]
        chip.router.table.add(key=99, mask=0xFFFFFFFF, links=[Direction.NORTH])
        monitor = MonitorService(machine)
        rewritten = monitor.reroute_around_link(ChipCoordinate(1, 0),
                                                Direction.EAST)
        assert rewritten == 1
        unaffected = chip.router.table.lookup(99)
        assert unaffected.link_directions == frozenset([Direction.NORTH])
        affected = chip.router.table.lookup(42)
        first_leg, _second = Direction.EAST.emergency_pair()
        assert affected.link_directions == frozenset([first_leg])

    def test_dropped_packets_reissued(self):
        machine, received = straight_line_machine()
        blocked = ChipCoordinate(1, 0)
        machine.fail_link(blocked, Direction.EAST)
        first_leg, _ = Direction.EAST.emergency_pair()
        machine.fail_link(blocked, first_leg)
        machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        assert len(received) == 0
        # Repair the emergency leg, then let the monitor re-issue the
        # recovered packet (Section 5.3).
        machine.repair_link(blocked, first_leg)
        monitor = MonitorService(machine, emergency_threshold=100)
        report = monitor.process_mailboxes(reissue_dropped=True)
        machine.run()
        assert report.packets_reissued == 1
        assert len(received) == 1

    def test_disable_core_removes_deliveries(self):
        machine, received = straight_line_machine()
        target = ChipCoordinate(3, 0)
        monitor = MonitorService(machine)
        monitor.disable_core(target, 1)
        machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        assert received == []
        assert machine.chips[target].cores[1].state is ProcessorState.DISABLED
        entry = machine.chips[target].router.table.lookup(42)
        assert 1 not in entry.processor_ids

    def test_emergency_hotspots_reporting(self):
        machine, _ = straight_line_machine()
        machine.fail_link(ChipCoordinate(1, 0), Direction.EAST)
        monitor = MonitorService(machine, emergency_threshold=100)
        for _ in range(4):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=42))
        machine.run()
        monitor.process_mailboxes()
        hotspots = monitor.emergency_hotspots()
        assert hotspots
        assert hotspots[0][0] == ChipCoordinate(1, 0)
        assert hotspots[0][1] is Direction.EAST

    def test_invalid_threshold_rejected(self):
        machine, _ = straight_line_machine()
        with pytest.raises(ValueError):
            MonitorService(machine, emergency_threshold=0)


class TestFaultInjector:
    def test_fail_random_links_fraction(self, medium_machine):
        injector = FaultInjector(medium_machine, seed=1)
        failed = injector.fail_random_links(0.1)
        expected = round(0.1 * len(medium_machine.links))
        assert len(failed) == expected
        assert sum(link.failed for link in medium_machine.links.values()) >= expected

    def test_repair_all_links(self, medium_machine):
        injector = FaultInjector(medium_machine, seed=2)
        injector.fail_random_links(0.2)
        injector.repair_all_links()
        assert not any(link.failed for link in medium_machine.links.values())

    def test_fail_random_cores(self, medium_machine):
        injector = FaultInjector(medium_machine, seed=3)
        failed = injector.fail_random_cores(0.25)
        assert len(failed) == round(0.25 * medium_machine.n_cores)
        for coordinate, core_id in failed:
            assert medium_machine.chips[coordinate].cores[core_id].state \
                is ProcessorState.FAILED

    def test_neuron_failure_mask(self, medium_machine):
        injector = FaultInjector(medium_machine, seed=4)
        mask = injector.neuron_failure_mask(200, 0.1)
        assert sum(mask) == 20

    def test_fraction_validation(self, medium_machine):
        injector = FaultInjector(medium_machine)
        with pytest.raises(ValueError):
            injector.fail_random_links(2.0)
        with pytest.raises(ValueError):
            injector.fail_random_cores(-0.5)

    def test_fault_plan_counts(self, medium_machine):
        injector = FaultInjector(medium_machine, seed=5)
        injector.fail_random_links(0.05)
        injector.fail_random_cores(0.05)
        assert injector.applied.n_faults == (len(injector.applied.failed_links) +
                                             len(injector.applied.failed_cores))


class TestFaultCampaign:
    def test_campaign_runs_all_rates_and_trials(self):
        campaign = FaultCampaign(failure_rates=[0.0, 0.1], trials_per_rate=3)
        rows = campaign.run(lambda rate, trial, seed: {"value": rate * 10})
        assert len(rows) == 6
        assert {row["failure_rate"] for row in rows} == {0.0, 0.1}

    def test_summarise_averages_by_rate(self):
        campaign = FaultCampaign(failure_rates=[0.0, 0.5], trials_per_rate=2)
        rows = campaign.run(lambda rate, trial, seed: {"value": rate + trial})
        summary = dict(FaultCampaign.summarise(rows, "value"))
        assert summary[0.0] == pytest.approx(0.5)
        assert summary[0.5] == pytest.approx(1.0)

    def test_seeds_differ_across_trials(self):
        seeds = []
        campaign = FaultCampaign(failure_rates=[0.2], trials_per_rate=4)
        campaign.run(lambda rate, trial, seed: (seeds.append(seed), {"v": 0.0})[1])
        assert len(set(seeds)) == 4
