"""Unit tests for the delay-insensitive codes and the token channel (Sec 5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link.channel import ChannelState, TokenChannel
from repro.link.codes import (
    BITS_PER_SYMBOL,
    LinkPerformanceModel,
    three_of_six_rtz,
    two_of_seven_nrz,
)


class TestCodebooks:
    def test_three_of_six_has_sixteen_data_codewords(self):
        code = three_of_six_rtz()
        assert len(code.codebook) == 16
        assert all(len(word) == 3 for word in code.codebook.values())
        assert len(code.end_of_packet) == 3

    def test_two_of_seven_has_sixteen_data_codewords(self):
        code = two_of_seven_nrz()
        assert len(code.codebook) == 16
        assert all(len(word) == 2 for word in code.codebook.values())

    def test_codewords_are_unique(self):
        for code in (three_of_six_rtz(), two_of_seven_nrz()):
            words = list(code.codebook.values()) + [code.end_of_packet]
            assert len(set(words)) == len(words)

    def test_encode_decode_round_trip(self):
        for code in (three_of_six_rtz(), two_of_seven_nrz()):
            for symbol in range(16):
                assert code.decode(code.encode(symbol)) == symbol

    def test_invalid_symbol_rejected(self):
        with pytest.raises(ValueError):
            two_of_seven_nrz().encode(16)

    def test_non_codeword_detected(self):
        code = two_of_seven_nrz()
        assert not code.is_codeword(frozenset({0, 1, 2}))
        with pytest.raises(ValueError):
            code.decode(frozenset({0, 1, 2}))

    def test_encode_nibbles_appends_eop(self):
        code = two_of_seven_nrz()
        frames = code.encode_nibbles([1, 2, 3])
        assert len(frames) == 4
        assert frames[-1] == code.end_of_packet

    @given(st.integers(min_value=0, max_value=15))
    @settings(max_examples=16, deadline=None)
    def test_every_symbol_has_constant_weight(self, symbol):
        rtz = three_of_six_rtz()
        nrz = two_of_seven_nrz()
        assert len(rtz.encode(symbol)) == 3
        assert len(nrz.encode(symbol)) == 2


class TestTransitionCounts:
    """The exact numbers quoted in Section 5.1."""

    def test_nrz_uses_three_transitions_per_symbol(self):
        assert two_of_seven_nrz().transitions_per_symbol() == 3

    def test_rtz_uses_eight_transitions_per_symbol(self):
        assert three_of_six_rtz().transitions_per_symbol() == 8

    def test_nrz_energy_less_than_half_of_rtz(self):
        model = LinkPerformanceModel()
        ratio = (model.energy_per_symbol_pj(two_of_seven_nrz()) /
                 model.energy_per_symbol_pj(three_of_six_rtz()))
        assert ratio < 0.5

    def test_nrz_throughput_twice_rtz(self):
        model = LinkPerformanceModel()
        ratio = (model.throughput_mbit_per_s(two_of_seven_nrz()) /
                 model.throughput_mbit_per_s(three_of_six_rtz()))
        assert ratio == pytest.approx(2.0)

    def test_comparison_summary(self):
        summary = LinkPerformanceModel().comparison()
        assert summary["nrz_transitions_per_symbol"] == 3
        assert summary["rtz_transitions_per_symbol"] == 8
        assert summary["throughput_ratio_nrz_over_rtz"] == pytest.approx(2.0)
        assert summary["energy_ratio_nrz_over_rtz"] == pytest.approx(3.0 / 8.0)

    def test_packet_transfer_time_includes_eop(self):
        model = LinkPerformanceModel(wire_delay_ns=2.0)
        nrz = two_of_seven_nrz()
        expected_symbols = 40 // BITS_PER_SYMBOL + 1
        assert model.packet_transfer_time_ns(nrz, 40) == pytest.approx(
            expected_symbols * model.symbol_period_ns(nrz))


class TestTokenChannel:
    def test_normal_operation_transfers_symbols(self):
        channel = TokenChannel()
        moved = channel.run(10)
        assert moved == 10
        assert channel.state is ChannelState.RUNNING
        assert channel.total_tokens == 1

    def test_reset_without_injection_can_deadlock(self):
        channel = TokenChannel()
        # The transmitter holds the token at start; resetting it without
        # re-injecting destroys the only token.
        channel.reset_end("transmitter", inject_token_on_exit=False)
        assert channel.deadlocked
        assert channel.run(10) == 0

    def test_reset_with_injection_keeps_channel_alive(self):
        channel = TokenChannel()
        channel.reset_end("transmitter", inject_token_on_exit=True)
        assert not channel.deadlocked
        assert channel.run(5) == 5

    def test_double_reset_creates_then_absorbs_second_token(self):
        channel = TokenChannel()
        channel.reset_both()
        assert channel.total_tokens == 2
        assert channel.state is ChannelState.ABSORBING
        channel.run(3)
        assert channel.total_tokens == 1
        assert channel.tokens_absorbed >= 1
        assert channel.state is ChannelState.RUNNING

    def test_repeated_double_resets_never_accumulate_tokens(self):
        channel = TokenChannel()
        for _ in range(20):
            channel.reset_both()
            channel.run(4)
            assert channel.total_tokens == 1

    def test_reset_storm_with_injection_never_deadlocks(self):
        stats = TokenChannel.reset_storm(300, inject_token_on_exit=True, seed=5)
        assert stats["deadlocks"] == 0.0
        assert stats["symbols_transferred"] > 0

    def test_reset_storm_without_injection_deadlocks_often(self):
        stats = TokenChannel.reset_storm(300, inject_token_on_exit=False, seed=5)
        assert stats["deadlock_fraction"] > 0.3

    def test_invalid_end_name_rejected(self):
        with pytest.raises(ValueError):
            TokenChannel().reset_end("middle")

    @given(st.lists(st.sampled_from(["transmitter", "receiver", "both"]),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_spinnaker_reset_protocol_always_recovers(self, resets):
        # Property: with token injection on reset exit (the SpiNNaker
        # design), any sequence of resets leaves the channel running with
        # exactly one token after a few cycles.
        channel = TokenChannel()
        for choice in resets:
            if choice == "both":
                channel.reset_both()
            else:
                channel.reset_end(choice)
            channel.run(3)
        assert not channel.deadlocked
        assert channel.total_tokens == 1
