"""Tests for the HTTP/JSON allocation service (repro.service).

Every test here talks to a *live* :class:`AllocationService` over
loopback TCP — the full stack: handler threads, the runtime's
wall-clock bridge, the admission gate, and the sessionful client.
"""

# checks: disable=clock-discipline -- these tests drive the service from
# the wall-clock side, exactly as an external client would: deadline
# loops here must read the same real clock the runtime bridges from.

from __future__ import annotations

import http.client
import json
import threading
import time

import pytest

from repro.service import (AllocationService, BackpressureConfig, BadRequest,
                           NoSuchJob, ServiceBusy, ServiceClient,
                           ServiceUnavailable)
from repro.service import api


@pytest.fixture
def service():
    instance = AllocationService.build(width=8, height=8).start()
    yield instance
    instance.stop()


@pytest.fixture
def client(service):
    instance = ServiceClient(service.url, tenant="alice")
    yield instance
    instance.close()


def raw_request(service, method, path, body=b"",
                headers=None):
    """One bare HTTP exchange, bypassing the client's JSON plumbing."""
    connection = http.client.HTTPConnection("127.0.0.1", service.port,
                                            timeout=10.0)
    try:
        connection.request(method, path, body=body,
                           headers=headers or {})
        response = connection.getresponse()
        payload = json.loads(response.read().decode("utf-8"))
        return response.status, payload, response.getheader("Retry-After")
    finally:
        connection.close()


# ----------------------------------------------------------------------
# The happy path
# ----------------------------------------------------------------------
class TestLifecycle:
    def test_create_wait_keepalive_release_round_trip(self, client):
        created = client.create_job(2, 2, keepalive_ms=2000.0)
        job_id = int(created["job_id"])
        assert created["state"] in ("queued", "powering")
        deadline = time.monotonic() + 10.0
        while client.status(job_id)["state"] != "ready":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        refreshed = client.keepalive(job_id)
        assert refreshed["alive"] and refreshed["state"] == "ready"
        assert refreshed["rect"]["width"] == 2
        released = client.release(job_id)
        assert released["released"] and released["state"] == "freed"

    def test_session_heartbeats_and_releases_on_exit(self, client):
        with client.session(2, 2, keepalive_ms=120.0) as session:
            ready = session.wait_ready(timeout_s=10.0)
            assert ready["state"] == "ready"
            # Hold well past the keepalive interval: only the heartbeat
            # thread keeps the lease alive.
            time.sleep(0.5)
            assert client.status(session.job_id)["state"] == "ready"
            assert session.heartbeats_sent > 0
        assert client.status(session.job_id)["state"] == "freed"

    def test_list_machine_and_metrics_endpoints(self, client):
        with client.session(2, 2) as session:
            session.wait_ready(timeout_s=10.0)
            listed = client.list_jobs(tenant="alice", state="ready")
            assert listed["count"] == 1
            machine = client.machine()
            assert machine["width"] == 8 and machine["leased_chips"] == 4.0
        metrics = client.metrics()
        assert metrics["requests"]["create"]["count"] == 1.0
        assert metrics["runtime"]["uptime_s"] > 0.0
        assert metrics["scheduler"]["scheduled"] == 1.0


# ----------------------------------------------------------------------
# Error surface: typed codes, no 500s
# ----------------------------------------------------------------------
class TestErrorSurface:
    def test_malformed_json_is_a_typed_400(self, service):
        status, payload, _retry = raw_request(
            service, "POST", "/v1/jobs", body=b"{not json",
            headers={"Content-Length": "9"})
        assert status == 400
        assert payload["code"] == api.CODE_BAD_REQUEST

    def test_missing_and_mistyped_fields_are_400s(self, client):
        status, payload, _retry = client.request(
            "POST", "/v1/jobs", {"tenant": "", "width": 2, "height": 2})
        assert status == 400 and payload["code"] == api.CODE_BAD_REQUEST
        status, payload, _retry = client.request(
            "POST", "/v1/jobs",
            {"tenant": "alice", "width": True, "height": 2})
        assert status == 400
        assert payload["code"] == api.CODE_BAD_REQUEST
        status, payload, _retry = client.request(
            "POST", "/v1/jobs", {"tenant": "alice", "width": 2})
        assert status == 400 and "height" in payload["error"]

    def test_oversized_jobs_and_bad_ids_are_400s(self, client):
        with pytest.raises(BadRequest):
            client.create_job(9, 9)      # exceeds the 8x8 machine
        status, payload, _retry = client.request("GET", "/v1/jobs/xyz")
        assert status == 400 and payload["code"] == api.CODE_BAD_REQUEST

    def test_unknown_versions_paths_and_methods(self, client):
        status, payload, _retry = client.request("GET", "/v2/jobs")
        assert status == 404 and payload["code"] == api.CODE_NOT_FOUND
        status, payload, _retry = client.request("GET", "/v1/nonsense")
        assert status == 404 and payload["code"] == api.CODE_NOT_FOUND
        status, payload, _retry = client.request("DELETE", "/v1/machine")
        assert status == 405
        assert payload["code"] == api.CODE_METHOD_NOT_ALLOWED

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(NoSuchJob):
            client.status(999)
        with pytest.raises(NoSuchJob):
            client.release(999)

    def test_nothing_in_this_file_produced_a_500(self, service, client):
        client.request("GET", "/v1/jobs")
        assert service.metrics.status_total(500, 599) == 0


# ----------------------------------------------------------------------
# Backpressure: 429 + Retry-After, never a 500
# ----------------------------------------------------------------------
class TestBackpressure:
    def test_quota_exhaustion_is_429_with_retry_after(self, client):
        codes = []
        retry_after = None
        for _ in range(20):
            try:
                created = client.create_job(1, 1)
                client.release(int(created["job_id"]))
                codes.append(201)
            except ServiceBusy as busy:
                codes.append(busy.status)
                retry_after = busy.retry_after_s
        assert 429 in codes and 500 not in codes
        assert retry_after is not None and retry_after > 0

    def test_queue_overload_sheds_with_429(self):
        service = AllocationService.build(
            width=2, height=2,
            backpressure=BackpressureConfig(max_queue_depth=1)).start()
        try:
            clients = [ServiceClient(service.url, tenant="t%d" % index)
                       for index in range(3)]
            try:
                # First job leases the whole machine; the second queues;
                # the third must be shed, not queued without bound.
                clients[0].create_job(2, 2)
                clients[1].create_job(2, 2)
                with pytest.raises(ServiceBusy) as excinfo:
                    clients[2].create_job(2, 2)
                assert excinfo.value.code == api.CODE_QUEUE_OVERLOADED
                assert excinfo.value.retry_after_s is not None
            finally:
                for instance in clients:
                    instance.close()
            assert service.metrics.status_total(500, 599) == 0
        finally:
            service.stop()


# ----------------------------------------------------------------------
# Keepalive expiry: the monotonic clock, evaluated in one place
# ----------------------------------------------------------------------
class TestExpiry:
    def test_a_silent_job_expires_and_is_never_ready_again(self, client):
        created = client.create_job(2, 2, keepalive_ms=100.0)
        job_id = int(created["job_id"])
        observed = []
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            state = client.status(job_id)["state"]
            observed.append(state)
            if state == "expired":
                break
            time.sleep(0.02)
        assert observed[-1] == "expired"
        # Once past its lease, the job is never observed READY again —
        # expiry is evaluated against the monotonic clock before every
        # read, not lazily at some later sweep.
        assert "ready" not in observed[observed.index("expired"):]
        for _ in range(5):
            assert client.status(job_id)["state"] == "expired"
        refreshed = client.keepalive(job_id)
        assert refreshed["alive"] is False

    def test_the_reaper_expires_leases_without_any_requests(self, service):
        client = ServiceClient(service.url, tenant="alice")
        try:
            created = client.create_job(2, 2, keepalive_ms=50.0)
            job_id = int(created["job_id"])
            # No status polling: only the reaper thread can expire it.
            time.sleep(0.5)
            with service.runtime.lock:
                job = service.scheduler.job(job_id)
                assert job.state.value == "expired"
                assert service.scheduler.partitioner.leased_area == 0
        finally:
            client.close()


# ----------------------------------------------------------------------
# Graceful shutdown
# ----------------------------------------------------------------------
class TestShutdown:
    def test_draining_refuses_with_503_and_retry_after(self, service):
        service.runtime.drain(timeout_s=0.1)
        impatient = ServiceClient(service.url, tenant="alice",
                                  max_attempts=1)
        try:
            with pytest.raises(ServiceUnavailable):
                impatient.create_job(1, 1)
        finally:
            impatient.close()
        status, payload, retry_after = raw_request(service, "GET",
                                                   "/v1/machine")
        assert status == 503
        assert payload["code"] == api.CODE_DRAINING
        assert retry_after is not None and int(retry_after) >= 1
        service.runtime.resume()

    def test_client_retries_through_a_drain_window(self, service):
        service.runtime.drain(timeout_s=0.1)
        timer = threading.Timer(0.15, service.runtime.resume)
        timer.start()
        patient = ServiceClient(service.url, tenant="alice",
                                max_attempts=6, backoff_s=0.05)
        try:
            created = patient.create_job(1, 1)
            assert created["state"] in ("queued", "powering")
            assert patient.retries > 0
        finally:
            timer.cancel()
            patient.close()

    def test_stop_drains_and_releases_every_lease(self):
        service = AllocationService.build(width=8, height=8).start()
        client = ServiceClient(service.url, tenant="alice")
        try:
            for _ in range(3):
                client.create_job(2, 2, keepalive_ms=60000.0)
        finally:
            client.close()
        assert service.stop() is True
        assert service.scheduler.partitioner.leased_area == 0
        assert service.server.host.allocation_server is None

    def test_stop_is_idempotent(self, service):
        assert service.stop() is True
        assert service.stop() is True
