"""Tests for :mod:`repro.profile` — the hierarchical stage profiler.

Covers the contract every instrumented subsystem relies on: nesting and
self-time arithmetic, the near-free disabled path, thread-safety of
concurrent stage entry, the picklable snapshot/merge wire form the
cluster runner ships over its worker pipes, and the ``flatten()`` round
trip through ``benchmarks/reporting.emit_json``.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
import threading
import time

import pytest

from repro import profile
from repro.cluster import ClusterApplication
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.profile import ProfileRegistry, perf_now, sanitise
from repro.runtime.boot import BootController

# The bench-side reporting module is not a package import; reach it the
# way the standalone benches do.
sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "benchmarks"))
from reporting import attach_profile, emit_json  # noqa: E402


# ----------------------------------------------------------------------
# Nesting and self-time arithmetic
# ----------------------------------------------------------------------
class TestNesting:
    def test_single_stage_records_calls_and_seconds(self):
        registry = ProfileRegistry(enabled=True)
        stage = registry.stage("tick")
        for _ in range(3):
            with stage:
                pass
        (record,) = registry.records()
        assert record.path == ("tick",)
        assert record.calls == 3
        assert record.cum_s >= 0.0
        assert record.self_s == pytest.approx(record.cum_s)

    def test_nested_stage_paths_root_to_leaf(self):
        registry = ProfileRegistry(enabled=True)
        with registry.stage("outer"):
            with registry.stage("inner"):
                pass
        paths = [record.path for record in registry.records()]
        assert paths == [("outer",), ("outer", "inner")]

    def test_parent_self_time_excludes_children(self):
        registry = ProfileRegistry(enabled=True)
        with registry.stage("outer"):
            began = perf_now()
            while perf_now() - began < 0.002:
                pass
            with registry.stage("inner"):
                began = perf_now()
                while perf_now() - began < 0.004:
                    pass
        by_name = {record.name: record for record in registry.records()}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner.cum_s >= 0.004
        assert outer.cum_s >= inner.cum_s
        # The defining identity: cum = self + profiled children.
        assert outer.cum_s == pytest.approx(outer.self_s + inner.cum_s)
        assert outer.self_s < outer.cum_s

    def test_elapsed_readable_after_the_with_block(self):
        registry = ProfileRegistry(enabled=True)
        with registry.stage("span") as frame:
            pass
        assert frame.elapsed_s >= 0.0
        (record,) = registry.records()
        assert record.cum_s == pytest.approx(frame.elapsed_s)

    def test_decorator_records_under_the_stage_name(self):
        registry = ProfileRegistry(enabled=True)

        @registry.stage("work")
        def work(x):
            return x + 1

        assert work.__profile_stage__ == "work"
        assert work(1) == 2
        assert work(2) == 3
        (record,) = registry.records()
        assert record.path == ("work",)
        assert record.calls == 2

    def test_reentered_stage_accumulates_per_path(self):
        registry = ProfileRegistry(enabled=True)
        tick = registry.stage("tick")
        phase = registry.stage("phase")
        for _ in range(5):
            with tick:
                with phase:
                    pass
        by_path = {record.path: record for record in registry.records()}
        assert by_path[("tick",)].calls == 5
        assert by_path[("tick", "phase")].calls == 5

    def test_stage_seconds_sums_leaf_names_across_paths(self):
        registry = ProfileRegistry(enabled=True)
        registry.add(("a", "shared"), 1.0)
        registry.add(("b", "shared"), 2.0)
        assert registry.stage_seconds()["shared"] == pytest.approx(3.0)


# ----------------------------------------------------------------------
# Disabled path
# ----------------------------------------------------------------------
class TestDisabledPath:
    def test_disabled_registry_records_nothing(self):
        registry = ProfileRegistry(enabled=False)
        with registry.stage("tick") as frame:
            pass
        assert frame.elapsed_s == 0.0
        assert len(registry) == 0

    def test_disabled_decorator_tail_calls(self):
        registry = ProfileRegistry(enabled=False)

        @registry.stage("work")
        def work():
            return 41

        assert work() == 41
        assert len(registry) == 0

    def test_enable_mid_stage_does_not_corrupt(self):
        # Entered while disabled, exited while enabled: the exit finds
        # no frame and must account nothing rather than crash.
        registry = ProfileRegistry(enabled=False)
        stage = registry.stage("tick")
        with stage:
            registry.enabled = True
        assert len(registry) == 0
        with stage:
            pass
        (record,) = registry.records()
        assert record.calls == 1

    def test_disabled_overhead_under_five_percent(self):
        # The acceptance bound: a tight loop over a disabled stage costs
        # < 5 % over the bare loop.  Both sides take their best of
        # several interleaved rounds to shed scheduler jitter.
        registry = ProfileRegistry(enabled=False)
        stage = registry.stage("tick")
        iterations = 400

        def bare():
            began = perf_now()
            for _ in range(iterations):
                sum(range(2000))
            return perf_now() - began

        def instrumented():
            began = perf_now()
            for _ in range(iterations):
                with stage:
                    sum(range(2000))
            return perf_now() - began

        bare_s, inst_s = [], []
        for _ in range(7):
            bare_s.append(bare())
            inst_s.append(instrumented())
        overhead = min(inst_s) / min(bare_s) - 1.0
        assert overhead < 0.05, "disabled-path overhead %.2f%%" % (
            100.0 * overhead)


# ----------------------------------------------------------------------
# Thread-safety
# ----------------------------------------------------------------------
class TestThreadSafety:
    def test_concurrent_stage_entry(self):
        registry = ProfileRegistry(enabled=True)
        outer = registry.stage("outer")
        inner = registry.stage("inner")
        rounds = 200
        errors = []

        def worker():
            try:
                for _ in range(rounds):
                    with outer:
                        with inner:
                            pass
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        by_path = {record.path: record for record in registry.records()}
        # Per-thread stacks are independent: every entry nested exactly
        # under its own thread's outer frame, none crossed threads.
        assert set(by_path) == {("outer",), ("outer", "inner")}
        assert by_path[("outer",)].calls == 8 * rounds
        assert by_path[("outer", "inner")].calls == 8 * rounds

    def test_concurrent_add(self):
        registry = ProfileRegistry(enabled=True)

        def worker():
            for _ in range(500):
                registry.add("stage", 0.001)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        (record,) = registry.records()
        assert record.calls == 2000
        assert record.cum_s == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Snapshot / merge (the worker-pipe wire form)
# ----------------------------------------------------------------------
class TestSnapshotMerge:
    def test_snapshot_is_picklable_and_merges_back(self):
        source = ProfileRegistry(enabled=True)
        with source.stage("compute"):
            pass
        source.add("exchange", 0.25, calls=4)
        wire = pickle.loads(pickle.dumps(source.snapshot()))

        target = ProfileRegistry(enabled=True)
        target.merge(wire)
        target.merge(source)            # a registry merges directly too
        by_path = {record.path: record for record in target.records()}
        assert by_path[("compute",)].calls == 2
        assert by_path[("exchange",)].calls == 8
        assert by_path[("exchange",)].cum_s == pytest.approx(0.5)

    def test_merge_across_the_cluster_pipe_protocol(self):
        # The real thing: a pooled cluster run ships each worker's
        # snapshot over its result pipe; the parent merges them and
        # keeps the report's per-worker stage shape.
        network = Network(seed=7)
        populations = []
        for pair in range(2):
            stimulus = SpikeSourcePoisson(64, rate_hz=60.0,
                                          label="p-stim-%d" % pair)
            population = Population(64, "lif", label="p-exc-%d" % pair)
            population.record(spikes=True)
            network.connect(stimulus, population,
                            FixedProbabilityConnector(0.3, weight=0.6,
                                                      delay_range=(1, 8)))
            populations.append(population)
        network.connect(populations[0], populations[1],
                        FixedProbabilityConnector(0.1, weight=0.2,
                                                  delay_range=(1, 8)))
        machine = SpiNNakerMachine(MachineConfig.multi_board(
            2, 1, board_width=4, board_height=3, cores_per_chip=4))
        BootController(machine, seed=1).boot()
        cluster = ClusterApplication(machine, network, seed=7,
                                     max_neurons_per_core=16,
                                     placement_strategy="round-robin",
                                     workers=2, profile=True)
        cluster.run(20.0)
        assert cluster.report.workers == 2   # really pooled, not serial

        seconds = cluster.registry.stage_seconds()
        for stage in ("compute", "serialize", "exchange", "barrier_wait"):
            assert seconds.get(stage, 0.0) > 0.0
        # The merged registry agrees with the report's per-worker view.
        assert cluster.report.stage_total("compute") == pytest.approx(
            seconds["compute"])
        flat = cluster.registry.flatten()
        assert flat["profile_compute_s"] == pytest.approx(
            seconds["compute"])
        assert flat["profile_compute_calls"] >= 1.0


# ----------------------------------------------------------------------
# flatten() and the emit_json round trip
# ----------------------------------------------------------------------
class TestFlatten:
    def test_sanitise(self):
        assert sanitise("Pass: Route/Compress") == "pass_route_compress"
        assert sanitise("compute") == "compute"

    def test_flatten_aggregates_by_leaf_name(self):
        registry = ProfileRegistry(enabled=True)
        registry.add(("run", "compute"), 1.0, calls=2, self_s=0.75)
        registry.add(("compute",), 0.5)
        flat = registry.flatten()
        assert flat["profile_compute_s"] == pytest.approx(1.5)
        assert flat["profile_compute_self_s"] == pytest.approx(1.25)
        assert flat["profile_compute_calls"] == 3.0
        # Aggregation is by *leaf* name: the ("run", "compute") path
        # contributes to compute, and no parent-only key is invented.
        assert "profile_run_s" not in flat

    def test_round_trip_through_emit_json(self, tmp_path):
        registry = ProfileRegistry(enabled=True)
        with registry.stage("tick"):
            registry.add("io", 0.125, calls=3)
        metrics = {"wall_s": 1.0}
        attach_profile(metrics, registry)
        path = emit_json("profiletest", metrics,
                         path=str(tmp_path / "BENCH_profiletest.json"))
        with open(path) as handle:
            payload = json.load(handle)
        assert payload["bench"] == "profiletest"
        emitted = payload["metrics"]
        assert emitted["wall_s"] == 1.0
        assert emitted["profile_io_s"] == pytest.approx(0.125)
        assert emitted["profile_io_calls"] == 3.0
        assert emitted["profile_tick_calls"] == 1.0
        for value in emitted.values():
            assert isinstance(value, float)

    def test_attach_profile_never_overwrites_bench_keys(self):
        registry = ProfileRegistry(enabled=True)
        registry.add("tick", 2.0)
        metrics = {"profile_tick_s": 9.0}
        attach_profile(metrics, registry)
        assert metrics["profile_tick_s"] == 9.0
        assert metrics["profile_tick_calls"] == 1.0

    def test_attach_profile_defaults_to_the_global_registry(self):
        profile.reset()
        profile.enable(False)
        metrics = {}
        attach_profile(metrics)
        assert metrics == {}          # disabled global: no keys at all
        profile.enable(True)
        try:
            profile.record_stage("tick", 0.5)
            attach_profile(metrics)
            assert metrics["profile_tick_s"] == pytest.approx(0.5)
        finally:
            profile.enable(False)
            profile.reset()


# ----------------------------------------------------------------------
# The process-global registry and its environment flag
# ----------------------------------------------------------------------
class TestGlobalRegistry:
    def test_env_flag_gates_a_fresh_registry(self, monkeypatch):
        monkeypatch.delenv(profile.ENV_FLAG, raising=False)
        assert not ProfileRegistry().enabled
        monkeypatch.setenv(profile.ENV_FLAG, "1")
        assert ProfileRegistry().enabled
        monkeypatch.setenv(profile.ENV_FLAG, "0")
        assert not ProfileRegistry().enabled

    def test_global_helpers_share_one_registry(self):
        profile.reset()
        profile.enable(True)
        try:
            with profile.profile_stage("tick"):
                pass
            profile.record_stage("io", 0.25)
            assert set(profile.flatten()) == {
                "profile_tick_s", "profile_tick_self_s",
                "profile_tick_calls", "profile_io_s",
                "profile_io_self_s", "profile_io_calls"}
            wire = profile.snapshot()
            profile.reset()
            assert profile.flatten() == {}
            profile.merge(wire)
            assert profile.flatten()["profile_io_s"] == pytest.approx(0.25)
        finally:
            profile.enable(False)
            profile.reset()

    def test_record_stage_noop_when_disabled(self):
        profile.reset()
        profile.enable(False)
        profile.record_stage("tick", 1.0)
        assert len(profile.get_registry()) == 0

    def test_perf_now_is_the_monotonic_performance_clock(self):
        assert perf_now is time.perf_counter
