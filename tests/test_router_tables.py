"""Unit tests for multicast routing tables and p2p tables."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import ChipCoordinate, Direction, TorusGeometry
from repro.router.p2p import P2PRoutingTable
from repro.router.routing_table import (
    MulticastRoutingTable,
    RoutingEntry,
    RoutingTableFullError,
)


class TestRoutingEntry:
    def test_entry_matches_masked_key(self):
        entry = RoutingEntry(key=0x1200, mask=0xFF00)
        assert entry.matches(0x1234)
        assert entry.matches(0x12FF)
        assert not entry.matches(0x1300)

    def test_key_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            RoutingEntry(key=0x12, mask=0x10)

    def test_key_and_mask_width_checked(self):
        with pytest.raises(ValueError):
            RoutingEntry(key=1 << 32, mask=0xFFFFFFFF)
        with pytest.raises(ValueError):
            RoutingEntry(key=0, mask=1 << 32)

    def test_span_counts_wildcards(self):
        assert RoutingEntry(key=0, mask=0xFFFFFFFF).span == 1
        assert RoutingEntry(key=0, mask=0xFFFFFF00).span == 256

    def test_same_route_comparison(self):
        first = RoutingEntry(key=0, mask=0xFFFFFFFF,
                             link_directions=frozenset([Direction.EAST]),
                             processor_ids=frozenset([1]))
        second = RoutingEntry(key=4, mask=0xFFFFFFFF,
                              link_directions=frozenset([Direction.EAST]),
                              processor_ids=frozenset([1]))
        third = RoutingEntry(key=4, mask=0xFFFFFFFF,
                             link_directions=frozenset([Direction.WEST]))
        assert first.same_route(second)
        assert not first.same_route(third)


class TestMulticastRoutingTable:
    def test_first_match_wins(self):
        table = MulticastRoutingTable()
        table.add(key=0x10, mask=0xF0, cores=[1])
        table.add(key=0x10, mask=0xFF, cores=[2])
        entry = table.lookup(0x10)
        assert entry.processor_ids == frozenset([1])

    def test_lookup_miss_returns_none_and_counts(self):
        table = MulticastRoutingTable()
        table.add(key=5, mask=0xFFFFFFFF)
        assert table.lookup(6) is None
        assert table.misses == 1
        assert table.lookups == 1

    def test_capacity_enforced(self):
        table = MulticastRoutingTable(capacity=2)
        table.add(key=0, mask=0xFFFFFFFF)
        table.add(key=1, mask=0xFFFFFFFF)
        with pytest.raises(RoutingTableFullError):
            table.add(key=2, mask=0xFFFFFFFF)

    def test_default_capacity_is_1024(self):
        assert MulticastRoutingTable().capacity == 1024

    def test_occupancy_fraction(self):
        table = MulticastRoutingTable(capacity=10)
        table.add(key=0, mask=0xFFFFFFFF)
        assert table.occupancy == pytest.approx(0.1)

    def test_clear_empties_table(self):
        table = MulticastRoutingTable()
        table.add(key=0, mask=0xFFFFFFFF)
        table.clear()
        assert len(table) == 0

    def test_minimise_merges_single_bit_pairs(self):
        table = MulticastRoutingTable()
        table.add(key=0b1000, mask=0xFFFFFFFF, links=[Direction.EAST])
        table.add(key=0b1001, mask=0xFFFFFFFF, links=[Direction.EAST])
        eliminated = table.minimise()
        assert eliminated == 1
        assert len(table) == 1
        merged = table.entries[0]
        assert merged.matches(0b1000)
        assert merged.matches(0b1001)
        assert not merged.matches(0b1010)

    def test_minimise_does_not_merge_different_routes(self):
        table = MulticastRoutingTable()
        table.add(key=0b1000, mask=0xFFFFFFFF, links=[Direction.EAST])
        table.add(key=0b1001, mask=0xFFFFFFFF, links=[Direction.WEST])
        assert table.minimise() == 0
        assert len(table) == 2

    def test_minimise_is_repeated_until_stable(self):
        table = MulticastRoutingTable()
        for key in range(4):
            table.add(key=key, mask=0xFFFFFFFF, cores=[3])
        table.minimise()
        assert len(table) == 1
        assert table.entries[0].span == 4

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1,
                    max_size=40, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_minimise_preserves_routing_semantics(self, keys):
        # After minimisation every original key must still hit an entry
        # with the same route, and no key outside the originals that was
        # previously a miss may suddenly route differently *to a different
        # route set* (coarsening may make extra keys match, but only with
        # the same route as the merged group, which is safe for multicast).
        table = MulticastRoutingTable()
        for key in keys:
            table.add(key=key, mask=0xFFFFFFFF, links=[Direction.NORTH])
        table.minimise()
        for key in keys:
            entry = table.lookup(key)
            assert entry is not None
            assert entry.link_directions == frozenset([Direction.NORTH])


class TestIndexedLookup:
    """The mask-grouped key index must replicate the linear CAM walk."""

    def test_index_respects_cross_mask_entry_order(self):
        table = MulticastRoutingTable()
        table.add(key=0x10, mask=0xF0, cores=[1])     # coarse entry first
        table.add(key=0x12, mask=0xFF, cores=[2])     # finer entry shadowed
        assert table.lookup(0x12).processor_ids == frozenset([1])
        table2 = MulticastRoutingTable()
        table2.add(key=0x12, mask=0xFF, cores=[2])    # finer entry first
        table2.add(key=0x10, mask=0xF0, cores=[1])
        assert table2.lookup(0x12).processor_ids == frozenset([2])

    def test_index_invalidated_on_mutation(self):
        table = MulticastRoutingTable()
        table.add(key=1, mask=0xFFFFFFFF, cores=[1])
        assert table.lookup(2) is None                # builds the index
        table.add(key=2, mask=0xFFFFFFFF, cores=[2])  # must invalidate it
        assert table.lookup(2).processor_ids == frozenset([2])
        table.clear()
        assert table.lookup(1) is None

    def test_compile_routes_reports_hits_and_misses(self):
        table = MulticastRoutingTable()
        table.add(key=0x100, mask=0xFFFFFF00, links=[Direction.EAST])
        routes = table.compile_routes([0x104, 0x999])
        assert routes[0x104] == (frozenset([Direction.EAST]), frozenset())
        assert routes[0x999] is None
        assert table.lookups == 0 and table.misses == 0

    @given(st.lists(
        st.tuples(st.integers(min_value=0, max_value=0xFF),
                  st.sampled_from([0xFFFFFFFF, 0xFFFFFFF0, 0xFFFFFF00]),
                  st.sampled_from(list(Direction)),
                  st.integers(min_value=0, max_value=3)),
        min_size=1, max_size=30),
        st.lists(st.integers(min_value=0, max_value=0x3FF),
                 min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_indexed_lookup_matches_linear_scan(self, raw_entries, probes):
        # Overlapping masks, duplicate keys and shadowed entries included:
        # the indexed cache must agree with the linear CAM walk for every
        # probe key, both before and after minimisation.
        table = MulticastRoutingTable()
        for key, mask, link, core in raw_entries:
            table.add(key=key & mask, mask=mask, links=[link], cores=[core])
        for key in probes:
            assert table.route_for(key) is table.lookup_linear(key)
        table.minimise()
        for key in probes:
            assert table.route_for(key) is table.lookup_linear(key)


class TestP2PRoutingTable:
    def test_table_covers_every_destination(self):
        geometry = TorusGeometry(4, 4)
        table = P2PRoutingTable.build(ChipCoordinate(1, 1), geometry)
        assert len(table) == 16
        assert table.next_hop(ChipCoordinate(1, 1)) is None

    def test_next_hop_is_first_step_of_shortest_route(self):
        geometry = TorusGeometry(8, 8)
        origin = ChipCoordinate(0, 0)
        table = P2PRoutingTable.build(origin, geometry)
        destination = ChipCoordinate(3, 3)
        assert table.next_hop(destination) is Direction.NORTH_EAST

    def test_unknown_destination_raises(self):
        geometry = TorusGeometry(2, 2)
        table = P2PRoutingTable.build(ChipCoordinate(0, 0), geometry)
        with pytest.raises(KeyError):
            table.next_hop(ChipCoordinate(5, 5))
        assert not table.knows(ChipCoordinate(5, 5))

    def test_following_next_hops_reaches_destination(self):
        geometry = TorusGeometry(6, 6)
        tables = {coord: P2PRoutingTable.build(coord, geometry)
                  for coord in geometry.all_chips()}
        source = ChipCoordinate(0, 0)
        destination = ChipCoordinate(4, 2)
        current = source
        hops = 0
        while current != destination:
            direction = tables[current].next_hop(destination)
            current = current.neighbour(direction, 6, 6)
            hops += 1
            assert hops <= 12, "p2p forwarding must not loop"
        assert hops == geometry.distance(source, destination)
