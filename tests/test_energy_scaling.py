"""Tests for GALS process-variability and DVFS models (Sections 4, 5.1)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import DEFAULT_CORE_FREQUENCY_MHZ, ClockDomain
from repro.energy.scaling import (
    DVFSPolicy,
    VariabilityStudy,
    dynamic_power_fraction,
)


class TestDynamicPowerFraction:
    def test_cubic_with_voltage_scaling(self):
        assert dynamic_power_fraction(0.5) == pytest.approx(0.125)
        assert dynamic_power_fraction(1.0) == pytest.approx(1.0)

    def test_linear_with_fixed_voltage(self):
        assert dynamic_power_fraction(0.5, voltage_tracks_frequency=False) == \
            pytest.approx(0.5)

    def test_negative_fraction_rejected(self):
        with pytest.raises(ValueError):
            dynamic_power_fraction(-0.1)

    @settings(max_examples=50, deadline=None)
    @given(fraction=st.floats(min_value=0.0, max_value=1.0))
    def test_voltage_scaling_never_worse_than_fixed_voltage(self, fraction):
        assert dynamic_power_fraction(fraction) <= \
            dynamic_power_fraction(fraction, voltage_tracks_frequency=False) + 1e-12


class TestVariabilityStudy:
    def test_needs_at_least_one_domain(self):
        with pytest.raises(ValueError):
            VariabilityStudy(n_domains=0)

    def test_sampled_domains_carry_variation(self):
        study = VariabilityStudy(n_domains=20, seed=1)
        domains = study.sample_domains(sigma_fraction=0.1)
        assert len(domains) == 20
        frequencies = {d.actual_frequency_mhz for d in domains}
        assert len(frequencies) > 1

    def test_zero_sigma_means_no_gals_advantage(self):
        study = VariabilityStudy(n_domains=20, seed=2)
        outcome = study.run_trial(sigma_fraction=0.0)
        assert outcome.gals_advantage == pytest.approx(1.0)
        assert outcome.slowest_domain_mhz == pytest.approx(
            DEFAULT_CORE_FREQUENCY_MHZ)

    def test_gals_advantage_at_least_one(self):
        study = VariabilityStudy(n_domains=20, seed=3)
        outcome = study.run_trial(sigma_fraction=0.15)
        assert outcome.gals_advantage >= 1.0
        assert outcome.fastest_domain_mhz >= outcome.slowest_domain_mhz

    def test_advantage_grows_with_process_spread(self):
        study = VariabilityStudy(n_domains=20, seed=4)
        sweep = study.sweep([0.02, 0.20], trials=60)
        assert sweep[0.20]["mean_advantage"] > sweep[0.02]["mean_advantage"]

    def test_sweep_requires_positive_trials(self):
        with pytest.raises(ValueError):
            VariabilityStudy(seed=0).sweep([0.1], trials=0)

    def test_reproducible_with_seed(self):
        first = VariabilityStudy(n_domains=10, seed=99).run_trial(0.1)
        second = VariabilityStudy(n_domains=10, seed=99).run_trial(0.1)
        assert first.gals_throughput_mhz == pytest.approx(
            second.gals_throughput_mhz)


class TestDVFSPolicy:
    def _domain(self, name="core-0"):
        return ClockDomain(name=name,
                           nominal_frequency_mhz=DEFAULT_CORE_FREQUENCY_MHZ)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            DVFSPolicy(tick_us=0.0)
        with pytest.raises(ValueError):
            DVFSPolicy(safety_margin=1.0)
        with pytest.raises(ValueError):
            DVFSPolicy(minimum_fraction=0.0)
        with pytest.raises(ValueError):
            DVFSPolicy().decide(self._domain(), -1.0)

    def test_light_load_scales_down_to_floor(self):
        policy = DVFSPolicy(minimum_fraction=0.25)
        decision = policy.decide(self._domain(), required_cycles_per_tick=100.0)
        assert decision.frequency_fraction == pytest.approx(0.25)
        assert decision.power_fraction < 0.1

    def test_full_load_stays_at_nominal(self):
        policy = DVFSPolicy()
        nominal_budget = DEFAULT_CORE_FREQUENCY_MHZ * policy.tick_us
        decision = policy.decide(self._domain(), nominal_budget)
        assert decision.frequency_fraction == pytest.approx(1.0)
        assert decision.power_fraction == pytest.approx(1.0)

    def test_deadline_still_met_after_scaling(self):
        """The chosen frequency always leaves the required cycles inside the tick."""
        policy = DVFSPolicy(safety_margin=0.2)
        domain = self._domain()
        required = 60_000.0  # 30 % of the 200 MHz x 1 ms budget
        decision = policy.decide(domain, required)
        cycles_available = (domain.nominal_frequency_mhz
                            * decision.frequency_fraction * policy.tick_us)
        assert cycles_available >= required
        assert decision.headroom >= 0.0

    def test_apply_scales_the_domain(self):
        policy = DVFSPolicy()
        domain = self._domain()
        decision = policy.apply(domain, required_cycles_per_tick=50_000.0)
        assert domain.scaling_factor == pytest.approx(decision.frequency_fraction)
        assert domain.effective_frequency_mhz < DEFAULT_CORE_FREQUENCY_MHZ

    def test_plan_chip_alignment_enforced(self):
        policy = DVFSPolicy()
        with pytest.raises(ValueError):
            policy.plan_chip([self._domain()], [1.0, 2.0])

    def test_plan_chip_and_power_fraction(self):
        policy = DVFSPolicy()
        domains = [self._domain("core-%d" % i) for i in range(4)]
        requirements = [10_000.0, 50_000.0, 100_000.0, 200_000.0]
        decisions = policy.plan_chip(domains, requirements)
        assert len(decisions) == 4
        fractions = [d.frequency_fraction for d in decisions]
        assert fractions == sorted(fractions)
        assert 0.0 < DVFSPolicy.chip_power_fraction(decisions) <= 1.0

    def test_empty_plan_draws_full_power(self):
        assert DVFSPolicy.chip_power_fraction([]) == 1.0

    @settings(max_examples=60, deadline=None)
    @given(required=st.floats(min_value=0.0, max_value=250_000.0),
           margin=st.floats(min_value=0.0, max_value=0.5))
    def test_decision_is_always_feasible_or_saturated(self, required, margin):
        policy = DVFSPolicy(safety_margin=margin)
        domain = self._domain()
        decision = policy.decide(domain, required)
        assert policy.minimum_fraction <= decision.frequency_fraction <= 1.0
        cycles_available = (domain.nominal_frequency_mhz
                            * decision.frequency_fraction * policy.tick_us)
        # Either the work fits (with the margin), or the domain is already
        # running flat out (the requirement exceeds the nominal budget).
        assert (cycles_available * (1.0 - margin) >= required - 1e-6
                or decision.frequency_fraction == 1.0)
