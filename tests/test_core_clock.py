"""Unit tests for the GALS clock-domain model (Figure 5)."""

from __future__ import annotations

import random

import pytest

from repro.core.clock import ClockDomain, GALSClockSystem


class TestClockDomain:
    def test_rejects_non_positive_frequency(self):
        with pytest.raises(ValueError):
            ClockDomain("bad", 0.0)

    def test_actual_defaults_to_nominal(self):
        domain = ClockDomain("core-0", 200.0)
        assert domain.actual_frequency_mhz == 200.0

    def test_cycles_to_microseconds(self):
        domain = ClockDomain("core-0", 200.0)
        assert domain.cycles_to_microseconds(200.0) == pytest.approx(1.0)

    def test_microseconds_to_cycles_inverse(self):
        domain = ClockDomain("core-0", 133.0)
        cycles = domain.microseconds_to_cycles(3.0)
        assert domain.cycles_to_microseconds(cycles) == pytest.approx(3.0)

    def test_disabled_domain_raises_on_conversion(self):
        domain = ClockDomain("core-0", 200.0)
        domain.disable()
        with pytest.raises(RuntimeError):
            domain.cycles_to_microseconds(10.0)

    def test_scaling_changes_effective_frequency(self):
        domain = ClockDomain("core-0", 200.0)
        domain.scale(0.5)
        assert domain.effective_frequency_mhz == pytest.approx(100.0)

    def test_negative_scale_rejected(self):
        domain = ClockDomain("core-0", 200.0)
        with pytest.raises(ValueError):
            domain.scale(-1.0)

    def test_variation_stays_within_clamp(self):
        rng = random.Random(0)
        for _ in range(100):
            domain = ClockDomain("core-0", 200.0)
            domain.apply_variation(0.5, rng)
            assert 100.0 <= domain.actual_frequency_mhz <= 300.0

    def test_variation_rejects_negative_sigma(self):
        domain = ClockDomain("core-0", 200.0)
        with pytest.raises(ValueError):
            domain.apply_variation(-0.1, random.Random(0))


class TestGALSClockSystem:
    def test_for_chip_creates_core_router_memory_domains(self):
        system = GALSClockSystem.for_chip(4)
        assert len(system.all_domains()) == 6
        assert "router" in system
        assert "memory" in system
        assert system.core_domain(3).name == "core-3"

    def test_duplicate_domain_rejected(self):
        system = GALSClockSystem.for_chip(2)
        with pytest.raises(ValueError):
            system.add(ClockDomain("router", 100.0))

    def test_process_variation_spreads_frequencies(self):
        system = GALSClockSystem.for_chip(20)
        system.apply_process_variation(0.05, seed=1)
        assert system.frequency_spread() > 0.0

    def test_variation_is_deterministic_for_a_seed(self):
        first = GALSClockSystem.for_chip(8)
        second = GALSClockSystem.for_chip(8)
        first.apply_process_variation(0.05, seed=7)
        second.apply_process_variation(0.05, seed=7)
        assert ([d.actual_frequency_mhz for d in first.all_domains()] ==
                [d.actual_frequency_mhz for d in second.all_domains()])

    def test_gals_aggregate_beats_synchronous_worst_case(self):
        # The point of GALS: a global clock would run every core at the
        # slowest core's frequency, whereas GALS lets each domain run at
        # its own rate, so aggregate throughput is strictly higher whenever
        # variation is non-zero.
        system = GALSClockSystem.for_chip(20)
        system.apply_process_variation(0.05, seed=3)
        synchronous_total = system.synchronous_frequency() * 20
        assert system.aggregate_core_frequency() > synchronous_total

    def test_disabled_core_excluded_from_spread(self):
        system = GALSClockSystem.for_chip(4)
        system.apply_process_variation(0.05, seed=2)
        spread_before = system.frequency_spread()
        slowest = min((d for name, d in system.domains.items()
                       if name.startswith("core-")),
                      key=lambda d: d.actual_frequency_mhz)
        slowest.disable()
        assert system.frequency_spread() <= spread_before

    def test_empty_core_set_spread_is_zero(self):
        system = GALSClockSystem()
        assert system.frequency_spread() == 0.0
        assert system.synchronous_frequency() == 0.0
