"""Unit tests for the LIF and Izhikevich neuron models."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neuron.izhikevich import IzhikevichParameters, IzhikevichPopulation
from repro.neuron.lif import LIFParameters, LIFPopulation


class TestLIFParameters:
    def test_defaults_are_consistent(self):
        parameters = LIFParameters()
        assert parameters.v_threshold_mv > parameters.v_reset_mv

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            LIFParameters(v_threshold_mv=-80.0, v_reset_mv=-70.0)

    def test_invalid_time_constants_rejected(self):
        with pytest.raises(ValueError):
            LIFParameters(tau_m_ms=0.0)
        with pytest.raises(ValueError):
            LIFParameters(tau_refrac_ms=-1.0)


class TestLIFDynamics:
    def test_quiescent_without_input(self):
        population = LIFPopulation(10)
        for _ in range(100):
            spikes = population.step()
            assert not spikes.any()
        assert np.allclose(population.v, LIFParameters().v_rest_mv)

    def test_strong_constant_current_drives_spiking(self):
        population = LIFPopulation(5)
        current = np.full(5, 5.0)
        total = 0
        for _ in range(100):
            total += int(population.step(current).sum())
        assert total > 0
        assert (population.spike_count > 0).all()

    def test_subthreshold_current_never_spikes(self):
        parameters = LIFParameters()
        # Steady state = v_rest + R*I; choose I so that it stays below
        # threshold: (threshold - rest) / R = 1.5 nA, use 1.0 nA.
        population = LIFPopulation(5, parameters)
        current = np.full(5, 1.0)
        for _ in range(500):
            assert not population.step(current).any()

    def test_higher_current_gives_higher_rate(self):
        low = LIFPopulation(1)
        high = LIFPopulation(1)
        for _ in range(500):
            low.step(np.array([2.0]))
            high.step(np.array([4.0]))
        assert high.spike_count[0] > low.spike_count[0]

    def test_refractory_period_enforced(self):
        parameters = LIFParameters(tau_refrac_ms=5.0)
        population = LIFPopulation(1, parameters)
        current = np.array([100.0])
        spike_ticks = []
        for tick in range(50):
            if population.step(current)[0]:
                spike_ticks.append(tick)
        intervals = np.diff(spike_ticks)
        assert (intervals >= 5).all()

    def test_membrane_reset_after_spike(self):
        population = LIFPopulation(1)
        current = np.array([100.0])
        fired = False
        for _ in range(20):
            if population.step(current)[0]:
                fired = True
                assert population.v[0] == LIFParameters().v_reset_mv
                break
        assert fired

    def test_synaptic_input_shape_checked(self):
        population = LIFPopulation(4)
        with pytest.raises(ValueError):
            population.inject_synaptic_input(np.zeros(3))

    def test_synaptic_current_decays(self):
        population = LIFPopulation(1)
        population.inject_synaptic_input(np.array([1.0]))
        population.step()
        first = population.synaptic_current[0]
        population.step()
        assert population.synaptic_current[0] < first

    def test_reset_restores_initial_state(self):
        population = LIFPopulation(3)
        population.step(np.full(3, 10.0))
        population.reset()
        assert np.allclose(population.v, LIFParameters().v_rest_mv)
        assert population.spike_count.sum() == 0

    def test_randomise_membrane_stays_in_range(self):
        population = LIFPopulation(100, rng=np.random.default_rng(1))
        population.randomise_membrane()
        parameters = LIFParameters()
        assert (population.v >= parameters.v_reset_mv).all()
        assert (population.v <= parameters.v_threshold_mv).all()

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            LIFPopulation(0)


class TestIzhikevich:
    def test_quiescent_without_input(self):
        population = IzhikevichPopulation(5)
        for _ in range(100):
            assert not population.step().any()

    def test_constant_current_produces_spikes(self):
        population = IzhikevichPopulation(1)
        total = 0
        for _ in range(300):
            total += int(population.step(np.array([10.0])).sum())
        assert total > 0

    def test_regular_spiking_slower_than_fast_spiking(self):
        regular = IzhikevichPopulation(1, IzhikevichParameters.regular_spiking())
        fast = IzhikevichPopulation(1, IzhikevichParameters.fast_spiking())
        current = np.array([10.0])
        for _ in range(500):
            regular.step(current)
            fast.step(current)
        assert fast.spike_count[0] > regular.spike_count[0]

    def test_reset_after_spike_uses_c_and_d(self):
        parameters = IzhikevichParameters()
        population = IzhikevichPopulation(1, parameters)
        fired = False
        for _ in range(200):
            u_before = population.u[0]
            if population.step(np.array([15.0]))[0]:
                fired = True
                assert population.v[0] == parameters.c
                assert population.u[0] == pytest.approx(u_before + parameters.d,
                                                        rel=0.2)
                break
        assert fired

    def test_cell_class_presets_differ(self):
        presets = {IzhikevichParameters.regular_spiking(),
                   IzhikevichParameters.fast_spiking(),
                   IzhikevichParameters.chattering(),
                   IzhikevichParameters.intrinsically_bursting()}
        assert len(presets) == 4

    def test_reset_restores_quiescence(self):
        population = IzhikevichPopulation(2)
        for _ in range(50):
            population.step(np.full(2, 10.0))
        population.reset()
        assert population.spike_count.sum() == 0
        assert not population.step().any()

    def test_input_shape_checked(self):
        population = IzhikevichPopulation(3)
        with pytest.raises(ValueError):
            population.inject_synaptic_input(np.zeros(5))


class TestModelProperties:
    @given(st.floats(min_value=0.0, max_value=20.0))
    @settings(max_examples=30, deadline=None)
    def test_lif_spike_rate_monotone_in_current(self, current):
        # Firing count must never decrease when the drive increases.
        low = LIFPopulation(1)
        high = LIFPopulation(1)
        for _ in range(200):
            low.step(np.array([current]))
            high.step(np.array([current + 1.0]))
        assert high.spike_count[0] >= low.spike_count[0]

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=20, deadline=None)
    def test_population_sizes_respected(self, size):
        population = LIFPopulation(size)
        spikes = population.step(np.zeros(size))
        assert spikes.shape == (size,)
