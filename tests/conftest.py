"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.boot import BootController


@pytest.fixture
def small_machine() -> SpiNNakerMachine:
    """A 3x3 machine with 4 cores per chip (fast to build and run)."""
    return SpiNNakerMachine(MachineConfig(width=3, height=3, cores_per_chip=4))


@pytest.fixture
def medium_machine() -> SpiNNakerMachine:
    """A 4x4 machine with 6 cores per chip."""
    return SpiNNakerMachine(MachineConfig(width=4, height=4, cores_per_chip=6))


@pytest.fixture
def booted_machine() -> SpiNNakerMachine:
    """A 4x4 machine that has completed the fault-free boot sequence."""
    machine = SpiNNakerMachine(MachineConfig(width=4, height=4, cores_per_chip=6))
    BootController(machine, seed=0).boot()
    return machine


@pytest.fixture
def small_network() -> Network:
    """A small stimulus-driven network used by mapping and runtime tests."""
    network = Network(seed=11)
    stimulus = SpikeSourcePoisson(40, rate_hz=60.0, label="stimulus")
    excitatory = Population(80, "lif", label="excitatory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.2, weight=0.6,
                                              delay_range=(1, 4)))
    network.connect(excitatory, excitatory,
                    FixedProbabilityConnector(p_connect=0.05, weight=0.2))
    return network


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic NumPy generator."""
    return np.random.default_rng(12345)
