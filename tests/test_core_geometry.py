"""Unit and property tests for the torus geometry and link directions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import ChipCoordinate, Direction, TorusGeometry


class TestDirection:
    def test_six_directions(self):
        assert len(list(Direction)) == 6

    def test_opposite_is_involution(self):
        for direction in Direction:
            assert direction.opposite.opposite is direction

    def test_opposite_offsets_cancel(self):
        for direction in Direction:
            dx, dy = direction.offset
            ox, oy = direction.opposite.offset
            assert (dx + ox, dy + oy) == (0, 0)

    def test_from_offset_round_trips(self):
        for direction in Direction:
            assert Direction.from_offset(*direction.offset) is direction

    def test_from_offset_rejects_non_unit(self):
        with pytest.raises(ValueError):
            Direction.from_offset(2, 0)
        with pytest.raises(ValueError):
            Direction.from_offset(1, -1)

    def test_emergency_pair_spans_blocked_link(self):
        # The two emergency legs must sum to the blocked link's offset:
        # this is the triangle of Figure 8.
        for direction in Direction:
            first, second = direction.emergency_pair()
            total = (first.offset[0] + second.offset[0],
                     first.offset[1] + second.offset[1])
            assert total == direction.offset

    def test_emergency_second_leg_relation(self):
        # A first-leg packet arrives on the opposite of (L+1); the hardware
        # derives the second leg as arrival+1, which must equal L-1.
        for direction in Direction:
            first, second = direction.emergency_pair()
            arrival = first.opposite
            assert Direction.emergency_second_leg(arrival) is second


class TestChipCoordinate:
    def test_neighbour_wraps_on_torus(self):
        coord = ChipCoordinate(0, 0)
        west = coord.neighbour(Direction.WEST, 4, 4)
        assert west == ChipCoordinate(3, 0)

    def test_iteration_yields_x_y(self):
        assert tuple(ChipCoordinate(2, 5)) == (2, 5)

    def test_coordinates_are_hashable_and_ordered(self):
        a = ChipCoordinate(1, 2)
        b = ChipCoordinate(1, 2)
        assert a == b
        assert len({a, b}) == 1
        assert ChipCoordinate(0, 0) < ChipCoordinate(1, 0)


class TestTorusGeometry:
    def test_rejects_non_positive_dimensions(self):
        with pytest.raises(ValueError):
            TorusGeometry(0, 4)

    def test_distance_to_self_is_zero(self):
        geometry = TorusGeometry(8, 8)
        assert geometry.distance(ChipCoordinate(3, 3), ChipCoordinate(3, 3)) == 0

    def test_diagonal_counts_as_single_hop(self):
        geometry = TorusGeometry(8, 8)
        assert geometry.distance(ChipCoordinate(0, 0), ChipCoordinate(3, 3)) == 3

    def test_opposite_sign_displacement_adds(self):
        geometry = TorusGeometry(16, 16)
        assert geometry.distance(ChipCoordinate(0, 0), ChipCoordinate(2, 14)) == 4

    def test_wraparound_shortens_distance(self):
        geometry = TorusGeometry(8, 8)
        assert geometry.distance(ChipCoordinate(0, 0), ChipCoordinate(7, 0)) == 1

    def test_route_reaches_target(self):
        geometry = TorusGeometry(8, 8)
        source = ChipCoordinate(1, 1)
        target = ChipCoordinate(6, 3)
        chips = geometry.route_chips(source, target)
        assert chips[0] == source
        assert chips[-1] == target

    def test_route_length_matches_distance(self):
        geometry = TorusGeometry(8, 8)
        source = ChipCoordinate(2, 5)
        target = ChipCoordinate(7, 0)
        assert len(geometry.route(source, target)) == geometry.distance(source,
                                                                        target)

    def test_all_chips_enumerates_every_coordinate(self):
        geometry = TorusGeometry(3, 4)
        chips = list(geometry.all_chips())
        assert len(chips) == 12
        assert len(set(chips)) == 12
        assert geometry.n_chips == 12

    def test_neighbours_returns_all_six(self):
        geometry = TorusGeometry(5, 5)
        neighbours = geometry.neighbours(ChipCoordinate(2, 2))
        assert len(neighbours) == 6
        assert len({coord for _, coord in neighbours}) == 6


coordinate_strategy = st.tuples(st.integers(min_value=0, max_value=15),
                                st.integers(min_value=0, max_value=15))


class TestGeometryProperties:
    @given(coordinate_strategy, coordinate_strategy)
    @settings(max_examples=100, deadline=None)
    def test_distance_is_symmetric(self, a, b):
        geometry = TorusGeometry(16, 16)
        ca, cb = ChipCoordinate(*a), ChipCoordinate(*b)
        assert geometry.distance(ca, cb) == geometry.distance(cb, ca)

    @given(coordinate_strategy, coordinate_strategy, coordinate_strategy)
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        geometry = TorusGeometry(16, 16)
        ca, cb, cc = (ChipCoordinate(*a), ChipCoordinate(*b), ChipCoordinate(*c))
        assert geometry.distance(ca, cc) <= (geometry.distance(ca, cb) +
                                             geometry.distance(cb, cc))

    @given(coordinate_strategy, coordinate_strategy)
    @settings(max_examples=100, deadline=None)
    def test_route_always_terminates_at_target(self, a, b):
        geometry = TorusGeometry(16, 16)
        source, target = ChipCoordinate(*a), ChipCoordinate(*b)
        current = source
        for direction in geometry.route(source, target):
            current = current.neighbour(direction, 16, 16)
        assert current == target

    @given(coordinate_strategy, coordinate_strategy)
    @settings(max_examples=100, deadline=None)
    def test_distance_bounded_by_half_perimeter(self, a, b):
        geometry = TorusGeometry(16, 16)
        distance = geometry.distance(ChipCoordinate(*a), ChipCoordinate(*b))
        assert 0 <= distance <= 16
