"""Tests for the fabric congestion analysis (Section 5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.congestion import (
    congestion_report,
    hotspot_chips,
    link_load_matrix,
    link_utilisations,
    saturation_injection_rate,
)
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.packets import MulticastPacket


def machine_with_line_traffic(n_packets=10):
    """A 3x3 machine with n_packets routed (0,0) -> east -> (1,0) core 0."""
    machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                             cores_per_chip=4))
    machine.chips[ChipCoordinate(0, 0)].router.table.add(
        key=1, mask=0xFFFFFFFF, links=[Direction.EAST])
    machine.chips[ChipCoordinate(1, 0)].router.table.add(
        key=1, mask=0xFFFFFFFF, cores=[0])
    for _ in range(n_packets):
        machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=1))
    machine.run()
    return machine


class TestLinkLoadMatrix:
    def test_shape_matches_machine(self):
        machine = SpiNNakerMachine(MachineConfig(width=4, height=3,
                                                 cores_per_chip=2))
        matrix = link_load_matrix(machine)
        assert matrix.shape == (4, 3, 6)
        assert matrix.sum() == 0

    def test_traffic_lands_on_the_expected_cell(self):
        machine = machine_with_line_traffic(7)
        matrix = link_load_matrix(machine)
        assert matrix[0, 0, Direction.EAST.value] == 7
        assert matrix.sum() == 7


class TestLinkUtilisations:
    def test_negative_window_rejected(self):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=2))
        with pytest.raises(ValueError):
            link_utilisations(machine, elapsed_us=-1.0)

    def test_loaded_link_reports_positive_utilisation(self):
        # Five simultaneous packets stay under the link's blocking backlog,
        # so every one of them is carried by the east link out of (0, 0).
        machine = machine_with_line_traffic(5)
        loads = {(load.source, load.direction): load
                 for load in link_utilisations(machine, elapsed_us=1000.0)}
        busy = loads[(ChipCoordinate(0, 0), Direction.EAST)]
        assert busy.packets == 5
        assert busy.refused == 0
        assert busy.utilisation > 0.0
        assert not busy.failed
        idle = loads[(ChipCoordinate(2, 2), Direction.NORTH)]
        assert idle.packets == 0
        assert idle.utilisation == 0.0

    def test_description_mentions_direction(self):
        machine = machine_with_line_traffic(1)
        load = next(l for l in link_utilisations(machine) if l.packets > 0)
        assert "EAST" in load.description


class TestCongestionReport:
    def test_threshold_validation(self):
        machine = machine_with_line_traffic(1)
        with pytest.raises(ValueError):
            congestion_report(machine, utilisation_threshold=0.0)

    def test_light_traffic_is_lightly_loaded(self):
        # Five packets over a 1 ms observation window is far below any
        # link's capacity, so the fabric is in the lightly-loaded regime.
        machine = machine_with_line_traffic(5)
        report = congestion_report(machine, elapsed_us=1000.0)
        assert report.total_packets == 5
        assert report.total_refused == 0
        assert report.refusal_ratio == 0.0
        assert report.lightly_loaded
        assert report.failed_links == 0
        assert report.dropped_packets == 0
        assert len(report.hotspots) == 1

    def test_failed_links_counted(self):
        machine = machine_with_line_traffic(2)
        machine.fail_link(ChipCoordinate(2, 2), Direction.NORTH)
        report = congestion_report(machine)
        assert report.failed_links == 2  # bidirectional failure

    def test_hotspots_sorted_by_utilisation(self):
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=4))
        machine.chips[ChipCoordinate(0, 0)].router.table.add(
            key=1, mask=0xFFFFFFFF, links=[Direction.EAST, Direction.NORTH])
        machine.chips[ChipCoordinate(1, 0)].router.table.add(
            key=1, mask=0xFFFFFFFF, cores=[0])
        machine.chips[ChipCoordinate(0, 1)].router.table.add(
            key=1, mask=0xFFFFFFFF, cores=[0])
        machine.chips[ChipCoordinate(0, 0)].router.table.add(
            key=2, mask=0xFFFFFFFF, links=[Direction.EAST])
        machine.chips[ChipCoordinate(1, 0)].router.table.add(
            key=2, mask=0xFFFFFFFF, cores=[1])
        for _ in range(4):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=1))
        for _ in range(2):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=2))
        machine.run()
        report = congestion_report(machine, n_hotspots=2)
        assert len(report.hotspots) == 2
        assert report.hotspots[0].utilisation >= report.hotspots[1].utilisation
        assert report.hotspots[0].direction is Direction.EAST

    def test_empty_machine_report(self):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=2))
        report = congestion_report(machine, elapsed_us=1000.0)
        assert report.total_packets == 0
        assert report.peak_utilisation == 0.0
        assert report.hotspots == ()


class TestHotspotChips:
    def test_busiest_chip_is_the_injector(self):
        machine = machine_with_line_traffic(9)
        hotspots = hotspot_chips(machine, top=3)
        assert hotspots[0][0] == ChipCoordinate(0, 0)
        assert hotspots[0][1] == 9
        assert len(hotspots) == 1

    def test_top_must_be_positive(self):
        machine = machine_with_line_traffic(1)
        with pytest.raises(ValueError):
            hotspot_chips(machine, top=0)


class TestSaturationRate:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            saturation_injection_rate(0, 8)
        with pytest.raises(ValueError):
            saturation_injection_rate(8, 8, link_packets_per_us=0.0)
        with pytest.raises(ValueError):
            saturation_injection_rate(8, 8, cores_per_chip=1)
        with pytest.raises(ValueError):
            saturation_injection_rate(8, 8, mean_hops=0.0)

    def test_rate_positive_and_falls_with_machine_size(self):
        small = saturation_injection_rate(8, 8)
        large = saturation_injection_rate(48, 48)
        assert small > 0.0
        assert large > 0.0
        # Larger tori have longer mean paths, so each injected packet costs
        # more link traversals and the per-core budget shrinks.
        assert large < small

    def test_full_machine_supports_biological_rates(self):
        # The design point: ~1000 neurons/core at ~10 Hz mean rate needs
        # ~10 packets/ms/core, and the 256x256 full machine must sustain it.
        rate = saturation_injection_rate(256, 256)
        assert rate > 10.0

    def test_longer_paths_reduce_the_budget(self):
        near = saturation_injection_rate(16, 16, mean_hops=2.0)
        far = saturation_injection_rate(16, 16, mean_hops=8.0)
        assert far < near
