"""Unit and integration tests for the chip and machine models (Figs 1-3)."""

from __future__ import annotations

import pytest

from repro.core.chip import Chip, SystemController
from repro.core.event_kernel import EventKernel
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import Link, MachineConfig, SpiNNakerMachine
from repro.core.packets import MulticastPacket, NearestNeighbourPacket, NNCommand
from repro.core.processor import ProcessorState


class TestSystemController:
    def test_only_first_reader_wins(self):
        controller = SystemController()
        assert controller.read_monitor_arbiter(3) is True
        assert controller.read_monitor_arbiter(4) is False
        assert controller.monitor_core_id == 3

    def test_reset_allows_re_election(self):
        controller = SystemController()
        controller.read_monitor_arbiter(1)
        controller.reset()
        assert controller.read_monitor_arbiter(2) is True
        assert controller.monitor_core_id == 2

    def test_read_count_tracked(self):
        controller = SystemController()
        for core in range(5):
            controller.read_monitor_arbiter(core)
        assert controller.reads == 5


class TestChip:
    def test_chip_has_twenty_cores_by_default(self):
        chip = Chip(EventKernel(), ChipCoordinate(0, 0))
        assert chip.n_cores == 20
        assert len(chip.cores) == 20

    def test_rejects_zero_cores(self):
        with pytest.raises(ValueError):
            Chip(EventKernel(), ChipCoordinate(0, 0), n_cores=0)

    def test_monitor_election_chooses_exactly_one(self):
        chip = Chip(EventKernel(), ChipCoordinate(0, 0), n_cores=6)
        for core in chip.cores:
            core.run_self_test(True)
        elected = chip.elect_monitor()
        monitors = [c for c in chip.cores if c.state is ProcessorState.MONITOR]
        assert len(monitors) == 1
        assert monitors[0].core_id == elected
        assert chip.monitor is monitors[0]

    def test_monitor_election_skips_failed_cores(self):
        chip = Chip(EventKernel(), ChipCoordinate(0, 0), n_cores=4)
        chip.cores[0].run_self_test(False)
        chip.cores[1].run_self_test(False)
        chip.cores[2].run_self_test(True)
        chip.cores[3].run_self_test(True)
        elected = chip.elect_monitor()
        assert elected == 2

    def test_monitor_election_fails_with_no_working_core(self):
        chip = Chip(EventKernel(), ChipCoordinate(0, 0), n_cores=3)
        for core in chip.cores:
            core.run_self_test(False)
        assert chip.elect_monitor() is None

    def test_application_cores_excludes_monitor_and_failed(self):
        chip = Chip(EventKernel(), ChipCoordinate(0, 0), n_cores=5)
        for core in chip.cores:
            core.run_self_test(True)
        chip.cores[4].disable()
        chip.elect_monitor()
        labels = [core.core_id for core in chip.application_cores]
        assert chip.monitor_core_id not in labels
        assert 4 not in labels
        assert len(labels) == 3

    def test_system_ram_bounded(self):
        chip = Chip(EventKernel(), ChipCoordinate(0, 0), n_cores=2)
        chip.write_system_ram([1] * 100)
        assert len(chip.system_ram) == 100
        with pytest.raises(MemoryError):
            chip.write_system_ram([0] * (9 * 1024))

    def test_monitor_mailbox_receives_router_notifications(self):
        chip = Chip(EventKernel(), ChipCoordinate(0, 0), n_cores=2)
        chip._notify_monitor("emergency-routing", direction=Direction.EAST)
        assert chip.monitor_mailbox[0]["event"] == "emergency-routing"


class TestLink:
    def test_failed_link_refuses_packets(self):
        link = Link(ChipCoordinate(0, 0), Direction.EAST, ChipCoordinate(1, 0))
        link.failed = True
        assert link.try_accept(0.0, 40) is None
        assert link.packets_refused == 1

    def test_link_accepts_and_reports_arrival_time(self):
        link = Link(ChipCoordinate(0, 0), Direction.EAST, ChipCoordinate(1, 0),
                    latency_us=0.2, packets_per_us=5.0)
        arrival = link.try_accept(0.0, 40)
        assert arrival == pytest.approx(0.2 + 0.2)

    def test_congested_link_blocks(self):
        link = Link(ChipCoordinate(0, 0), Direction.EAST, ChipCoordinate(1, 0),
                    packets_per_us=1.0, block_threshold_us=2.0)
        accepted = 0
        while link.try_accept(0.0, 40) is not None:
            accepted += 1
            if accepted > 100:
                break
        assert link.is_blocked(0.0)
        assert 2 <= accepted <= 4

    def test_backlog_drains_over_time(self):
        link = Link(ChipCoordinate(0, 0), Direction.EAST, ChipCoordinate(1, 0),
                    packets_per_us=1.0, block_threshold_us=1.5)
        link.try_accept(0.0, 40)
        link.try_accept(0.0, 40)
        assert link.backlog(0.0) > 0.0
        assert link.backlog(10.0) == 0.0
        assert not link.is_blocked(10.0)

    def test_utilisation_bounded(self):
        link = Link(ChipCoordinate(0, 0), Direction.EAST, ChipCoordinate(1, 0))
        link.try_accept(0.0, 40)
        assert 0.0 < link.utilisation(10.0) <= 1.0


class TestMachineConfig:
    def test_full_machine_exceeds_a_million_cores(self):
        config = MachineConfig.full_machine()
        assert config.n_cores > 1_000_000
        assert config.n_chips == 65536

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(width=0, height=4)
        with pytest.raises(ValueError):
            MachineConfig(cores_per_chip=0)

    def test_link_count(self):
        config = MachineConfig(width=4, height=4)
        assert config.n_links == 16 * 6


class TestMachine:
    def test_machine_builds_all_chips_and_links(self, small_machine):
        assert small_machine.n_chips == 9
        assert len(small_machine.links) == 9 * 6
        assert small_machine.n_cores == 9 * 4

    def test_ethernet_chip_must_exist(self):
        with pytest.raises(ValueError):
            SpiNNakerMachine(MachineConfig(width=2, height=2,
                                           ethernet_chips=((5, 5),)))

    def test_origin_is_first_ethernet_chip(self, small_machine):
        assert small_machine.origin.coordinate == ChipCoordinate(0, 0)

    def test_links_connect_correct_neighbours(self, small_machine):
        link = small_machine.link(ChipCoordinate(2, 0), Direction.EAST)
        assert link.target == ChipCoordinate(0, 0)  # wraps on the torus

    def test_multicast_delivered_across_machine(self, small_machine):
        machine = small_machine
        source = ChipCoordinate(0, 0)
        destination = ChipCoordinate(2, 1)
        route = machine.geometry.route(source, destination)
        # Install entries along the route by hand.
        current = source
        for direction in route:
            machine.chips[current].router.table.add(key=77, mask=0xFFFFFFFF,
                                                    links=[direction])
            current = current.neighbour(direction, 3, 3)
        machine.chips[destination].router.table.add(key=77, mask=0xFFFFFFFF,
                                                    cores=[1])
        received = []
        target_core = machine.chips[destination].cores[1]
        target_core.run_self_test(True)
        target_core.start_application()
        target_core.on_packet(lambda packet: received.append(packet.key))
        machine.inject_multicast(source, MulticastPacket(key=77))
        machine.run()
        assert received == [77]

    def test_failed_link_blocks_and_repair_restores(self, small_machine):
        machine = small_machine
        machine.fail_link(ChipCoordinate(0, 0), Direction.EAST)
        link = machine.link(ChipCoordinate(0, 0), Direction.EAST)
        reverse = machine.link(ChipCoordinate(1, 0), Direction.WEST)
        assert link.failed and reverse.failed
        machine.repair_link(ChipCoordinate(0, 0), Direction.EAST)
        assert not link.failed and not reverse.failed

    def test_nearest_neighbour_delivery(self, small_machine):
        machine = small_machine
        received = []
        machine.chips[ChipCoordinate(1, 0)].on_nearest_neighbour(
            lambda packet, arrival: received.append((packet.command, arrival)))
        machine.send_nearest_neighbour(
            ChipCoordinate(0, 0), Direction.EAST,
            NearestNeighbourPacket(command=NNCommand.PROBE))
        machine.run()
        assert received == [(NNCommand.PROBE, Direction.WEST)]

    def test_aggregate_statistics_initially_zero(self, small_machine):
        assert small_machine.total_dropped_packets() == 0
        assert small_machine.total_emergency_invocations() == 0
        assert small_machine.total_link_traffic() == 0
