"""Concurrency tests: parallel clients hammering one live service.

The invariants a multi-tenant facility lives or dies by:

* **no double allocation** — two concurrently-held leases never overlap;
* **no lost leases** — every chip comes back once the tenants are done;
* **typed backpressure** — over-quota and over-queue submissions are
  429s, never 500s, no matter how many clients collide.
"""

from __future__ import annotations

import threading
import time

from repro.service import (AllocationService, BackpressureConfig,
                           ServiceBusy, ServiceClient, ServiceClientError)


def _intersects(a, b):
    """Whether two ``{"x","y","width","height"}`` rects overlap."""
    return (a["x"] < b["x"] + b["width"] and b["x"] < a["x"] + a["width"]
            and a["y"] < b["y"] + b["height"]
            and b["y"] < a["y"] + a["height"])


class TestParallelClients:
    def test_concurrent_leases_never_overlap_and_all_return(self):
        service = AllocationService.build(width=8, height=8).start()
        held = {}
        lock = threading.Lock()
        overlaps = []
        errors = []

        def worker(index):
            client = ServiceClient(service.url, tenant="t%02d" % index)
            try:
                for _ in range(2):
                    with client.session(2, 2,
                                        keepalive_ms=5000.0) as session:
                        ready = session.wait_ready(timeout_s=20.0)
                        rect = ready["rect"]
                        with lock:
                            for other in held.values():
                                if _intersects(rect, other):
                                    overlaps.append((rect, other))
                            held[session.job_id] = rect
                        time.sleep(0.01)
                        # Forget the rect *before* releasing: a stale
                        # entry must never indict the next tenant.
                        with lock:
                            del held[session.job_id]
            except (ServiceClientError, TimeoutError) as error:
                errors.append("%s: %s" % (type(error).__name__, error))
            finally:
                client.close()

        # 16 tenants of 2x2 = the whole 8x8 machine when all hold at
        # once, so late arrivals exercise the queue as well.
        threads = [threading.Thread(target=worker, args=(index,))
                   for index in range(16)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors, errors
            assert not overlaps, overlaps
            with service.runtime.lock:
                service.runtime.advance()
                summary = service.scheduler.stats.summary()
                # No lost leases: everything scheduled was freed, and
                # the machine is whole again.
                assert summary["scheduled"] == 32
                assert summary["freed"] == 32
                assert summary["expired"] == 0
                assert service.scheduler.partitioner.leased_area == 0
                assert service.scheduler.partitioner.free_area == 64
            assert service.metrics.status_total(500, 599) == 0
        finally:
            service.stop()

    def test_parallel_keepalives_and_releases_do_not_lose_jobs(self):
        service = AllocationService.build(width=8, height=8).start()

        def worker(index, failures):
            client = ServiceClient(service.url, tenant="t%02d" % index)
            try:
                created = client.create_job(1, 1, keepalive_ms=2000.0)
                job_id = int(created["job_id"])
                for _ in range(5):
                    if not client.keepalive(job_id)["alive"]:
                        failures.append("job %d died early" % job_id)
                released = client.release(job_id)
                if released["state"] != "freed":
                    failures.append("job %d ended %s"
                                    % (job_id, released["state"]))
            finally:
                client.close()

        failures = []
        threads = [threading.Thread(target=worker, args=(index, failures))
                   for index in range(12)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not failures, failures
            assert service.scheduler.partitioner.leased_area == 0
            assert service.metrics.status_total(500, 599) == 0
        finally:
            service.stop()

    def test_colliding_over_quota_clients_see_429_not_500(self):
        service = AllocationService.build(
            width=4, height=4,
            backpressure=BackpressureConfig(max_queue_depth=4)).start()
        outcomes = {"accepted": 0, "busy": 0, "wrong": []}
        lock = threading.Lock()

        def hammer():
            # Every thread shares ONE tenant, so the token bucket and
            # queue limits collide across threads, not just within one.
            client = ServiceClient(service.url, tenant="greedy")
            try:
                for _ in range(10):
                    try:
                        created = client.create_job(1, 1)
                        with lock:
                            outcomes["accepted"] += 1
                        client.release(int(created["job_id"]))
                    except ServiceBusy as busy:
                        with lock:
                            outcomes["busy"] += 1
                            if busy.status != 429 or not busy.code:
                                outcomes["wrong"].append(
                                    (busy.status, busy.code))
                    except ServiceClientError as error:
                        with lock:
                            outcomes["wrong"].append(
                                (error.status, str(error)))
            finally:
                client.close()

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        try:
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            # The bucket holds a burst of 8: forty rapid submissions
            # must include both admissions and typed rejections.
            assert outcomes["accepted"] >= 8
            assert outcomes["busy"] > 0
            assert not outcomes["wrong"], outcomes["wrong"]
            assert service.metrics.status_total(500, 599) == 0
        finally:
            service.stop()
