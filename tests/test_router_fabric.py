"""Tests for the compiled multicast transport fabric.

Covers the route-program compiler (tree walk, default routing, drops,
latency/hop accounting), the bulk statistics replay, and — most
importantly — the transport equivalence suite: seeded networks must
produce identical spike trains and delivered-weight totals under
``transport="fabric"`` and ``transport="event"``, on both a localized
and a long-range (multi-hop) topology, with link loads readable from
either source.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.congestion import congestion_report, link_load_matrix
from repro.analysis.traffic import (
    link_traffic_summary,
    per_chip_injection,
    transport_mix,
)
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.router.fabric import TransportFabric, compile_route
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController


# ----------------------------------------------------------------------
# Route-program compilation
# ----------------------------------------------------------------------
class TestCompileRoute:
    @staticmethod
    def machine(width=4, height=4):
        return SpiNNakerMachine(MachineConfig(width=width, height=height,
                                              cores_per_chip=4))

    def test_straight_line_route(self):
        machine = self.machine()
        key = 0x42
        # (0,0) -E-> (1,0) -E-> (2,0): deliver to cores 1 and 2.
        machine.chip(0, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            links=[Direction.EAST])
        machine.chip(1, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            links=[Direction.EAST])
        machine.chip(2, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            cores=[1, 2])
        program = compile_route(machine, ChipCoordinate(0, 0), key)
        assert program.n_destinations == 2
        assert {t.core_id for t in program.targets} == {1, 2}
        assert all(t.chip == ChipCoordinate(2, 0) for t in program.targets)
        assert all(t.hops == 2 for t in program.targets)
        assert program.n_link_hops == 2
        assert not program.dropped_at_source

    def test_branching_tree_counts_every_link(self):
        machine = self.machine()
        key = 0x7
        machine.chip(0, 0).router.table.add(
            key=key, mask=0xFFFFFFFF,
            links=[Direction.EAST, Direction.NORTH], cores=[1])
        machine.chip(1, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            cores=[2])
        machine.chip(0, 1).router.table.add(key=key, mask=0xFFFFFFFF,
                                            cores=[3])
        program = compile_route(machine, ChipCoordinate(0, 0), key)
        assert program.n_destinations == 3
        assert program.n_link_hops == 2
        assert program.max_hops == 1
        local = [t for t in program.targets if t.chip == ChipCoordinate(0, 0)]
        remote = [t for t in program.targets if t.chip != ChipCoordinate(0, 0)]
        # Local delivery skips the inter-chip link terms entirely.
        assert all(l.latency_us < r.latency_us for l in local for r in remote)

    def test_default_routing_continues_straight_through(self):
        machine = self.machine()
        key = 0x9
        machine.chip(0, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            links=[Direction.EAST])
        # No entry at (1,0): a packet arriving from the west default-routes
        # east, straight through to (2,0).
        machine.chip(2, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            cores=[1])
        program = compile_route(machine, ChipCoordinate(0, 0), key)
        assert program.n_destinations == 1
        assert program.targets[0].hops == 2
        visits = {v.chip: v for v in program.chip_visits}
        assert visits[ChipCoordinate(1, 0)].table_hit is False
        assert visits[ChipCoordinate(2, 0)].table_hit is True

    def test_local_key_without_entry_is_dropped(self):
        machine = self.machine()
        program = compile_route(machine, ChipCoordinate(0, 0), 0x123)
        assert program.dropped_at_source
        assert program.n_destinations == 0
        assert program.n_link_hops == 0

    def test_latency_grows_with_distance(self):
        machine = self.machine(8, 2)
        key = 0x1
        current = ChipCoordinate(0, 0)
        for _ in range(5):
            machine.chips[current].router.table.add(
                key=key, mask=0xFFFFFFFF, links=[Direction.EAST])
            current = current.neighbour(Direction.EAST, 8, 2)
        machine.chips[current].router.table.add(key=key, mask=0xFFFFFFFF,
                                                cores=[1])
        program = compile_route(machine, ChipCoordinate(0, 0), key)
        assert program.targets[0].hops == 5
        # NoC in + 5 links + NoC out, using the modelled service/latency.
        assert program.max_latency_us == pytest.approx(
            2 * (1 / 8.0 + 0.1) + 5 * (1 / 6.0 + 0.2))

    def test_account_batch_replays_per_packet_counters(self):
        machine = self.machine()
        key = 0x5
        machine.chip(0, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            links=[Direction.EAST])
        machine.chip(1, 0).router.table.add(key=key, mask=0xFFFFFFFF,
                                            cores=[1, 3])
        fabric = TransportFabric(machine)
        program = fabric.compile_key(ChipCoordinate(0, 0), key)
        fabric.account_batch(program, 10)
        source = machine.chip(0, 0).router.stats
        dest = machine.chip(1, 0).router.stats
        assert source.multicast_routed == 10
        assert source.injected_local == 10
        assert source.forwarded == 10
        assert source.forwarded_by_link[Direction.EAST] == 10
        assert dest.multicast_routed == 10
        assert dest.delivered_local == 20
        link = machine.link(ChipCoordinate(0, 0), Direction.EAST)
        assert link.packets_carried == 10
        assert link.bits_carried == 400
        assert fabric.packets_accounted == 10
        assert fabric.summary()["programs"] == 1.0


# ----------------------------------------------------------------------
# Transport equivalence
# ----------------------------------------------------------------------
def localized_application(machine, transport):
    """A mostly-nearest-neighbour workload under locality placement."""
    network = Network(seed=21)
    stimulus = SpikeSourcePoisson(40, rate_hz=80.0, label="stim")
    target = Population(80, "lif", label="tgt")
    target.record(spikes=True)
    network.connect(stimulus, target,
                    FixedProbabilityConnector(0.3, weight=1.5,
                                              delay_range=(1, 6)))
    network.connect(target, target,
                    FixedProbabilityConnector(0.05, weight=0.4))
    return NeuralApplication(machine, network, max_neurons_per_core=16,
                             seed=21, transport=transport, stagger_us=0.0)


def long_range_application(machine, transport):
    """Populations scattered raster-order so projections span many hops."""
    network = Network(seed=31)
    stimulus = SpikeSourcePoisson(96, rate_hz=50.0, label="lr-stim")
    target = Population(192, "lif", label="lr-tgt")
    target.record(spikes=True)
    network.connect(stimulus, target,
                    FixedProbabilityConnector(0.12, weight=1.6,
                                              delay_range=(1, 10)))
    return NeuralApplication(machine, network, max_neurons_per_core=32,
                             seed=31, transport=transport,
                             placement_strategy="round-robin",
                             stagger_us=0.0)


TOPOLOGIES = {
    "localized": (dict(width=3, height=3, cores_per_chip=6),
                  localized_application),
    "long-range": (dict(width=5, height=5, cores_per_chip=2),
                   long_range_application),
}


def run_topology(name, transport):
    config, build = TOPOLOGIES[name]
    machine = SpiNNakerMachine(MachineConfig(**config))
    BootController(machine, seed=1).boot()
    application = build(machine, transport)
    result = application.run(120.0)
    return application, result, machine


class TestTransportEquivalence:
    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_identical_spike_trains_and_delivered_weight(self, topology):
        event_app, event, event_machine = run_topology(topology, "event")
        fabric_app, fabric, fabric_machine = run_topology(topology, "fabric")
        assert event.total_spikes() > 0
        assert event.spikes == fabric.spikes
        for label in event.spike_counts:
            assert np.array_equal(event.spike_counts[label],
                                  fabric.spike_counts[label])
        assert event.delivered_charge_na == fabric.delivered_charge_na
        assert event.synaptic_events == fabric.synaptic_events
        assert event.packets_sent == fabric.packets_sent
        assert event.packets_dropped == fabric.packets_dropped == 0
        assert event_app.unmatched_packets == fabric_app.unmatched_packets == 0

    def test_long_range_topology_really_is_long_range(self):
        application, _result, _machine = run_topology("long-range", "fabric")
        depths = [program.max_hops
                  for program in application.fabric.programs.values()]
        assert max(depths) >= 3

    @pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
    def test_link_loads_readable_from_either_transport(self, topology):
        _, _, event_machine = run_topology(topology, "event")
        _, _, fabric_machine = run_topology(topology, "fabric")
        # congestion.py and traffic.py read the same per-link counters the
        # fabric increments in bulk, so both transports report identical
        # loads for identical traffic.
        assert np.array_equal(link_load_matrix(event_machine),
                              link_load_matrix(fabric_machine))
        event_traffic = link_traffic_summary(event_machine)
        fabric_traffic = link_traffic_summary(fabric_machine)
        assert event_traffic.total_packets == fabric_traffic.total_packets
        assert event_traffic.total_bits == fabric_traffic.total_bits
        assert event_traffic.active_links == fabric_traffic.active_links
        assert (per_chip_injection(event_machine)
                == per_chip_injection(fabric_machine))
        report = congestion_report(fabric_machine)
        assert report.total_packets == event_traffic.total_packets
        assert report.dropped_packets == 0

    def test_router_statistics_match_between_transports(self):
        _, _, event_machine = run_topology("localized", "event")
        _, _, fabric_machine = run_topology("localized", "fabric")
        event_mix = transport_mix(event_machine)
        fabric_mix = transport_mix(fabric_machine)
        assert event_mix["fabric_batches"] == 0
        assert fabric_mix["fabric_batches"] > 0
        assert (event_mix["multicast_routed"]
                == fabric_mix["multicast_routed"] > 0)
        for coordinate in event_machine.chips:
            event_stats = event_machine.chips[coordinate].router.stats
            fabric_stats = fabric_machine.chips[coordinate].router.stats
            assert event_stats.multicast_routed == fabric_stats.multicast_routed
            assert event_stats.table_hits == fabric_stats.table_hits
            assert event_stats.delivered_local == fabric_stats.delivered_local
            assert event_stats.forwarded == fabric_stats.forwarded
            assert (event_stats.forwarded_by_link
                    == fabric_stats.forwarded_by_link)

    def test_fabric_latencies_are_sane_and_recorded_in_bulk(self):
        _, result, _ = run_topology("long-range", "fabric")
        latencies = result.delivery_latencies_us
        distances = result.delivery_distances
        assert len(latencies) == len(distances) > 0
        assert latencies.min() > 0.0
        assert latencies.max() < 1000.0
        # Deliveries over more hops must not be cheaper than near ones.
        assert distances.max() > distances.min()
        assert (latencies[distances == distances.max()].mean()
                > latencies[distances == distances.min()].mean())

    def test_dma_accounting_parity(self):
        _, event, event_machine = run_topology("localized", "event")
        fabric_app, fabric, _ = run_topology("localized", "fabric")
        transfers = sum(runtime.core.dma.completed_transfers
                        for runtime in fabric_app.core_runtimes)
        assert transfers == len(fabric.delivery_latencies_us)
        assert len(fabric.delivery_latencies_us) == \
            len(event.delivery_latencies_us)


class TestTransportConfiguration:
    def test_invalid_transport_rejected(self):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=4))
        with pytest.raises(ValueError):
            NeuralApplication(machine, Network(seed=1), transport="pigeon")

    def test_negative_stagger_rejected(self):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=4))
        with pytest.raises(ValueError):
            NeuralApplication(machine, Network(seed=1), stagger_us=-1.0)

    def test_fabric_programs_emitted_by_mapping_layer(self):
        _, _, _ = run_topology("localized", "fabric")
        # prepare() adopts the generator's programs; compile once more via
        # the application and confirm a program exists per source vertex.
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=6))
        BootController(machine, seed=1).boot()
        application = localized_application(machine, "fabric")
        application.prepare()
        senders = [runtime for runtime in application.core_runtimes
                   if runtime.has_outgoing_projections]
        assert senders
        for runtime in senders:
            assert runtime.fabric_program is not None
            assert runtime.fabric_deliveries
