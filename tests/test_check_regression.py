"""Tests for the benchmark perf-regression gate
(``benchmarks/check_regression.py``)."""

from __future__ import annotations

import json
import os

import pytest

from benchmarks.check_regression import (
    IMPROVED,
    KEY_METRICS,
    MISSING,
    OK,
    REGRESSED,
    compare_bench,
    main,
    run_gate,
)


def write_bench(directory, bench_id, metrics):
    path = os.path.join(str(directory), "BENCH_%s.json" % bench_id)
    with open(path, "w") as handle:
        json.dump({"bench": bench_id, "metrics": metrics}, handle)
    return path


class TestCompareBench:
    def test_within_tolerance_is_ok(self):
        deviations = compare_bench(
            "e18", {"remap_speedup": 100.0, "pass_cache_hit_rate": 0.10},
            {"remap_speedup": 90.0, "pass_cache_hit_rate": 0.11},
            tolerance=0.25)
        assert [d.status for d in deviations] == [OK, OK]
        assert deviations[0].change == pytest.approx(-0.10)

    def test_regression_beyond_tolerance_fails(self):
        deviations = compare_bench(
            "e16", {"speedup": 100.0},
            {"speedup": 70.0}, tolerance=0.25)
        assert deviations[0].status == REGRESSED
        assert deviations[0].failed

    def test_improvement_beyond_tolerance_is_not_a_failure(self):
        deviations = compare_bench(
            "e16", {"speedup": 10.0}, {"speedup": 20.0}, tolerance=0.25)
        assert deviations[0].status == IMPROVED
        assert not deviations[0].failed

    def test_missing_current_metric_fails(self):
        deviations = compare_bench(
            "e16", {"speedup": 10.0}, {"csr_events_per_s": 1.0},
            tolerance=0.25)  # events/s is deliberately ungated
        assert deviations[0].status == MISSING
        assert deviations[0].failed

    def test_missing_current_file_fails(self):
        deviations = compare_bench("e16", {"speedup": 10.0}, None)
        assert deviations[0].status == MISSING

    def test_ungated_metrics_are_ignored(self):
        # Absolute throughput and wall-clock figures move with the
        # runner hardware, so only the ratio metrics are gated.
        deviations = compare_bench(
            "e16", {"csr_wall_s": 1.0, "csr_events_per_s": 5.0,
                    "speedup": 10.0},
            {"csr_wall_s": 99.0, "csr_events_per_s": 500.0,
             "speedup": 10.0})
        assert [d.metric for d in deviations] == ["speedup"]

    def test_unknown_bench_gates_nothing(self):
        assert compare_bench("e99", {"anything": 1.0},
                             {"anything": 0.0}) == []

    def test_baseline_without_the_gated_metric_is_skipped(self):
        # A baseline seeded before a gate was added must not fail.
        assert compare_bench("e19", {"total_spikes": 5.0},
                             {"speedup_bound": 4.0}) == []

    def test_per_metric_tolerance_overrides_the_gate_wide_one(self):
        # e19's stage_overhead_ratio carries a loose per-metric
        # tolerance (1.5): a 2x move passes where the gate-wide 25 %
        # would have failed it...
        deviations = compare_bench(
            "e19", {"speedup_bound": 4.0, "stage_overhead_ratio": 0.2},
            {"speedup_bound": 4.0, "stage_overhead_ratio": 0.4},
            tolerance=0.25)
        by_name = {d.metric: d for d in deviations}
        assert by_name["stage_overhead_ratio"].status == OK
        assert by_name["speedup_bound"].status == OK

    def test_per_metric_tolerance_still_gates(self):
        # ...but a 4x overhead blow-up regresses even the loose gate,
        # and a tight metric still uses the gate-wide tolerance.
        deviations = compare_bench(
            "e19", {"speedup_bound": 4.0, "stage_overhead_ratio": 0.2},
            {"speedup_bound": 2.0, "stage_overhead_ratio": 0.8},
            tolerance=0.25)
        by_name = {d.metric: d for d in deviations}
        assert by_name["stage_overhead_ratio"].status == REGRESSED
        assert by_name["speedup_bound"].status == REGRESSED


class TestRunGateAndMain:
    def _seed(self, baseline_dir, current_dir, current_speedup):
        write_bench(baseline_dir, "e16", {"speedup": 20.0})
        write_bench(current_dir, "e16", {"speedup": current_speedup})

    def test_passes_against_identical_current(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        current_dir = tmp_path / "current"
        baseline_dir.mkdir()
        current_dir.mkdir()
        self._seed(baseline_dir, current_dir, 20.0)
        status = main(["--baseline-dir", str(baseline_dir),
                       "--current-dir", str(current_dir)])
        out = capsys.readouterr().out
        assert status == 0
        assert "PASS" in out

    def test_fails_when_a_baseline_metric_is_perturbed(self, tmp_path,
                                                       capsys):
        baseline_dir = tmp_path / "baselines"
        current_dir = tmp_path / "current"
        baseline_dir.mkdir()
        current_dir.mkdir()
        # 20.0 -> 10.0 is a 50 % regression: well past the tolerance.
        self._seed(baseline_dir, current_dir, 10.0)
        status = main(["--baseline-dir", str(baseline_dir),
                       "--current-dir", str(current_dir)])
        out = capsys.readouterr().out
        assert status == 1
        assert "REGRESSED" in out
        assert "FAIL" in out

    def test_fails_when_the_current_file_is_absent(self, tmp_path, capsys):
        baseline_dir = tmp_path / "baselines"
        current_dir = tmp_path / "current"
        baseline_dir.mkdir()
        current_dir.mkdir()
        write_bench(baseline_dir, "e16", {"speedup": 20.0})
        status = main(["--baseline-dir", str(baseline_dir),
                       "--current-dir", str(current_dir)])
        assert status == 1
        assert "MISSING" in capsys.readouterr().out

    def test_no_baselines_is_a_pass(self, tmp_path, capsys):
        status = main(["--baseline-dir", str(tmp_path),
                       "--current-dir", str(tmp_path)])
        assert status == 0
        assert "nothing gated" in capsys.readouterr().out

    def test_bench_filter(self, tmp_path):
        baseline_dir = tmp_path / "baselines"
        current_dir = tmp_path / "current"
        baseline_dir.mkdir()
        current_dir.mkdir()
        self._seed(baseline_dir, current_dir, 10.0)   # a regression...
        write_bench(baseline_dir, "e17", {"speedup": 5.0})
        write_bench(current_dir, "e17", {"speedup": 5.0})
        deviations = run_gate(str(baseline_dir), str(current_dir),
                              benches=["e17"])        # ...filtered out
        assert all(not deviation.failed for deviation in deviations)

    def test_checked_in_baselines_cover_the_gated_benches(self):
        baseline_dir = os.path.join(os.path.dirname(__file__), os.pardir,
                                    "benchmarks", "baselines")
        seeded = {name[len("BENCH_"):-len(".json")]
                  for name in os.listdir(baseline_dir)
                  if name.startswith("BENCH_")}
        # The three trajectory benches are seeded; every seeded bench is
        # actually gated by a KEY_METRICS entry.
        assert {"e16", "e17", "e18"} <= seeded
        assert seeded <= set(KEY_METRICS)
