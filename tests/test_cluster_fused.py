"""Bit-identity and unit tests for the fused board engine.

The fused engine (:mod:`repro.cluster.fused`) is a performance
transform, not a new semantics: every run must be *bit-identical* to
the per-core :class:`~repro.cluster.shard.BoardEngine` — same spike
trains, same membrane voltages, same counters — whatever the neuron
model mix, worker count, lookahead depth or plasticity setting.  This
module pins that matrix and unit-tests the two structures the engine
leans on: the shared :class:`~repro.neuron.synapse.FusedDeferredEventBuffer`
ring and the :class:`~repro.compile.context.BoardDeliveryIndex` arena.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import ClusterApplication, ENGINES, FusedBoardEngine
from repro.cluster.shard import BoardEngine
from repro.compile.context import BoardDeliveryIndex
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import (
    Population,
    SpikeSourceArray,
    SpikeSourcePoisson,
)
from repro.neuron.stdp import STDPMechanism
from repro.neuron.synapse import (
    MAX_DELAY_TICKS,
    WEIGHT_SATURATION_NA,
    DeferredEventBuffer,
    FusedDeferredEventBuffer,
)
from repro.runtime.application import ApplicationResult
from repro.runtime.boot import BootController

SEED = 11


# ----------------------------------------------------------------------
# Fixtures: one machine, four representative networks
# ----------------------------------------------------------------------
def cluster_machine() -> SpiNNakerMachine:
    machine = SpiNNakerMachine(MachineConfig.multi_board(
        2, 2, board_width=4, board_height=3, cores_per_chip=4))
    BootController(machine, seed=1).boot()
    return machine


def lif_network() -> Network:
    """Poisson->LIF pairs chained in a ring (cross-board traffic)."""
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(3):
        stimulus = SpikeSourcePoisson(64, rate_hz=50.0,
                                      label="f-stim-%d" % pair)
        population = Population(64, "lif", label="f-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.3, weight=0.9,
                                                  delay_range=(1, 6)))
        excitatory.append(population)
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.15, weight=0.5,
                                                  delay_range=(1, 12)))
    return network


def izhikevich_network() -> Network:
    """Poisson->Izhikevich ring: exercises the quadratic block."""
    network = Network(seed=SEED)
    bursting = []
    for pair in range(3):
        stimulus = SpikeSourcePoisson(48, rate_hz=80.0,
                                      label="z-stim-%d" % pair)
        population = Population(48, "izhikevich", label="z-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.3, weight=1.4,
                                                  delay_range=(1, 6)))
        bursting.append(population)
    for index, population in enumerate(bursting):
        network.connect(population,
                        bursting[(index + 1) % len(bursting)],
                        FixedProbabilityConnector(0.15, weight=0.8,
                                                  delay_range=(1, 8)))
    return network


def mixed_network() -> Network:
    """LIF + Izhikevich + Poisson + array source + inhibition in one
    net: every engine path (both blocks, both scalar source kinds)."""
    network = Network(seed=SEED)
    poisson = SpikeSourcePoisson(48, rate_hz=60.0, label="m-stim")
    replay = SpikeSourceArray(
        [[float(t) for t in range(2 + (i % 5), 80, 7)] for i in range(48)],
        label="m-replay")
    excitatory = Population(96, "lif", label="m-exc")
    excitatory.bias_current_na = 0.15
    inhibitory = Population(48, "izhikevich", label="m-inh")
    excitatory.record(spikes=True)
    inhibitory.record(spikes=True)
    network.connect(poisson, excitatory,
                    FixedProbabilityConnector(0.25, weight=1.0,
                                              delay_range=(1, 8)))
    network.connect(replay, excitatory,
                    FixedProbabilityConnector(0.2, weight=0.7,
                                              delay_range=(1, 4)))
    network.connect(excitatory, inhibitory,
                    FixedProbabilityConnector(0.2, weight=0.8,
                                              delay_range=(1, 4)))
    network.connect(inhibitory, excitatory,
                    FixedProbabilityConnector(0.3, weight=-0.9))
    return network


def stdp_network() -> Network:
    """The LIF ring with a plasticity mechanism attached to its input
    projections — the cluster compiles plastic projections through the
    same decoded synaptic blocks, and both engines must agree."""
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(3):
        stimulus = SpikeSourcePoisson(64, rate_hz=50.0,
                                      label="p-stim-%d" % pair)
        population = Population(64, "lif", label="p-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.3, weight=0.9,
                                                  delay_range=(1, 6)),
                        plasticity=STDPMechanism(64, 64))
        excitatory.append(population)
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.15, weight=0.5,
                                                  delay_range=(1, 12)))
    return network


NETWORKS = {
    "lif": lif_network,
    "izhikevich": izhikevich_network,
    "mixed": mixed_network,
    "stdp": stdp_network,
}

DURATION_MS = 80.0


def run_cluster(name: str, engine: str, workers: int,
                lookahead) -> ApplicationResult:
    cluster = ClusterApplication(cluster_machine(), NETWORKS[name](),
                                 seed=SEED, max_neurons_per_core=32,
                                 workers=workers, lookahead=lookahead,
                                 engine=engine)
    result = cluster.run(DURATION_MS)
    assert cluster.report.engine == engine
    return result


_references = {}


def percore_reference(name: str, lookahead) -> ApplicationResult:
    """The serial per-core run every fused run must reproduce (cached:
    the per-core engine is worker-count independent by its own tests)."""
    key = (name, lookahead)
    if key not in _references:
        _references[key] = run_cluster(name, "percore", 1, lookahead)
    return _references[key]


def assert_bit_identical(fused: ApplicationResult,
                         reference: ApplicationResult) -> None:
    assert reference.total_spikes() > 0
    assert fused.spikes == reference.spikes
    assert set(fused.spike_counts) == set(reference.spike_counts)
    for label in reference.spike_counts:
        assert np.array_equal(fused.spike_counts[label],
                              reference.spike_counts[label])
    assert fused.synaptic_events == reference.synaptic_events
    assert fused.delivered_charge_na == reference.delivered_charge_na
    assert fused.packets_sent == reference.packets_sent


# ----------------------------------------------------------------------
# The bit-identity matrix: models x workers x lookahead x plasticity
# ----------------------------------------------------------------------
class TestFusedBitIdentity:
    @pytest.mark.parametrize("lookahead", [1, None])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("name", sorted(NETWORKS))
    def test_fused_matches_percore(self, name, workers, lookahead):
        fused = run_cluster(name, "fused", workers, lookahead)
        assert_bit_identical(fused, percore_reference(name, lookahead))

    def test_unmatched_packets_agree(self):
        """The fused none-leg bookkeeping must count exactly what the
        per-leg path counts (zero on a fully-matched network)."""
        fused = ClusterApplication(cluster_machine(), lif_network(),
                                   seed=SEED, max_neurons_per_core=32,
                                   engine="fused")
        percore = ClusterApplication(cluster_machine(), lif_network(),
                                     seed=SEED, max_neurons_per_core=32,
                                     engine="percore")
        fused.run(DURATION_MS)
        percore.run(DURATION_MS)
        assert fused.unmatched_packets == percore.unmatched_packets

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            ClusterApplication(cluster_machine(), lif_network(),
                               seed=SEED, engine="simd")
        cluster = ClusterApplication(cluster_machine(), lif_network(),
                                     seed=SEED, max_neurons_per_core=32)
        with pytest.raises(ValueError):
            cluster.run(10.0, engine="simd")

    def test_engines_registry(self):
        assert ENGINES["fused"] is FusedBoardEngine
        assert ENGINES["percore"] is BoardEngine


# ----------------------------------------------------------------------
# Tick-by-tick state equivalence (voltages, not just spikes)
# ----------------------------------------------------------------------
class TestFusedStateEquivalence:
    @staticmethod
    def single_board_engines():
        """Both engines over the same single-board context: every
        delivery is local, so the engines can be stepped standalone."""
        machine = SpiNNakerMachine(MachineConfig.multi_board(
            1, 1, board_width=4, board_height=3, cores_per_chip=4))
        BootController(machine, seed=1).boot()
        cluster = ClusterApplication(machine, mixed_network(), seed=SEED,
                                     max_neurons_per_core=32)
        cluster.prepare()
        (context,) = cluster.board_contexts.values()
        populations = cluster._populations()
        return (
            BoardEngine(context, populations, SEED, cluster.timestep_ms,
                        export_keys=set()),
            FusedBoardEngine(context, populations, SEED,
                             cluster.timestep_ms, export_keys=set()),
            context)

    def test_voltages_bit_identical_every_tick(self):
        percore, fused, context = self.single_board_engines()
        for tick in range(120):
            assert percore.step(tick) == []
            assert fused.step(tick) == []
            for core_index in range(len(context.cores)):
                reference = percore.core_voltages(core_index)
                voltages = fused.core_voltages(core_index)
                if reference is None:
                    assert voltages is None
                    continue
                assert np.array_equal(voltages, reference)
        assert fused.result.synaptic_events > 0
        assert fused.result.synaptic_events == percore.result.synaptic_events

    def test_prefetched_sources_change_nothing(self):
        percore, fused, context = self.single_board_engines()
        fused.prefetch_sources(59)
        for tick in range(90):
            percore.step(tick)
            fused.step(tick)
            # Re-prefetch mid-run: draws stay in tick order per stream.
            if tick == 70:
                fused.prefetch_sources(85)
        identical = assert_bit_identical
        identical(fused.finish(90.0).result, percore.finish(90.0).result)

    def test_stage_counters_cover_compute(self):
        percore, fused, _ = self.single_board_engines()
        for engine in (percore, fused):
            for tick in range(30):
                engine.step(tick)
            stages = engine.stage_s
            assert set(stages) == {"step", "local_apply", "remote_apply"}
            assert engine.compute_s == pytest.approx(
                sum(stages.values()))
            assert stages["step"] > 0.0
            assert engine.finish(30.0).stage_s == stages


# ----------------------------------------------------------------------
# The fused ring buffer
# ----------------------------------------------------------------------
class TestFusedDeferredEventBuffer:
    def test_ring_offsets_land_in_the_right_columns(self):
        ring = FusedDeferredEventBuffer(7)
        ring.add_events(np.array([0, 3, 6]), np.array([0.5, 1.0, 2.0]),
                        np.array([0, 0, 1]))
        now = ring.drain()
        assert np.array_equal(now, [0.5, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0])
        later = ring.drain()
        assert np.array_equal(later, [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0])
        assert ring.events_deferred == 3

    def test_matches_percore_rings_exactly(self):
        """One fused ring at per-core column offsets replays two
        per-core rings event for event, whatever the batch grouping."""
        rng = np.random.default_rng(3)
        widths = [5, 9]
        offsets = [0, 5]
        cores = [DeferredEventBuffer(width, MAX_DELAY_TICKS)
                 for width in widths]
        ring = FusedDeferredEventBuffer(sum(widths), MAX_DELAY_TICKS)
        for _ in range(40):
            cells, weights, delays = [], [], []
            for core, (buffer, width, base) in enumerate(
                    zip(cores, widths, offsets)):
                n = int(rng.integers(0, 12))
                targets = rng.integers(0, width, size=n)
                # Fixed-point weights: exact multiples of 2^-4.
                charge = rng.integers(-40, 40, size=n) / 16.0
                delay = rng.integers(1, MAX_DELAY_TICKS + 1, size=n)
                age = int(rng.integers(0, 2))
                buffer.add_events_aged(targets, charge, delay, age)
                cells.append(targets + base)
                weights.append(charge)
                delays.append(delay - age)
            ring.add_events(np.concatenate(cells), np.concatenate(weights),
                            np.concatenate(delays))
            row = ring.drain()
            split = np.concatenate([buffer.drain() for buffer in cores])
            assert np.array_equal(row, split)
        assert ring.events_deferred == sum(b.events_deferred for b in cores)

    def test_effective_delay_bounds_enforced(self):
        ring = FusedDeferredEventBuffer(4)
        with pytest.raises(ValueError, match="lookahead"):
            ring.add_events(np.array([0]), np.array([1.0]),
                            np.array([-1]))
        with pytest.raises(ValueError, match="lookahead"):
            ring.add_events(np.array([0]), np.array([1.0]),
                            np.array([MAX_DELAY_TICKS + 1]))
        with pytest.raises(IndexError):
            ring.add_events(np.array([4]), np.array([1.0]), np.array([0]))
        assert ring.pending_charge() == 0.0

    def test_empty_batch_is_a_no_op(self):
        ring = FusedDeferredEventBuffer(4)
        ring.add_events(np.zeros(0, dtype=np.intp), np.zeros(0),
                        np.zeros(0, dtype=np.intp))
        assert ring.events_deferred == 0

    def test_saturation_clamped_once_per_cell(self):
        ring = FusedDeferredEventBuffer(3)
        big = WEIGHT_SATURATION_NA * 0.75
        ring.add_events(np.array([1, 1]), np.array([big, big]),
                        np.array([0, 0]))
        assert ring.saturations == 1
        row = ring.drain()
        assert row[1] == WEIGHT_SATURATION_NA

    def test_reset_rewinds_everything(self):
        ring = FusedDeferredEventBuffer(3)
        ring.add_events(np.array([0]), np.array([1.0]), np.array([2]))
        ring.drain()
        ring.reset()
        assert ring.current_tick == 0
        assert ring.pending_charge() == 0.0
        assert ring.events_deferred == 0

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            FusedDeferredEventBuffer(0)
        with pytest.raises(ValueError):
            FusedDeferredEventBuffer(4, max_delay_ticks=0)


# ----------------------------------------------------------------------
# The board delivery index
# ----------------------------------------------------------------------
class TestBoardDeliveryIndex:
    @staticmethod
    def compiled_contexts():
        cluster = ClusterApplication(cluster_machine(), mixed_network(),
                                     seed=SEED, max_neurons_per_core=32)
        cluster.prepare()
        return cluster.board_contexts

    def test_built_by_the_shard_pass(self):
        for context in self.compiled_contexts().values():
            assert isinstance(context.delivery_index, BoardDeliveryIndex)

    def test_core_offsets_partition_the_board(self):
        for context in self.compiled_contexts().values():
            index = context.delivery_index
            sizes = [core.vertex.n_neurons for core in context.cores]
            assert index.total_neurons == sum(sizes)
            expected = np.concatenate([[0], np.cumsum(sizes)[:-1]])
            assert np.array_equal(index.core_offsets, expected)

    def test_slots_replay_every_leg(self):
        """For every key and a fan of spike batches, the arena gather
        must enumerate exactly the synapses the per-leg path walks —
        same board-flat targets, weights and delays."""
        rng = np.random.default_rng(5)
        checked = 0
        for context in self.compiled_contexts().values():
            index = context.delivery_index
            for key, legs in context.deliveries.items():
                n_pre = max((csr.n_pre for _, csr in legs
                             if csr is not None), default=1)
                for batch in range(3):
                    spiking = np.flatnonzero(rng.random(n_pre) < 0.4)
                    slots = index.slots_for(key, spiking)
                    per_leg = []
                    for core_index, csr in legs:
                        if csr is None:
                            continue
                        leg = csr.synapse_slots(spiking)
                        base = index.core_offsets[core_index]
                        per_leg.append(np.stack([
                            csr.targets[leg] + base,
                            csr.delay_ticks[leg],
                            (csr.weights[leg] * 16).astype(np.int64)]))
                    if not per_leg:
                        assert slots is None
                        continue
                    reference = np.concatenate(per_leg, axis=1)
                    fused = np.stack([
                        index.targets[slots],
                        index.delay_ticks[slots],
                        (index.weights[slots] * 16).astype(np.int64)])
                    # Leg merge reorders within a source row; compare as
                    # multisets of (target, delay, weight) synapses.
                    assert np.array_equal(
                        reference[:, np.lexsort(reference)],
                        fused[:, np.lexsort(fused)])
                    checked += 1
        assert checked > 0

    def test_unknown_key_has_no_slots(self):
        context = next(iter(self.compiled_contexts().values()))
        index = context.delivery_index
        assert index.slots_for(0x7FFFFFFF, np.array([0])) is None

    def test_none_legs_match_the_delivery_table(self):
        for context in self.compiled_contexts().values():
            index = context.delivery_index
            for key, legs in context.deliveries.items():
                matchless = sum(1 for _, csr in legs if csr is None)
                assert index.none_legs.get(key, 0) == matchless
