"""Tests for the information-theoretic estimators (Section 5.4)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.information import (
    channel_statistics,
    entropy,
    entropy_from_counts,
    joint_entropy,
    mutual_information,
    n_of_m_capacity_bits,
    population_sparseness,
    rank_order_capacity_bits,
    rate_code_capacity_bits,
    redundancy,
)


class TestEntropy:
    def test_empty_and_constant_sequences(self):
        assert entropy([]) == 0.0
        assert entropy(["a"] * 50) == 0.0

    def test_uniform_binary_is_one_bit(self):
        assert entropy([0, 1] * 100) == pytest.approx(1.0)

    def test_uniform_over_k_symbols_is_log2_k(self):
        samples = list(range(8)) * 10
        assert entropy(samples) == pytest.approx(3.0)

    def test_entropy_from_counts_ignores_zero_counts(self):
        assert entropy_from_counts([5, 5, 0, 0]) == pytest.approx(1.0)
        assert entropy_from_counts([0, 0]) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=9), min_size=1,
                    max_size=200))
    def test_entropy_bounds(self, samples):
        value = entropy(samples)
        assert 0.0 <= value <= math.log2(len(set(samples))) + 1e-9


class TestJointAndMutualInformation:
    def test_joint_entropy_requires_alignment(self):
        with pytest.raises(ValueError):
            joint_entropy([1, 2], [1])

    def test_identical_channels_share_all_information(self):
        stimulus = [0, 1, 2, 3] * 25
        assert mutual_information(stimulus, stimulus) == pytest.approx(
            entropy(stimulus))

    def test_independent_channels_share_nothing(self):
        rng = np.random.default_rng(0)
        stimulus = list(rng.integers(0, 4, 4000))
        response = list(rng.integers(0, 4, 4000))
        assert mutual_information(stimulus, response) < 0.02

    def test_deterministic_function_preserves_information(self):
        stimulus = [0, 1, 2, 3] * 30
        response = [s % 2 for s in stimulus]
        assert mutual_information(stimulus, response) == pytest.approx(1.0)

    def test_mutual_information_never_negative(self):
        assert mutual_information([1, 1, 2], [3, 4, 3]) >= 0.0

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 3)),
                    min_size=2, max_size=200))
    def test_mutual_information_bounded_by_marginals(self, pairs):
        stimulus = [p[0] for p in pairs]
        response = [p[1] for p in pairs]
        information = mutual_information(stimulus, response)
        assert information <= min(entropy(stimulus), entropy(response)) + 1e-9


class TestCodeCapacities:
    def test_n_of_m_matches_binomial(self):
        assert n_of_m_capacity_bits(2, 4) == pytest.approx(math.log2(6))
        assert n_of_m_capacity_bits(0, 10) == 0.0
        assert n_of_m_capacity_bits(10, 10) == 0.0

    def test_invalid_n_of_m_rejected(self):
        with pytest.raises(ValueError):
            n_of_m_capacity_bits(5, 4)
        with pytest.raises(ValueError):
            rank_order_capacity_bits(-1, 4)

    def test_rank_order_exceeds_unordered_n_of_m(self):
        # Section 5.4: the firing order conveys information beyond the
        # choice of the active subset.
        for n_active, population in [(3, 10), (8, 100), (20, 256)]:
            assert rank_order_capacity_bits(n_active, population) > \
                n_of_m_capacity_bits(n_active, population)

    def test_rank_order_equals_permutation_count(self):
        assert rank_order_capacity_bits(3, 5) == pytest.approx(
            math.log2(5 * 4 * 3))

    def test_rate_code_collapses_for_single_spike_windows(self):
        # "It is hard to estimate a firing rate from a single spike!"
        short = rate_code_capacity_bits(max_rate_hz=100.0, window_ms=10.0)
        long = rate_code_capacity_bits(max_rate_hz=100.0, window_ms=1000.0)
        assert short <= 1.1
        assert long > 5.0

    def test_rate_code_invalid_arguments(self):
        with pytest.raises(ValueError):
            rate_code_capacity_bits(-1.0, 100.0)
        with pytest.raises(ValueError):
            rate_code_capacity_bits(10.0, 100.0, rate_resolution_hz=0.0)


class TestRedundancyAndSparseness:
    def test_redundancy_of_duplicated_channels(self):
        channel = [0, 1, 0, 1, 1, 0] * 20
        assert redundancy([channel, list(channel)]) == pytest.approx(
            entropy(channel))

    def test_redundancy_of_independent_channels_is_small(self):
        rng = np.random.default_rng(3)
        channels = [list(rng.integers(0, 2, 3000)) for _ in range(3)]
        assert redundancy(channels) < 0.05

    def test_redundancy_validates_alignment(self):
        with pytest.raises(ValueError):
            redundancy([[1, 2, 3], [1, 2]])
        assert redundancy([]) == 0.0

    def test_sparseness_extremes(self):
        assert population_sparseness([0.0, 0.0, 5.0, 0.0]) == pytest.approx(1.0)
        assert population_sparseness([1.0, 1.0, 1.0, 1.0]) == pytest.approx(0.0)
        assert population_sparseness([]) == 0.0
        assert population_sparseness([0.0, 0.0]) == 0.0
        assert population_sparseness([3.0]) == 0.0

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=2,
                    max_size=50))
    def test_sparseness_always_in_unit_interval(self, activity):
        assert 0.0 <= population_sparseness(activity) <= 1.0 + 1e-9


class TestChannelStatistics:
    def test_empty_channel(self):
        stats = channel_statistics([])
        assert stats.n_samples == 0
        assert stats.entropy_bits == 0.0
        assert stats.most_common_symbol is None

    def test_statistics_of_skewed_channel(self):
        stats = channel_statistics(["a", "a", "a", "b"])
        assert stats.n_symbols == 2
        assert stats.n_samples == 4
        assert stats.most_common_symbol == "a"
        assert stats.most_common_fraction == pytest.approx(0.75)
        assert 0.0 < stats.entropy_bits < 1.0
