"""Unit tests for connectors, populations, projections, the reference
simulator and STDP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.neuron.connectors import (
    AllToAllConnector,
    DistanceDependentConnector,
    FixedProbabilityConnector,
    FromListConnector,
    OneToOneConnector,
)
from repro.neuron.izhikevich import IzhikevichParameters
from repro.neuron.lif import LIFParameters
from repro.neuron.network import Network
from repro.neuron.population import (
    Population,
    Projection,
    SpikeSourceArray,
    SpikeSourcePoisson,
)
from repro.neuron.stdp import STDPMechanism, STDPParameters
from repro.neuron.synapse import Synapse


class TestConnectors:
    def test_one_to_one_pairs_indices(self, rng):
        rows = OneToOneConnector(weight=2.0).build(5, 5, rng)
        assert all(rows[i][0].target == i for i in range(5))

    def test_one_to_one_truncates_to_smaller_population(self, rng):
        rows = OneToOneConnector().build(10, 3, rng)
        assert len(rows) == 3

    def test_all_to_all_counts(self, rng):
        rows = AllToAllConnector().build(4, 6, rng)
        assert sum(len(r) for r in rows.values()) == 24

    def test_all_to_all_no_self_connections(self, rng):
        rows = AllToAllConnector(allow_self_connections=False).build(4, 4, rng)
        assert all(s.target != pre for pre, row in rows.items() for s in row)

    def test_fixed_probability_density(self, rng):
        connector = FixedProbabilityConnector(p_connect=0.25)
        rows = connector.build(100, 100, rng)
        total = sum(len(r) for r in rows.values())
        assert 2000 < total < 3000

    def test_fixed_probability_zero_and_one(self, rng):
        assert sum(len(r) for r in
                   FixedProbabilityConnector(0.0).build(20, 20, rng).values()) == 0
        assert sum(len(r) for r in
                   FixedProbabilityConnector(1.0).build(20, 20, rng).values()) == 400

    def test_fixed_probability_delay_range_sampled(self, rng):
        connector = FixedProbabilityConnector(p_connect=1.0, delay_range=(2, 6))
        rows = connector.build(10, 10, rng)
        delays = {s.delay_ticks for row in rows.values() for s in row}
        assert delays <= set(range(2, 7))
        assert len(delays) > 1

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            FixedProbabilityConnector(p_connect=1.5)

    def test_distance_dependent_prefers_local_targets(self, rng):
        connector = DistanceDependentConnector(
            pre_shape=(8, 8), post_shape=(8, 8), sigma=1.0, max_distance=3.0,
            p_peak=1.0)
        rows = connector.build(64, 64, rng)
        # The centre neuron must connect to itself (distance zero) with the
        # minimum delay, and never beyond the cutoff distance.
        centre = 8 * 4 + 4
        targets = {s.target for s in rows[centre]}
        assert centre in targets
        for synapse in rows[centre]:
            target_position = (synapse.target // 8, synapse.target % 8)
            distance = np.hypot(target_position[0] - 4, target_position[1] - 4)
            assert distance <= 3.0

    def test_distance_dependent_delay_grows_with_distance(self, rng):
        connector = DistanceDependentConnector(
            pre_shape=(6, 6), post_shape=(6, 6), sigma=10.0, max_distance=5.0,
            p_peak=1.0, delay_per_unit_distance_ticks=2.0)
        rows = connector.build(36, 36, rng)
        centre = 6 * 3 + 3
        by_distance = {}
        for synapse in rows[centre]:
            position = (synapse.target // 6, synapse.target % 6)
            distance = round(np.hypot(position[0] - 3, position[1] - 3), 3)
            by_distance[distance] = synapse.delay_ticks
        assert by_distance[0.0] < by_distance[max(by_distance)]

    def test_distance_dependent_shape_validation(self, rng):
        connector = DistanceDependentConnector(pre_shape=(2, 2), post_shape=(2, 2))
        with pytest.raises(ValueError):
            connector.build(10, 4, rng)

    def test_from_list_connector(self, rng):
        connector = FromListConnector([(0, 1, 0.5, 2), (0, 2, -0.25, 3)])
        rows = connector.build(4, 4, rng)
        assert len(rows[0]) == 2
        with pytest.raises(IndexError):
            FromListConnector([(9, 0, 1.0, 1)]).build(4, 4, rng)


class TestPopulations:
    def test_model_selection_by_name(self):
        assert Population(5, "lif").model_name == "lif"
        assert Population(5, "izhikevich").model_name == "izhikevich"
        with pytest.raises(ValueError):
            Population(5, "hodgkin-huxley")

    def test_model_selection_by_parameters(self):
        assert Population(5, LIFParameters()).model_name == "lif"
        assert Population(5, IzhikevichParameters()).model_name == "izhikevich"
        with pytest.raises(TypeError):
            Population(5, model=3.14)

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            Population(0)

    def test_poisson_source_rate(self, rng):
        source = SpikeSourcePoisson(1000, rate_hz=100.0)
        spikes = source.spikes_for_tick(1.0, rng)
        assert 50 < spikes.sum() < 170

    def test_poisson_probability_is_exponential_not_linear(self):
        # Regression: rate * dt / 1000 is not a probability — it exceeds 1
        # for rates above 1 kHz at the 1 ms tick.
        assert SpikeSourcePoisson.spike_probability(100.0, 1.0) == \
            pytest.approx(1.0 - np.exp(-0.1))
        assert SpikeSourcePoisson.spike_probability(2000.0, 1.0) == \
            pytest.approx(1.0 - np.exp(-2.0))
        assert SpikeSourcePoisson.spike_probability(5000.0, 1.0) < 1.0
        assert SpikeSourcePoisson.spike_probability(1_000_000.0, 1.0) <= 1.0

    def test_poisson_source_saturates_below_one_spike_per_tick(self, rng):
        # A 5 kHz "rate" can at most fire every tick (1 kHz effective); the
        # old linear probability would have claimed p = 5.
        source = SpikeSourcePoisson(2000, rate_hz=5000.0)
        spikes = source.spikes_for_tick(1.0, rng)
        expected = 2000 * (1.0 - np.exp(-5.0))
        assert abs(spikes.sum() - expected) < 60

    def test_spike_source_array_replays_times(self):
        source = SpikeSourceArray([[0.5, 2.5], [], [1.5]])
        assert source.spikes_for_tick(0, 1.0).tolist() == [True, False, False]
        assert source.spikes_for_tick(1, 1.0).tolist() == [False, False, True]
        assert source.spikes_for_tick(2, 1.0).tolist() == [True, False, False]

    def test_projection_expansion_cached(self, rng):
        pre, post = Population(10, label="pre-cache"), Population(10, label="post-cache")
        projection = Projection(pre, post, FixedProbabilityConnector(0.5))
        first = projection.build_rows(rng)
        second = projection.build_rows(rng)
        assert first is second
        refreshed = projection.build_rows(rng, refresh=True)
        assert refreshed is not first


class TestNetworkSimulation:
    def test_duplicate_labels_rejected(self):
        network = Network()
        network.add_population(Population(5, label="duplicated"))
        with pytest.raises(ValueError):
            network.add_population(Population(5, label="duplicated"))

    def test_lookup_by_label(self):
        network = Network()
        population = Population(5, label="lookup-me")
        network.add_population(population)
        assert network.population("lookup-me") is population
        with pytest.raises(KeyError):
            network.population("missing")

    def test_connect_adds_endpoints(self):
        network = Network()
        a, b = Population(5, label="a"), Population(5, label="b")
        network.connect(a, b, OneToOneConnector())
        assert len(network.populations) == 2
        assert network.n_neurons == 10

    def test_feedforward_drive_produces_spikes(self):
        network = Network(seed=3)
        stimulus = SpikeSourcePoisson(50, rate_hz=100.0, label="stim")
        target = Population(50, "lif", label="target")
        target.record(spikes=True)
        network.connect(stimulus, target, OneToOneConnector(weight=5.0))
        result = network.run(200.0)
        assert result.total_spikes("target") > 0
        assert result.mean_rate_hz("target") > 0.0
        assert len(result.spikes["target"]) == result.total_spikes("target")

    def test_unconnected_population_stays_silent(self):
        network = Network(seed=4)
        silent = Population(20, "lif", label="silent")
        network.add_population(silent)
        result = network.run(100.0)
        assert result.total_spikes("silent") == 0

    def test_inhibition_reduces_activity(self):
        def build(inhibitory_weight):
            network = Network(seed=5)
            stimulus = SpikeSourcePoisson(50, rate_hz=120.0, label="stim")
            excitatory = Population(50, "lif", label="exc")
            inhibitory = Population(50, "lif", label="inh")
            network.connect(stimulus, excitatory, OneToOneConnector(weight=3.0))
            network.connect(stimulus, inhibitory, OneToOneConnector(weight=3.0))
            network.connect(inhibitory, excitatory,
                            FixedProbabilityConnector(0.3,
                                                      weight=inhibitory_weight))
            return network.run(200.0).total_spikes("exc")

        assert build(-3.0) < build(0.0)

    def test_voltage_recording_shape(self):
        network = Network(seed=6)
        population = Population(10, "lif", label="volts")
        population.record(spikes=False, voltages=True)
        population.bias_current_na = 1.0
        network.add_population(population)
        result = network.run(50.0)
        assert result.voltages["volts"].shape == (50, 10)

    def test_same_seed_reproduces_run(self):
        def run_once():
            network = Network(seed=42)
            stimulus = SpikeSourcePoisson(30, rate_hz=80.0, label="stim")
            target = Population(30, "lif", label="target")
            network.connect(stimulus, target, OneToOneConnector(weight=4.0))
            return network.run(100.0).total_spikes("target")

        assert run_once() == run_once()

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            Network().run(-1.0)

    def test_n_synapses_counts_all_projections(self, rng):
        network = Network(seed=1)
        a, b = Population(10, label="na"), Population(10, label="nb")
        network.connect(a, b, AllToAllConnector())
        network.connect(b, a, OneToOneConnector())
        assert network.n_synapses() == 110


class TestSTDP:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            STDPParameters(tau_plus_ms=0.0)
        with pytest.raises(ValueError):
            STDPParameters(w_min=1.0, w_max=0.5)

    def test_pre_before_post_potentiates(self):
        mechanism = STDPMechanism(1, 1)
        rows = {0: [Synapse(0, 1.0)]}
        pre = np.array([True]); none = np.array([False])
        post = np.array([True])
        mechanism.update(rows, pre, none, 0.0)     # pre fires at t=0
        mechanism.update(rows, np.array([False]), post, 1.0)  # post at t=1
        assert rows[0][0].weight > 1.0
        assert mechanism.potentiation_events == 1

    def test_post_before_pre_depresses(self):
        mechanism = STDPMechanism(1, 1)
        rows = {0: [Synapse(0, 1.0)]}
        mechanism.update(rows, np.array([False]), np.array([True]), 0.0)
        mechanism.update(rows, np.array([True]), np.array([False]), 1.0)
        assert rows[0][0].weight < 1.0
        assert mechanism.depression_events == 1

    def test_weights_stay_within_bounds(self):
        parameters = STDPParameters(a_plus=1.0, a_minus=1.0, w_min=0.0, w_max=2.0)
        mechanism = STDPMechanism(1, 1, parameters)
        rows = {0: [Synapse(0, 1.9)]}
        for _ in range(20):
            mechanism.update(rows, np.array([True]), np.array([False]), 0.0)
            mechanism.update(rows, np.array([False]), np.array([True]), 1.0)
        assert 0.0 <= rows[0][0].weight <= 2.0

    def test_mean_weight_helper(self):
        mechanism = STDPMechanism(2, 2)
        rows = {0: [Synapse(0, 1.0)], 1: [Synapse(1, 3.0)]}
        assert mechanism.mean_weight(rows) == pytest.approx(2.0)
        assert mechanism.mean_weight({}) == 0.0

    def test_stdp_in_network_changes_weights(self):
        network = Network(seed=9)
        stimulus = SpikeSourcePoisson(20, rate_hz=80.0, label="stdp-stim")
        target = Population(20, "lif", label="stdp-target")
        plasticity = STDPMechanism(20, 20)
        projection = network.connect(stimulus, target,
                                     OneToOneConnector(weight=3.0),
                                     plasticity=plasticity)
        network.run(300.0)
        rows = projection.build_rows(np.random.default_rng(9))
        weights = [s.weight for row in rows.values() for s in row]
        assert any(abs(w - 3.0) > 1e-6 for w in weights)
        assert plasticity.rows_modified > 0
