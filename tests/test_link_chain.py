"""Tests for the CHAIN on-chip fabric model (Section 5.1, reference [6])."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.link.chain import (
    ChainFabric,
    ChainLink,
    ChainStage,
    MergeArbiter,
)
from repro.link.codes import BITS_PER_SYMBOL


class TestChainStage:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChainStage(name="bad", forward_latency_ns=-1.0)
        with pytest.raises(ValueError):
            ChainStage(name="bad", cycle_time_ns=0.0)

    def test_defaults_are_positive(self):
        stage = ChainStage(name="s")
        assert stage.forward_latency_ns > 0
        assert stage.cycle_time_ns > 0


class TestChainLink:
    def test_needs_at_least_one_stage(self):
        with pytest.raises(ValueError):
            ChainLink("empty", [])

    def test_uniform_constructor_builds_n_stages(self):
        link = ChainLink.uniform("l", 4, stage_latency_ns=2.0, cycle_time_ns=3.0)
        assert len(link.stages) == 4
        assert link.forward_latency_ns == pytest.approx(8.0)
        assert link.cycle_time_ns == pytest.approx(3.0)

    def test_cycle_time_set_by_slowest_stage(self):
        stages = [ChainStage("fast", 1.0, 2.0), ChainStage("slow", 1.0, 7.0)]
        link = ChainLink("mixed", stages)
        assert link.cycle_time_ns == pytest.approx(7.0)

    def test_symbols_for_bits_includes_eop(self):
        link = ChainLink.uniform("l", 1)
        assert link.symbols_for_bits(0) == 1
        assert link.symbols_for_bits(BITS_PER_SYMBOL) == 2
        assert link.symbols_for_bits(40) == 40 // BITS_PER_SYMBOL + 1

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            ChainLink.uniform("l", 1).symbols_for_bits(-1)

    def test_transfer_time_grows_with_packet_size(self):
        link = ChainLink.uniform("l", 3)
        assert link.transfer_time_ns(72) > link.transfer_time_ns(40)

    def test_throughput_is_bits_per_cycle(self):
        link = ChainLink.uniform("l", 2, cycle_time_ns=2.0)
        assert link.throughput_mbit_per_s() == pytest.approx(
            BITS_PER_SYMBOL / 2.0 * 1e3)

    def test_back_to_back_packets_serialise(self):
        link = ChainLink.uniform("l", 2)
        _s1, first_done = link.accept(0.0, 40)
        start2, second_done = link.accept(0.0, 40)
        assert start2 > 0.0
        assert second_done > first_done

    def test_reset_occupancy_clears_busy_state(self):
        link = ChainLink.uniform("l", 2)
        link.accept(0.0, 40)
        link.reset_occupancy()
        start, _done = link.accept(0.0, 40)
        assert start == 0.0

    @settings(max_examples=50, deadline=None)
    @given(bits=st.integers(min_value=0, max_value=512),
           stages=st.integers(min_value=1, max_value=8))
    def test_transfer_time_is_at_least_fill_latency(self, bits, stages):
        link = ChainLink.uniform("l", stages)
        assert link.transfer_time_ns(bits) >= link.forward_latency_ns


class TestMergeArbiter:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            MergeArbiter("a", n_inputs=0)
        with pytest.raises(ValueError):
            MergeArbiter("a", n_inputs=2, decision_overhead_ns=-1.0)
        with pytest.raises(ValueError):
            MergeArbiter("a", n_inputs=2).request(0.0, -1.0)

    def test_uncontended_request_granted_after_overhead(self):
        arbiter = MergeArbiter("a", n_inputs=4, decision_overhead_ns=1.5)
        assert arbiter.request(10.0, 5.0) == pytest.approx(11.5)
        assert arbiter.mean_wait_ns == 0.0

    def test_contended_requests_wait_their_turn(self):
        arbiter = MergeArbiter("a", n_inputs=2, decision_overhead_ns=0.0)
        first = arbiter.request(0.0, 10.0)
        second = arbiter.request(0.0, 10.0)
        assert first == 0.0
        assert second == pytest.approx(10.0)
        assert arbiter.max_wait_ns == pytest.approx(10.0)
        assert arbiter.grants == 2

    def test_reset_clears_statistics(self):
        arbiter = MergeArbiter("a", n_inputs=2)
        arbiter.request(0.0, 5.0)
        arbiter.request(0.0, 5.0)
        arbiter.reset()
        assert arbiter.grants == 0
        assert arbiter.total_wait_ns == 0.0
        assert arbiter.mean_wait_ns == 0.0


class TestChainFabric:
    def _fabric(self, n_cores=4):
        initiators = ["core-%d" % i for i in range(n_cores)]
        return ChainFabric(initiators, ["router", "sdram"])

    def test_needs_initiators_and_targets(self):
        with pytest.raises(ValueError):
            ChainFabric([], ["router"])
        with pytest.raises(ValueError):
            ChainFabric(["core-0"], [])

    def test_unknown_endpoints_raise_key_error(self):
        fabric = self._fabric()
        with pytest.raises(KeyError):
            fabric.transfer("ghost", "router", 40)
        with pytest.raises(KeyError):
            fabric.transfer("core-0", "ghost", 40)

    def test_single_transfer_latency_matches_unloaded_estimate(self):
        fabric = self._fabric()
        record = fabric.transfer("core-0", "router", 40, now_ns=0.0)
        assert record.latency_ns == pytest.approx(
            fabric.unloaded_latency_ns("core-0", "router", 40))
        assert record.arbitration_wait_ns >= 0.0

    def test_contention_raises_latency(self):
        fabric = self._fabric(n_cores=8)
        solo = fabric.transfer("core-0", "router", 40, now_ns=0.0).latency_ns
        fabric.reset()
        records = [fabric.transfer("core-%d" % i, "router", 40, now_ns=0.0)
                   for i in range(8)]
        assert max(r.latency_ns for r in records) > solo
        summary = fabric.contention_summary()
        assert summary["transfers"] == 8.0
        assert summary["mean_arbitration_wait_ns"] > 0.0

    def test_independent_targets_do_not_contend(self):
        fabric = self._fabric()
        to_router = fabric.transfer("core-0", "router", 40, now_ns=0.0)
        to_sdram = fabric.transfer("core-1", "sdram", 40, now_ns=0.0)
        # With distinct targets neither transfer queues behind the other, so
        # both see exactly the unloaded latency of their path.
        assert to_router.latency_ns == pytest.approx(
            fabric.unloaded_latency_ns("core-0", "router", 40))
        assert to_sdram.latency_ns == pytest.approx(
            fabric.unloaded_latency_ns("core-1", "sdram", 40))

    def test_reset_clears_transfers_and_occupancy(self):
        fabric = self._fabric()
        fabric.transfer("core-0", "router", 40)
        fabric.reset()
        assert fabric.transfers == []
        assert fabric.contention_summary()["transfers"] == 0.0
        record = fabric.transfer("core-0", "router", 40, now_ns=0.0)
        assert record.latency_ns == pytest.approx(
            fabric.unloaded_latency_ns("core-0", "router", 40))

    def test_delivery_order_preserved_per_target(self):
        fabric = self._fabric(n_cores=6)
        records = [fabric.transfer("core-%d" % i, "router", 40, now_ns=float(i))
                   for i in range(6)]
        delivered = [r.delivered_ns for r in records]
        assert delivered == sorted(delivered)
