"""Unit tests for the phase converters and glitch injection (Fig 6, Sec 5.1)."""

from __future__ import annotations

import pytest

from repro.link.glitch import GlitchInjectionExperiment, _poisson_sample
from repro.link.phase_converter import (
    ConventionalPhaseConverter,
    ConverterStatus,
    TransitionSensingPhaseConverter,
)


def drive_clean_traffic(converter, n_symbols=20, period=2.0):
    for i in range(1, n_symbols + 1):
        converter.data_edge(i * period)
    return converter


class TestCleanOperation:
    def test_conventional_passes_clean_traffic(self):
        converter = drive_clean_traffic(ConventionalPhaseConverter())
        assert converter.trace.symbols_accepted == 20
        assert converter.trace.status is ConverterStatus.RUNNING

    def test_transition_sensing_passes_clean_traffic(self):
        converter = drive_clean_traffic(TransitionSensingPhaseConverter())
        assert converter.trace.symbols_accepted == 20
        assert converter.trace.status is ConverterStatus.RUNNING

    def test_no_corruption_without_glitches(self):
        for cls in (ConventionalPhaseConverter, TransitionSensingPhaseConverter):
            converter = drive_clean_traffic(cls())
            assert converter.trace.corrupt_symbols == 0
            assert not converter.trace.deadlocked

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ConventionalPhaseConverter(ack_delay=0.0)
        with pytest.raises(ValueError):
            TransitionSensingPhaseConverter(race_window_fraction=1.5)


class TestGlitchResponses:
    def test_conventional_idle_glitch_deadlocks(self):
        # A glitch pulse while the converter waits for data corrupts the
        # phase state; the next genuine transition is swallowed and the
        # link deadlocks — the failure mode the paper describes.
        converter = ConventionalPhaseConverter(ack_delay=1.0)
        converter.data_edge(2.0)
        converter.glitch_pulse(3.5)   # idle: previous ack completed at 3.0
        converter.data_edge(4.0)
        assert converter.trace.deadlocked
        assert converter.trace.status is ConverterStatus.DEADLOCKED

    def test_conventional_busy_glitch_only_corrupts(self):
        converter = ConventionalPhaseConverter(ack_delay=1.0)
        converter.data_edge(2.0)
        converter.glitch_pulse(2.5)   # busy: ack not due until 3.0
        converter.data_edge(4.0)
        assert not converter.trace.deadlocked
        assert converter.trace.corrupt_symbols == 1

    def test_transition_sensing_masks_busy_glitch(self):
        converter = TransitionSensingPhaseConverter(ack_delay=1.0)
        converter.data_edge(2.0)
        converter.glitch_pulse(2.5)
        converter.data_edge(4.0)
        assert converter.trace.glitches_masked == 1
        assert converter.trace.corrupt_symbols == 0
        assert not converter.trace.deadlocked

    def test_transition_sensing_idle_glitch_corrupts_but_flows(self):
        converter = TransitionSensingPhaseConverter(ack_delay=1.0)
        converter.data_edge(2.0)
        converter.glitch_pulse(3.5)   # idle: fires a spurious output
        converter.data_edge(4.0)      # masked, matched against the glitch
        converter.data_edge(6.0)      # normal operation resumes
        assert converter.trace.corrupt_symbols >= 1
        assert not converter.trace.deadlocked
        assert converter.trace.status is ConverterStatus.CORRUPTED

    def test_transition_sensing_race_window_deadlock(self):
        converter = TransitionSensingPhaseConverter(ack_delay=1.0,
                                                    race_window_fraction=0.01)
        converter.data_edge(2.0)
        converter.glitch_pulse(3.5)
        # The genuine edge lands within 1 % of the acknowledge re-enable
        # instant (ack due at 4.5): the enable latch misses it.
        converter.data_edge(4.4999)
        assert converter.trace.deadlocked

    def test_deadlocked_converter_swallows_further_data(self):
        converter = ConventionalPhaseConverter()
        converter.glitch_pulse(0.5)
        converter.data_edge(2.0)
        converter.data_edge(4.0)
        assert converter.trace.deadlocked
        assert converter.trace.swallowed_symbols == 2


class TestGlitchExperiment:
    def test_same_stimulus_for_both_circuits(self):
        experiment = GlitchInjectionExperiment(glitch_rate=0.1,
                                               symbols_per_trial=100, seed=1)
        outcomes = experiment.run(trials=20)
        assert outcomes["conventional"].trials == 20
        assert outcomes["transition-sensing"].trials == 20

    def test_conventional_deadlocks_far_more_often(self):
        experiment = GlitchInjectionExperiment(glitch_rate=0.05,
                                               symbols_per_trial=200, seed=3)
        outcomes = experiment.run(trials=100)
        conventional = outcomes["conventional"].deadlocks_per_glitch
        sensing = outcomes["transition-sensing"].deadlocks_per_glitch
        assert conventional > 0.2
        assert sensing < 0.01
        assert conventional > 50 * max(sensing, 1e-9)

    def test_reduction_factor_is_orders_of_magnitude(self):
        # The paper reports a factor of ~1,000; we require at least two
        # orders of magnitude so the check is robust to seed variation.
        experiment = GlitchInjectionExperiment(glitch_rate=0.05,
                                               symbols_per_trial=300, seed=7)
        factor = experiment.deadlock_reduction_factor(trials=150)
        assert factor >= 100.0

    def test_sensing_circuit_still_passes_data_with_errors(self):
        # "the circuit will keep passing data (albeit with errors) in the
        # presence of quite high levels of interference"
        experiment = GlitchInjectionExperiment(glitch_rate=0.3,
                                               symbols_per_trial=200, seed=11)
        outcomes = experiment.run(trials=50)
        sensing = outcomes["transition-sensing"]
        assert sensing.corrupted_runs > sensing.deadlocks

    def test_zero_glitch_rate_gives_clean_runs(self):
        experiment = GlitchInjectionExperiment(glitch_rate=0.0,
                                               symbols_per_trial=50, seed=2)
        outcomes = experiment.run(trials=10)
        for outcome in outcomes.values():
            assert outcome.deadlocks == 0
            assert outcome.clean_runs == 10

    def test_poisson_sampler_mean(self):
        import random
        rng = random.Random(0)
        samples = [_poisson_sample(4.0, rng) for _ in range(2000)]
        assert 3.7 < sum(samples) / len(samples) < 4.3
        assert _poisson_sample(0.0, rng) == 0

    def test_outcome_properties_on_empty(self):
        from repro.link.glitch import GlitchOutcome
        outcome = GlitchOutcome(circuit="x")
        assert outcome.deadlock_probability == 0.0
        assert outcome.deadlocks_per_glitch == 0.0
