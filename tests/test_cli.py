"""Tests for the ``spinnaker-repro`` command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_subcommand_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_boot_defaults(self):
        args = build_parser().parse_args(["boot"])
        assert args.command == "boot"
        assert args.width == 8 and args.height == 8

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "--width", "3", "--neurons", "50", "--duration", "20"])
        assert args.width == 3
        assert args.neurons == 50
        assert args.duration == pytest.approx(20.0)


class TestInfoCommand:
    def test_prints_headline_numbers(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "total_cores" in out
        assert "energy_efficiency_ratio" in out
        assert "pc_crossover_years" in out


class TestCodesCommand:
    def test_prints_code_comparison(self, capsys):
        assert main(["codes"]) == 0
        out = capsys.readouterr().out
        assert "2-of-7 NRZ" in out
        assert "throughput ratio" in out


class TestBootCommand:
    def test_small_boot_succeeds(self, capsys):
        status = main(["boot", "--width", "3", "--height", "3",
                       "--cores", "4", "--seed", "1"])
        out = capsys.readouterr().out
        assert status == 0
        assert "monitors elected:    9" in out
        assert "dead:                0" in out


class TestRunCommand:
    def test_small_run_reports_spikes(self, capsys):
        status = main(["run", "--width", "3", "--height", "3", "--cores", "6",
                       "--neurons", "40", "--neurons-per-core", "16",
                       "--duration", "50", "--seed", "3"])
        out = capsys.readouterr().out
        assert status == 0
        assert "spikes (excitatory):" in out
        assert "packets dropped:     0" in out


class TestTransportCommand:
    def test_demo_reports_identical_transports(self, capsys):
        status = main(["transport", "demo", "--chips", "9", "--neurons",
                       "128", "--neurons-per-core", "32", "--duration",
                       "30", "--seed", "11"])
        out = capsys.readouterr().out
        assert status == 0
        assert "equivalence verdict: IDENTICAL" in out
        assert "fabric" in out and "event" in out
        assert "events/s" in out

    def test_demo_rejects_tiny_arguments(self, capsys):
        assert main(["transport", "demo", "--chips", "2"]) == 2

    def test_demo_parser_defaults(self):
        args = build_parser().parse_args(["transport", "demo"])
        assert args.transport_command == "demo"
        assert args.chips == 16
        assert args.duration == pytest.approx(60.0)


class TestClusterCommand:
    def test_demo_reports_identical_shards(self, capsys):
        status = main(["cluster", "demo", "--boards", "2x1", "--pairs", "2",
                       "--neurons", "64", "--neurons-per-core", "32",
                       "--duration", "30", "--workers", "2"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Board topology" in out
        assert "worker-count independence: IDENTICAL" in out
        assert "unsharded-engine equivalence: IDENTICAL" in out
        assert "cross-board spikes" in out

    def test_demo_rejects_bad_board_grid(self, capsys):
        assert main(["cluster", "demo", "--boards", "two-by-two"]) == 2

    def test_demo_parser_defaults(self):
        args = build_parser().parse_args(["cluster", "demo"])
        assert args.cluster_command == "demo"
        assert args.boards == "2x2"
        assert args.workers == 2
        assert args.verify is True


class TestCompileCommand:
    def test_report_prints_pass_table_and_remap(self, capsys):
        status = main(["compile", "report", "--chips", "9", "--neurons",
                       "96", "--neurons-per-core", "32", "--seed", "5"])
        out = capsys.readouterr().out
        assert status == 0
        assert "Mapping-compiler report" in out
        assert "1 condemnation(s)" in out
        for name in ("partition", "place", "allocate-keys", "route",
                     "compress", "synaptic-matrices", "compile-transport"):
            assert name in out
        assert "hit rate" in out
        assert "entries_after_minimisation" in out

    def test_report_cold_compile_only(self, capsys):
        status = main(["compile", "report", "--chips", "9", "--neurons",
                       "64", "--neurons-per-core", "32", "--condemn", "0"])
        out = capsys.readouterr().out
        assert status == 0
        assert "0 condemnation(s)" in out

    def test_report_rejects_tiny_arguments(self, capsys):
        assert main(["compile", "report", "--chips", "2"]) == 2


class TestSaturationCommand:
    def test_full_machine_has_headroom(self, capsys):
        status = main(["saturation", "--width", "48", "--height", "48"])
        out = capsys.readouterr().out
        assert status == 0
        assert "headroom factor" in out
