"""Tests for the boot protocol and flood-fill loading (Section 5.2)."""

from __future__ import annotations

import pytest

from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.processor import ProcessorState
from repro.runtime.boot import BootController
from repro.runtime.flood_fill import ApplicationImage, FloodFillLoader


def make_machine(width=4, height=4, cores=6):
    return SpiNNakerMachine(MachineConfig(width=width, height=height,
                                          cores_per_chip=cores))


class TestFaultFreeBoot:
    def test_every_chip_boots_and_elects_one_monitor(self):
        machine = make_machine()
        result = BootController(machine, seed=1).boot()
        assert result.all_chips_operational
        assert result.chips_booted_unaided == machine.n_chips
        assert result.chips_repaired == 0
        for chip in machine:
            monitors = [c for c in chip.cores
                        if c.state is ProcessorState.MONITOR]
            assert len(monitors) == 1

    def test_coordinates_propagate_to_every_chip(self):
        machine = make_machine()
        BootController(machine, seed=1).boot()
        for coordinate, chip in machine.chips.items():
            assert chip.state.coordinates_known
            assert chip.assigned_coordinate == coordinate

    def test_p2p_tables_configured_everywhere(self):
        machine = make_machine()
        result = BootController(machine, seed=1).boot()
        assert result.p2p_tables_configured == machine.n_chips
        for chip in machine:
            assert chip.state.p2p_configured
            assert len(chip.p2p_table) == machine.n_chips

    def test_coordinate_flood_time_scales_with_diameter_not_size(self):
        # Load/boot time must grow with the mesh *diameter* (a few hops),
        # not with the chip count.
        small = make_machine(3, 3, 2)
        large = make_machine(8, 8, 2)
        small_result = BootController(small, seed=1).boot()
        large_result = BootController(large, seed=1).boot()
        ratio = (large_result.coordinate_flood_time_us /
                 small_result.coordinate_flood_time_us)
        chips_ratio = large.n_chips / small.n_chips   # ~7x
        assert ratio < chips_ratio / 2

    def test_boot_statistics_counts(self):
        machine = make_machine(3, 3, 4)
        result = BootController(machine, seed=1).boot()
        assert result.n_chips == 9
        assert result.monitors_elected == 9
        assert result.failed_cores == 0
        assert result.nn_packets_sent > 0


class TestBootWithFaults:
    def test_failed_cores_do_not_become_monitor(self):
        machine = make_machine()
        result = BootController(machine, core_failure_probability=0.2,
                                seed=5).boot()
        assert result.failed_cores > 0
        for chip in machine:
            if chip.monitor_core_id is not None:
                assert chip.monitor.state is ProcessorState.MONITOR
                assert chip.monitor.is_available

    def test_neighbours_repair_boot_failed_chips(self):
        machine = make_machine()
        result = BootController(machine, chip_boot_failure_probability=0.3,
                                repairable_fraction=1.0, seed=7).boot()
        assert result.chips_repaired > 0
        assert result.chips_dead == 0
        assert result.all_chips_operational

    def test_unrepairable_chips_stay_dead(self):
        machine = make_machine()
        result = BootController(machine, chip_boot_failure_probability=0.5,
                                repairable_fraction=0.0, seed=9).boot()
        assert result.chips_dead > 0
        assert not result.all_chips_operational
        dead = [chip for chip in machine if chip.state.boot_failed]
        assert len(dead) == result.chips_dead

    def test_boot_deterministic_for_seed(self):
        first = BootController(make_machine(), chip_boot_failure_probability=0.2,
                               core_failure_probability=0.05, seed=11).boot()
        second = BootController(make_machine(), chip_boot_failure_probability=0.2,
                                core_failure_probability=0.05, seed=11).boot()
        assert first.chips_repaired == second.chips_repaired
        assert first.failed_cores == second.failed_cores

    def test_invalid_probabilities_rejected(self):
        machine = make_machine(2, 2, 2)
        with pytest.raises(ValueError):
            BootController(machine, core_failure_probability=1.5)
        with pytest.raises(ValueError):
            BootController(machine, chip_boot_failure_probability=-0.1)


class TestFloodFill:
    def _booted(self, width=4, height=4):
        machine = make_machine(width, height, 4)
        BootController(machine, seed=1).boot()
        return machine

    def test_every_chip_receives_whole_image(self):
        machine = self._booted()
        result = FloodFillLoader(machine).load(ApplicationImage(n_blocks=6))
        assert result.complete
        assert result.chips_complete == machine.n_chips
        for chip in machine:
            assert chip.state.application_loaded

    def test_load_requires_booted_origin(self):
        machine = make_machine(2, 2, 2)
        with pytest.raises(RuntimeError):
            FloodFillLoader(machine).load(ApplicationImage())

    def test_application_loaded_into_itcm(self):
        machine = self._booted(2, 2)
        FloodFillLoader(machine).load(ApplicationImage(n_blocks=4,
                                                       block_words=64))
        for chip in machine:
            for core in chip.working_cores:
                assert core.itcm_used > 0

    def test_redundancy_increases_copies_received(self):
        low = FloodFillLoader(self._booted(), redundancy=1).load(
            ApplicationImage(n_blocks=4))
        high = FloodFillLoader(self._booted(), redundancy=3).load(
            ApplicationImage(n_blocks=4))
        assert high.mean_copies_received > low.mean_copies_received
        assert high.nn_packets_sent > low.nn_packets_sent

    def test_load_time_nearly_independent_of_machine_size(self):
        # The headline claim of [15]: flood-fill load time is set by the
        # image size plus a small diameter term, not by the chip count.
        small = FloodFillLoader(self._booted(3, 3)).load(
            ApplicationImage(n_blocks=8))
        large = FloodFillLoader(self._booted(8, 8)).load(
            ApplicationImage(n_blocks=8))
        chips_ratio = (8 * 8) / (3 * 3)
        time_ratio = large.load_time_us / small.load_time_us
        assert time_ratio < chips_ratio / 2
        assert time_ratio < 2.5

    def test_load_time_scales_with_image_size(self):
        machine = self._booted(3, 3)
        small_image = FloodFillLoader(machine).load(ApplicationImage(n_blocks=2))
        machine2 = self._booted(3, 3)
        large_image = FloodFillLoader(machine2).load(ApplicationImage(n_blocks=16))
        assert large_image.load_time_us > small_image.load_time_us

    def test_dead_chips_are_not_counted_as_targets(self):
        machine = make_machine(3, 3, 4)
        boot = BootController(machine, chip_boot_failure_probability=0.4,
                              repairable_fraction=0.0, seed=0).boot()
        assert machine.origin.state.booted
        assert boot.chips_dead > 0
        result = FloodFillLoader(machine).load(ApplicationImage(n_blocks=4))
        booted = sum(1 for chip in machine if chip.state.booted)
        assert result.n_chips == booted
        assert result.n_chips < machine.n_chips

    def test_invalid_parameters_rejected(self):
        machine = self._booted(2, 2)
        with pytest.raises(ValueError):
            FloodFillLoader(machine, redundancy=0)
        with pytest.raises(ValueError):
            ApplicationImage(n_blocks=0)
