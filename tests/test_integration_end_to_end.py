"""End-to-end integration tests: boot -> load -> map -> run -> inspect.

These tests exercise the whole stack the way the examples do, and pin the
paper's system-level claims at small scale: real-time delivery, graceful
behaviour under link failure, and host visibility of the machine state.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import latency_by_distance, latency_summary
from repro.analysis.traffic import link_traffic_summary
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.fault.injection import FaultInjector
from repro.host.host_system import HostSystem
from repro.neuron.connectors import FixedProbabilityConnector, OneToOneConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController
from repro.runtime.flood_fill import ApplicationImage, FloodFillLoader
from repro.runtime.monitor import MonitorService


def full_stack(width=4, height=4, cores=6, seed=77):
    machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                             cores_per_chip=cores))
    boot = BootController(machine, seed=seed).boot()
    load = FloodFillLoader(machine).load(ApplicationImage(n_blocks=4))

    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(60, rate_hz=60.0, label="e2e-stim")
    excitatory = Population(120, "lif", label="e2e-exc")
    inhibitory = Population(30, "lif", label="e2e-inh")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(0.2, weight=0.8,
                                              delay_range=(1, 8)))
    network.connect(excitatory, inhibitory,
                    FixedProbabilityConnector(0.1, weight=0.5))
    network.connect(inhibitory, excitatory,
                    FixedProbabilityConnector(0.2, weight=-0.4))
    application = NeuralApplication(machine, network,
                                    max_neurons_per_core=16, seed=seed)
    return machine, boot, load, network, application


class TestFullStack:
    def test_boot_load_run_pipeline(self):
        machine, boot, load, network, application = full_stack()
        assert boot.all_chips_operational
        assert load.complete
        result = application.run(200.0)
        assert result.total_spikes("e2e-exc") > 0
        assert result.packets_dropped == 0
        assert application.unmatched_packets == 0

    def test_real_time_deadline_met_across_distances(self):
        machine, _, _, _, application = full_stack(width=5, height=5)
        result = application.run(200.0)
        summary = latency_summary(result.delivery_latencies_us)
        assert summary.max_us < 1000.0
        by_distance = latency_by_distance(result.delivery_latencies_us,
                                          result.delivery_distances)
        # Latency grows with distance but stays far below the deadline even
        # at the largest observed distance.
        assert all(group.max_us < 1000.0 for group in by_distance.values())

    def test_host_sees_consistent_machine_state(self):
        machine, _, _, _, application = full_stack()
        application.run(50.0)
        host = HostSystem(machine)
        survey = host.survey_machine()
        assert survey["booted"] == machine.n_chips
        assert survey["application_loaded"] == machine.n_chips
        diagnostics = host.router_diagnostics(ChipCoordinate(0, 0))
        assert diagnostics["multicast_routed"] >= 0

    def test_link_failure_mid_run_is_tolerated(self):
        machine, _, _, _, application = full_stack(seed=78)
        application.run(100.0)
        delivered_before = len(application.result.delivery_latencies_us)
        dropped_before = machine.total_dropped_packets()

        injector = FaultInjector(machine, seed=1)
        injector.fail_random_links(0.05)
        application.run(100.0)

        delivered_after = len(application.result.delivery_latencies_us)
        dropped_after = machine.total_dropped_packets()
        total_sent = application.result.packets_sent

        # Traffic keeps flowing after the failures...
        assert delivered_after > delivered_before
        # ...and the loss rate stays small because emergency routing
        # redirects around the failed links.
        assert (dropped_after - dropped_before) <= 0.05 * max(total_sent, 1)

    def test_monitor_mitigation_reduces_emergency_load(self):
        machine, _, _, _, application = full_stack(seed=79)
        injector = FaultInjector(machine, seed=2)
        injector.fail_random_links(0.05)
        application.run(100.0)
        monitor = MonitorService(machine, emergency_threshold=1)
        report = monitor.process_mailboxes()
        if report.emergency_notifications:
            assert report.links_rerouted >= 1

    def test_traffic_statistics_available(self):
        machine, _, _, _, application = full_stack()
        application.run(100.0)
        summary = link_traffic_summary(machine)
        assert summary.total_packets > 0
        assert summary.active_links > 0
        assert summary.refused_packets >= 0

    def test_reference_and_machine_agree_on_network_scale(self):
        machine, _, _, network, application = full_stack(seed=80)
        machine_result = application.run(300.0)

        reference_network = Network(seed=80)
        stimulus = SpikeSourcePoisson(60, rate_hz=60.0, label="ref-stim")
        excitatory = Population(120, "lif", label="ref-exc")
        inhibitory = Population(30, "lif", label="ref-inh")
        excitatory.record()
        reference_network.connect(stimulus, excitatory,
                                  FixedProbabilityConnector(0.2, weight=0.8,
                                                            delay_range=(1, 8)))
        reference_network.connect(excitatory, inhibitory,
                                  FixedProbabilityConnector(0.1, weight=0.5))
        reference_network.connect(inhibitory, excitatory,
                                  FixedProbabilityConnector(0.2, weight=-0.4))
        reference_result = reference_network.run(300.0)

        machine_rate = machine_result.mean_rate_hz("e2e-exc")
        reference_rate = reference_result.mean_rate_hz("ref-exc")
        assert machine_rate > 0 and reference_rate > 0
        assert abs(machine_rate - reference_rate) / reference_rate < 0.5


class TestVirtualisedTopology:
    def test_round_robin_and_locality_placements_give_same_behaviour(self):
        # Section 3.2: any neuron can be mapped to any processor; the
        # placement strategy changes traffic, not function.
        rates = {}
        traffic = {}
        for strategy in ("locality", "round-robin"):
            machine = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                                     cores_per_chip=6))
            BootController(machine, seed=3).boot()
            network = Network(seed=81)
            stimulus = SpikeSourcePoisson(40, rate_hz=80.0,
                                          label="vt-stim-%s" % strategy)
            target = Population(80, "lif", label="vt-exc-%s" % strategy)
            target.record()
            network.connect(stimulus, target,
                            OneToOneConnector(weight=5.0))
            network.connect(target, target,
                            FixedProbabilityConnector(0.05, weight=0.2))
            application = NeuralApplication(machine, network,
                                            max_neurons_per_core=8,
                                            placement_strategy=strategy,
                                            seed=81)
            result = application.run(200.0)
            rates[strategy] = result.mean_rate_hz("vt-exc-%s" % strategy)
            traffic[strategy] = link_traffic_summary(machine).total_packets

        assert rates["locality"] > 0
        difference = abs(rates["locality"] - rates["round-robin"])
        assert difference / rates["locality"] < 0.35
        # Locality-aware placement must not use more link bandwidth than
        # scattering the vertices across the machine.
        assert traffic["locality"] <= traffic["round-robin"]
