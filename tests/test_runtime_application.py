"""Tests for the on-machine event-driven neural application (Fig 7, Sec 5.3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import latency_summary
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector, OneToOneConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourceArray, SpikeSourcePoisson
from repro.runtime.application import ApplicationResult, NeuralApplication
from repro.runtime.boot import BootController


def machine_with_boot(width=3, height=3, cores=6):
    machine = SpiNNakerMachine(MachineConfig(width=width, height=height,
                                             cores_per_chip=cores))
    BootController(machine, seed=1).boot()
    return machine


def feedforward_network(seed=21, n=40, rate=80.0, weight=5.0):
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(n, rate_hz=rate, label="ff-stim")
    target = Population(n, "lif", label="ff-target")
    target.record(spikes=True)
    network.connect(stimulus, target, OneToOneConnector(weight=weight,
                                                        delay_ticks=1))
    return network


class TestMappingAndExecution:
    def test_application_produces_spikes(self):
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=2)
        result = application.run(100.0)
        assert result.total_spikes("ff-target") > 0
        assert result.packets_sent > 0

    def test_all_spike_packets_matched_to_synaptic_rows(self):
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=2)
        application.run(50.0)
        assert application.unmatched_packets == 0

    def test_delivery_latency_well_under_one_millisecond(self):
        # Section 5.3: "the communications fabric is designed to deliver mc
        # packets in significantly under 1 ms, whatever the distance".
        machine = machine_with_boot(4, 4, 6)
        application = NeuralApplication(machine, feedforward_network(n=60),
                                        max_neurons_per_core=8, seed=3)
        result = application.run(100.0)
        summary = latency_summary(result.delivery_latencies_us)
        assert summary.count > 100
        assert summary.max_us < 1000.0
        assert summary.p99_us < 200.0

    def test_no_packets_dropped_in_light_load(self):
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=4)
        result = application.run(100.0)
        assert result.packets_dropped == 0
        assert result.within_deadline_fraction(1000.0) == 1.0

    def test_on_machine_rate_close_to_reference_simulator(self):
        # The on-machine execution and the host reference simulator share
        # neuron models and soft-delay semantics, so their mean firing
        # rates for the same network and seed must agree closely.
        network_machine = feedforward_network(seed=33)
        network_reference = feedforward_network(seed=33)

        reference = network_reference.run(400.0)
        machine = machine_with_boot()
        application = NeuralApplication(machine, network_machine,
                                        max_neurons_per_core=16, seed=33)
        on_machine = application.run(400.0)

        reference_rate = reference.mean_rate_hz("ff-target")
        machine_rate = on_machine.mean_rate_hz("ff-target")
        assert reference_rate > 0
        assert abs(machine_rate - reference_rate) / reference_rate < 0.35

    def test_recurrent_network_runs_and_delivers(self):
        machine = machine_with_boot(4, 4, 6)
        network = Network(seed=8)
        stimulus = SpikeSourcePoisson(50, rate_hz=60.0, label="rec-stim")
        excitatory = Population(100, "lif", label="rec-exc")
        excitatory.record()
        network.connect(stimulus, excitatory,
                        FixedProbabilityConnector(0.2, weight=0.8,
                                                  delay_range=(1, 8)))
        network.connect(excitatory, excitatory,
                        FixedProbabilityConnector(0.05, weight=0.3))
        application = NeuralApplication(machine, network,
                                        max_neurons_per_core=16, seed=8)
        result = application.run(150.0)
        assert result.total_spikes("rec-exc") > 0
        assert result.packets_dropped == 0

    def test_spike_source_array_replayed_on_machine(self):
        machine = machine_with_boot(2, 2, 4)
        network = Network(seed=5)
        times = [[5.0, 20.0], [10.0]]
        source = SpikeSourceArray(times, label="arr-src")
        target = Population(2, "lif", label="arr-target")
        target.record()
        network.connect(source, target, OneToOneConnector(weight=10.0))
        application = NeuralApplication(machine, network,
                                        max_neurons_per_core=4, seed=5)
        result = application.run(50.0)
        # Three source spikes must produce exactly three packets.
        assert result.packets_sent >= 3
        assert result.total_spikes("arr-target") >= 1

    def test_spike_records_use_global_indices(self):
        machine = machine_with_boot()
        network = feedforward_network(n=40)
        application = NeuralApplication(machine, network,
                                        max_neurons_per_core=8, seed=6)
        result = application.run(100.0)
        neurons = {neuron for _, neuron in result.spikes["ff-target"]}
        assert max(neurons) >= 8   # beyond the first vertex slice

    def test_negative_duration_rejected(self):
        machine = machine_with_boot(2, 2, 4)
        application = NeuralApplication(machine, feedforward_network(n=8),
                                        max_neurons_per_core=8)
        application.prepare()
        with pytest.raises(ValueError):
            application.run(-1.0)

    def test_result_helpers(self):
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=7)
        result = application.run(100.0)
        assert result.total_spikes() >= result.total_spikes("ff-target")
        assert result.mean_delivery_latency_us() <= result.max_delivery_latency_us()


class TestPrepareReentrancy:
    def test_second_prepare_is_a_guarded_no_op(self):
        # Regression: a second prepare() used to run the whole tool-chain
        # again, double-appending core runtimes (every vertex then fired
        # twice per timer tick) and re-seeding the per-core generators
        # from a fresh stream.
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=2)
        application.prepare()
        n_runtimes = len(application.core_runtimes)
        placement = application.placement
        keys = application.keys
        application.prepare()
        assert len(application.core_runtimes) == n_runtimes
        assert application.placement is placement
        assert application.keys is keys
        result = application.run(50.0)
        assert result.total_spikes("ff-target") > 0

    def test_run_after_explicit_prepare_matches_implicit(self):
        def outcome(explicit):
            machine = machine_with_boot()
            application = NeuralApplication(machine, feedforward_network(),
                                            max_neurons_per_core=16, seed=2,
                                            stagger_us=0.0)
            if explicit:
                application.prepare()
                application.prepare()
            return application.run(60.0)
        implicit, explicit = outcome(False), outcome(True)
        assert implicit.spikes == explicit.spikes
        assert implicit.packets_sent == explicit.packets_sent


class TestPerCoreRNGDerivation:
    def test_spike_trains_independent_of_placement_iteration_order(self):
        # The per-core generators are derived from (chip, core) via the
        # shared seed-sequence family, not from the iteration order of
        # placement.locations — so a tool-chain that happens to iterate
        # the dict differently builds the exact same machine state.
        from repro.mapping.placement import Placer

        def run(reverse):
            original = Placer.place

            def reversed_place(self, network, partition=None):
                placement = original(self, network, partition)
                if reverse:
                    placement.locations = dict(
                        reversed(list(placement.locations.items())))
                return placement

            Placer.place = reversed_place
            try:
                machine = machine_with_boot()
                application = NeuralApplication(
                    machine, feedforward_network(), max_neurons_per_core=8,
                    seed=9, stagger_us=0.0)
                return application.run(80.0)
            finally:
                Placer.place = original

        forward, backward = run(False), run(True)
        for label in forward.spike_counts:
            assert np.array_equal(forward.spike_counts[label],
                                  backward.spike_counts[label])
        for label in forward.spikes:
            assert (sorted(forward.spikes[label])
                    == sorted(backward.spikes[label]))

    def test_same_core_gets_same_stream_across_placement_strategies(self):
        # Determinism across strategies: whatever strategy placed a
        # vertex on a core, that core's generator is a pure function of
        # the seed and its coordinates.
        from repro.neuron.population import core_rng
        machines = {}
        for strategy in ("locality", "round-robin"):
            machine = machine_with_boot()
            application = NeuralApplication(
                machine, feedforward_network(), max_neurons_per_core=8,
                seed=11, placement_strategy=strategy, stagger_us=0.0)
            application.prepare()
            machines[strategy] = {
                (r.chip_coordinate, r.core.core_id): r
                for r in application.core_runtimes}
        shared = set(machines["locality"]) & set(machines["round-robin"])
        assert shared
        for chip, core in shared:
            expected = core_rng(11, chip.x, chip.y, core)
            probes = [core_rng(11, chip.x, chip.y, core).random(4)
                      for _ in range(2)]
            assert np.array_equal(probes[0], probes[1])
            assert np.array_equal(expected.random(4), probes[0])

    def test_seeded_runs_are_reproducible(self):
        def run():
            machine = machine_with_boot()
            application = NeuralApplication(machine, feedforward_network(),
                                            max_neurons_per_core=8, seed=13)
            return application.run(80.0)
        first, second = run(), run()
        assert first.spikes == second.spikes
        assert first.delivered_charge_na == second.delivered_charge_na


class TestApplicationResultEdgeCases:
    def test_empty_run_latency_statistics(self):
        result = ApplicationResult(duration_ms=0.0)
        assert result.within_deadline_fraction() == 1.0
        assert result.within_deadline_fraction(0.0) == 1.0
        assert result.mean_delivery_latency_us() == 0.0
        assert result.max_delivery_latency_us() == 0.0
        assert len(result.delivery_latencies_us) == 0
        assert len(result.delivery_distances) == 0

    def test_total_spikes_unknown_label_raises(self):
        result = ApplicationResult(duration_ms=10.0)
        result.spike_counts["known"] = np.zeros(4, dtype=int)
        with pytest.raises(KeyError, match="unknown population label"):
            result.total_spikes("unknown")
        assert result.total_spikes("known") == 0
        assert result.total_spikes() == 0

    def test_record_delivery_batch_matches_scalar_records(self):
        batched = ApplicationResult(duration_ms=10.0)
        scalar = ApplicationResult(duration_ms=10.0)
        batched.record_delivery_batch(12.5, 3, count=4)
        for _ in range(4):
            scalar.record_delivery(12.5, 3)
        assert np.array_equal(batched.delivery_latencies_us,
                              scalar.delivery_latencies_us)
        assert np.array_equal(batched.delivery_distances,
                              scalar.delivery_distances)
        assert batched.within_deadline_fraction(12.5) == 1.0
        assert batched.within_deadline_fraction(12.0) == 0.0

    def test_delivery_without_distance_stays_aligned(self):
        from repro.runtime.application import UNKNOWN_DISTANCE

        result = ApplicationResult(duration_ms=10.0)
        result.record_delivery(4.0)
        result.record_delivery(8.0, distance=2)
        # A sourceless packet records the sentinel, never desynchronizing
        # the latency/distance pairing.
        assert len(result.delivery_latencies_us) == 2
        assert len(result.delivery_distances) == 2
        assert list(result.delivery_distances) == [UNKNOWN_DISTANCE, 2]
        assert result.mean_delivery_latency_us() == pytest.approx(6.0)


class TestEventModelAccounting:
    def test_cores_spend_time_in_handlers_and_sleep(self):
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=9)
        application.run(100.0)
        busy = [runtime.core.busy_time_us for runtime in application.core_runtimes]
        assert all(b > 0 for b in busy)
        elapsed = machine.kernel.now
        assert all(core_busy < elapsed for core_busy in busy)

    def test_timer_invocations_match_duration(self):
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=10)
        application.run(100.0)
        for runtime in application.core_runtimes:
            assert 95 <= runtime.core.handler_invocations["timer"] <= 101

    def test_dma_traffic_generated_by_spike_packets(self):
        machine = machine_with_boot()
        application = NeuralApplication(machine, feedforward_network(),
                                        max_neurons_per_core=16, seed=11)
        result = application.run(100.0)
        dma_transfers = sum(runtime.core.dma.completed_transfers
                            for runtime in application.core_runtimes)
        assert dma_transfers > 0
        assert dma_transfers == len(result.delivery_latencies_us)
