"""Tests for the multi-board sharded simulation (``repro.cluster``).

Covers the board-aware machine model, the ShardByBoard compile pass,
the sharded runner's two core guarantees (worker-count independence and
equivalence with the unsharded on-machine engine), the inter-board
accounting, board-aligned allocation and the merged-result semantics.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.alloc.partition import MachinePartitioner
from repro.cluster import BoardTopology, ClusterApplication
from repro.compile import MappingPipeline
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import (
    DEFAULT_INTER_BOARD_LATENCY_US,
    DEFAULT_LINK_LATENCY_US,
    MachineConfig,
    SpiNNakerMachine,
)
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import ApplicationResult, NeuralApplication
from repro.runtime.boot import BootController

SEED = 7


def chained_network(pairs: int = 4, neurons: int = 96) -> Network:
    """Stimulus->excitatory pairs chained in a ring (forces cross-board
    projections however the placer tiles the pairs)."""
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(pairs):
        stimulus = SpikeSourcePoisson(neurons, rate_hz=40.0,
                                      label="t-stim-%d" % pair)
        population = Population(neurons, "lif", label="t-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.3, weight=0.9,
                                                  delay_range=(1, 6)))
        excitatory.append(population)
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.15, weight=0.5,
                                                  delay_range=(1, 12)))
    return network


def small_cluster_machine() -> SpiNNakerMachine:
    machine = SpiNNakerMachine(MachineConfig.multi_board(
        2, 2, board_width=4, board_height=3, cores_per_chip=4))
    BootController(machine, seed=1).boot()
    return machine


# ----------------------------------------------------------------------
# Board-aware machine model
# ----------------------------------------------------------------------
class TestBoardGeometry:
    def test_single_board_default(self):
        config = MachineConfig(width=8, height=8)
        assert config.n_boards == 1
        assert config.board_of(ChipCoordinate(7, 7)) == 0
        machine = SpiNNakerMachine(config)
        assert machine.inter_board_links() == []
        assert machine.n_boards == 1

    def test_board_grid_ids_row_major(self):
        config = MachineConfig.multi_board(2, 2, board_width=4,
                                           board_height=3)
        assert (config.width, config.height) == (8, 6)
        assert config.n_boards == 4
        assert config.board_of(ChipCoordinate(0, 0)) == 0
        assert config.board_of(ChipCoordinate(5, 2)) == 1
        assert config.board_of(ChipCoordinate(3, 3)) == 2
        assert config.board_of(ChipCoordinate(4, 5)) == 3
        assert config.board_origin(3) == ChipCoordinate(4, 3)
        chips = list(config.board_chips(1))
        assert len(chips) == 12
        assert chips[0] == ChipCoordinate(4, 0)

    def test_production_board_is_48_chips(self):
        config = MachineConfig.multi_board(2, 1)
        assert config.board_width * config.board_height == 48
        assert config.n_chips == 96

    def test_board_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(width=8, height=8, board_width=3, board_height=3)
        with pytest.raises(ValueError):
            MachineConfig(width=8, height=8, board_width=4)
        with pytest.raises(ValueError):
            MachineConfig.multi_board(0, 2)
        with pytest.raises(ValueError):
            config = MachineConfig.multi_board(2, 1, board_width=4,
                                               board_height=4)
            config.board_origin(config.n_boards)

    def test_inter_board_links_have_distinct_figures(self):
        machine = SpiNNakerMachine(MachineConfig.multi_board(
            2, 1, board_width=4, board_height=3, cores_per_chip=2))
        crossing = machine.inter_board_links()
        assert crossing
        for link in crossing:
            assert link.inter_board
            assert link.latency_us == DEFAULT_INTER_BOARD_LATENCY_US
        boundary = machine.link(ChipCoordinate(3, 0), Direction.EAST)
        assert boundary.inter_board
        on_board = machine.link(ChipCoordinate(1, 0), Direction.EAST)
        assert not on_board.inter_board
        assert on_board.latency_us == DEFAULT_LINK_LATENCY_US

    def test_routers_know_their_crossing_directions(self):
        machine = SpiNNakerMachine(MachineConfig.multi_board(
            2, 1, board_width=4, board_height=3, cores_per_chip=2))
        edge = machine.chip(3, 0).router
        assert Direction.EAST in edge.inter_board_directions
        interior = machine.chip(1, 1).router
        assert not interior.inter_board_directions

    def test_topology_census_and_diagram(self):
        config = MachineConfig.multi_board(2, 2, board_width=4,
                                           board_height=3)
        topology = BoardTopology(config)
        assert topology.boards() == [0, 1, 2, 3]
        assert topology.chips_per_board == 12
        assert topology.rect(3) == (4, 3, 4, 3)
        machine = SpiNNakerMachine(config)
        census = topology.inter_board_link_census(machine)
        assert sum(census.values()) == len(machine.inter_board_links())
        assert census[(0, 1)] > 0
        diagram = topology.ascii_diagram()
        assert "b0" in diagram and "b3" in diagram


# ----------------------------------------------------------------------
# The ShardByBoard pass
# ----------------------------------------------------------------------
class TestShardByBoardPass:
    def test_disabled_by_default(self):
        machine = small_cluster_machine()
        pipeline = MappingPipeline(machine, chained_network(), seed=SEED,
                                   max_neurons_per_core=32)
        ctx = pipeline.run()
        assert ctx.board_contexts == {}

    def test_shards_cover_the_placement_with_sticky_keys(self):
        machine = small_cluster_machine()
        pipeline = MappingPipeline(machine, chained_network(), seed=SEED,
                                   max_neurons_per_core=32,
                                   shard_by_board=True)
        ctx = pipeline.run()
        assert ctx.board_contexts
        sharded = {core.vertex: core
                   for context in ctx.board_contexts.values()
                   for core in context.cores}
        assert set(sharded) == set(ctx.placement.locations)
        for vertex, core in sharded.items():
            chip, core_id = ctx.placement.locations[vertex]
            assert (core.chip, core.core_id) == (chip, core_id)
            home = next(board
                        for board, context in ctx.board_contexts.items()
                        if core in context.cores)
            assert machine.config.board_of(chip) == home
            # Sticky keys: the shard address is the allocator's key space.
            assert core.base_key == ctx.keys.key_space(vertex).base_key

    def test_deliveries_decode_installed_blocks(self):
        machine = small_cluster_machine()
        pipeline = MappingPipeline(machine, chained_network(), seed=SEED,
                                   max_neurons_per_core=32,
                                   shard_by_board=True)
        ctx = pipeline.run()
        n_deliveries = 0
        for context in ctx.board_contexts.values():
            for key, legs in context.deliveries.items():
                assert key in {core.base_key
                               for board in ctx.board_contexts.values()
                               for core in board.cores}
                for core_index, csr in legs:
                    assert 0 <= core_index < len(context.cores)
                    assert csr is not None
                    vertex = context.cores[core_index].vertex
                    assert csr.n_post == vertex.n_neurons
                    n_deliveries += 1
        assert n_deliveries > 0


# ----------------------------------------------------------------------
# The sharded runner
# ----------------------------------------------------------------------
class TestClusterApplication:
    def _sharded(self, workers: int, **kwargs) -> ClusterApplication:
        return ClusterApplication(small_cluster_machine(), chained_network(),
                                  seed=SEED, max_neurons_per_core=32,
                                  workers=workers, **kwargs)

    def test_equivalent_to_the_unsharded_engine(self):
        unsharded_app = NeuralApplication(
            small_cluster_machine(), chained_network(),
            max_neurons_per_core=32, seed=SEED, transport="fabric",
            stagger_us=0.0)
        unsharded = unsharded_app.run(60.0)
        assert unsharded.total_spikes() > 0

        cluster = self._sharded(workers=1)
        sharded = cluster.run(60.0)

        assert sharded.total_spikes() == unsharded.total_spikes()
        for label in unsharded.spike_counts:
            assert np.array_equal(unsharded.spike_counts[label],
                                  sharded.spike_counts[label]), label
        for label in unsharded.spikes:
            assert sorted(unsharded.spikes[label]) == sorted(
                sharded.spikes[label]), label
        assert sharded.synaptic_events == unsharded.synaptic_events
        assert sharded.delivered_charge_na == unsharded.delivered_charge_na
        assert sharded.packets_sent == unsharded.packets_sent

    def test_results_are_worker_count_independent(self):
        serial = self._sharded(workers=1).run(60.0)
        pooled_app = self._sharded(workers=2)
        pooled = pooled_app.run(60.0)
        assert pooled.spikes == serial.spikes
        for label in serial.spike_counts:
            assert np.array_equal(serial.spike_counts[label],
                                  pooled.spike_counts[label])
        assert pooled.synaptic_events == serial.synaptic_events
        assert pooled.delivered_charge_na == serial.delivered_charge_na
        report = pooled_app.report
        assert report.workers == 2
        assert set(report.assignment.values()) == {0, 1}
        assert report.total_compute_s > 0
        assert report.speedup_bound >= 1.0

    def test_cross_board_traffic_is_counted_and_replayed(self):
        cluster = self._sharded(workers=1, account_transport=True)
        machine = cluster.machine
        boot_traffic = machine.total_inter_board_traffic()
        cluster.run(60.0)
        report = cluster.report
        assert report.cross_board_spikes > 0
        assert report.cross_board_batches > 0
        assert report.inter_board_traversals > 0
        # The fabric replay lands on the same link counters the event
        # path would have charged.
        delta = machine.total_inter_board_traffic() - boot_traffic
        assert delta == report.inter_board_traversals
        assert sum(chip.router.stats.inter_board_forwarded
                   for chip in machine) >= report.inter_board_traversals

    def test_reruns_are_reproducible(self):
        cluster = self._sharded(workers=1, account_transport=True)
        first = cluster.run(40.0)
        first_traversals = cluster.report.inter_board_traversals
        second = cluster.run(40.0)
        assert first.spikes == second.spikes
        assert first.delivered_charge_na == second.delivered_charge_na
        # The report carries per-run deltas even though the fabric's
        # counters accumulate over the application's lifetime.
        assert cluster.report.inter_board_traversals == first_traversals
        assert cluster.fabric.inter_board_traversals == 2 * first_traversals

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            self._sharded(workers=0)
        cluster = self._sharded(workers=1)
        with pytest.raises(ValueError):
            cluster.run(-1.0)


# ----------------------------------------------------------------------
# Result merging
# ----------------------------------------------------------------------
class TestApplicationResultMerge:
    def test_merge_sums_and_sorts(self):
        left = ApplicationResult(duration_ms=50.0)
        left.spike_counts["a"] = np.array([1, 0])
        left.spikes["a"] = [(1.0, 0), (2.0, 0)]
        left.packets_sent = 3
        left.synaptic_events = 10
        left.delivered_charge_na = 1.5
        right = ApplicationResult(duration_ms=50.0)
        right.spike_counts["a"] = np.array([0, 2])
        right.spike_counts["b"] = np.array([4])
        right.spikes["a"] = [(1.0, 1)]
        right.packets_sent = 2
        right.synaptic_events = 5
        right.delivered_charge_na = 0.25

        merged = ApplicationResult.merge([left, right])
        assert merged.duration_ms == 50.0
        assert np.array_equal(merged.spike_counts["a"], [1, 2])
        assert np.array_equal(merged.spike_counts["b"], [4])
        # Stable by time: the tick-1 spikes keep shard order.
        assert merged.spikes["a"] == [(1.0, 0), (1.0, 1), (2.0, 0)]
        assert merged.packets_sent == 5
        assert merged.synaptic_events == 15
        assert merged.delivered_charge_na == 1.75

    def test_merge_of_nothing(self):
        merged = ApplicationResult.merge([])
        assert merged.duration_ms == 0.0
        assert merged.total_spikes() == 0


# ----------------------------------------------------------------------
# Board-aligned allocation
# ----------------------------------------------------------------------
class TestBoardAllocation:
    def _machine(self) -> SpiNNakerMachine:
        return SpiNNakerMachine(MachineConfig.multi_board(
            2, 2, board_width=4, board_height=3, cores_per_chip=2))

    def test_whole_board_leases_are_aligned(self):
        partitioner = MachinePartitioner(self._machine())
        lease = partitioner.allocate_boards(1, 1, tenant="a")
        assert lease is not None
        assert (lease.rect.width, lease.rect.height) == (4, 3)
        assert lease.rect.x % 4 == 0 and lease.rect.y % 3 == 0
        assert partitioner.boards_of(lease) == [0]

    def test_lease_spans_board_boundaries(self):
        partitioner = MachinePartitioner(self._machine())
        lease = partitioner.allocate_boards(2, 1, tenant="wide")
        assert lease is not None
        assert (lease.rect.width, lease.rect.height) == (8, 3)
        assert partitioner.boards_of(lease) == [0, 1]
        tall = partitioner.allocate_boards(2, 1, tenant="wide-2")
        assert partitioner.boards_of(tall) == [2, 3]
        assert partitioner.allocate_boards(1, 1) is None

    def test_alignment_survives_fragmentation(self):
        partitioner = MachinePartitioner(self._machine())
        # A small unaligned chip lease fragments the free space...
        small = partitioner.allocate(2, 2, tenant="chip-job")
        assert small is not None
        # ...but board leases still come back aligned to the grid.
        lease = partitioner.allocate_boards(1, 1, policy="best-fit")
        assert lease is not None
        assert lease.rect.x % 4 == 0 and lease.rect.y % 3 == 0
        assert len(partitioner.boards_of(lease)) == 1

    def test_board_allocation_needs_a_board_grid(self):
        machine = SpiNNakerMachine(MachineConfig(width=8, height=6,
                                                 cores_per_chip=2))
        partitioner = MachinePartitioner(machine)
        with pytest.raises(ValueError):
            partitioner.allocate_boards(1, 1)

    def test_released_board_lease_is_reusable(self):
        partitioner = MachinePartitioner(self._machine())
        first = partitioner.allocate_boards(2, 2)
        assert partitioner.boards_of(first) == [0, 1, 2, 3]
        assert partitioner.allocate_boards(1, 1) is None
        partitioner.release(first)
        again = partitioner.allocate_boards(2, 2)
        assert again is not None
