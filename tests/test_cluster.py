"""Tests for the multi-board sharded simulation (``repro.cluster``).

Covers the board-aware machine model, the ShardByBoard compile pass,
the sharded runner's two core guarantees (worker-count independence and
equivalence with the unsharded on-machine engine), the inter-board
accounting, board-aligned allocation and the merged-result semantics.
"""

from __future__ import annotations

import os
from multiprocessing import shared_memory

import numpy as np
import pytest

import repro.cluster.application as cluster_application
from repro.alloc.partition import MachinePartitioner
from repro.cluster import (
    BoardTopology,
    ClusterApplication,
    ClusterWorkerError,
    ExchangePlan,
    superstep_schedule,
)
from repro.cluster.application import _assign_boards
from repro.compile import MappingPipeline
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import (
    DEFAULT_INTER_BOARD_LATENCY_US,
    DEFAULT_LINK_LATENCY_US,
    MachineConfig,
    SpiNNakerMachine,
)
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import ApplicationResult, NeuralApplication
from repro.runtime.boot import BootController

SEED = 7


def chained_network(pairs: int = 4, neurons: int = 96) -> Network:
    """Stimulus->excitatory pairs chained in a ring (forces cross-board
    projections however the placer tiles the pairs)."""
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(pairs):
        stimulus = SpikeSourcePoisson(neurons, rate_hz=40.0,
                                      label="t-stim-%d" % pair)
        population = Population(neurons, "lif", label="t-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.3, weight=0.9,
                                                  delay_range=(1, 6)))
        excitatory.append(population)
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.15, weight=0.5,
                                                  delay_range=(1, 12)))
    return network


def deep_delay_network(pairs: int = 4, neurons: int = 96) -> Network:
    """The chained topology with every synaptic delay at least 4 ticks,
    so the conservative lookahead opens to ``L = 1 + d_min >= 5`` and
    exchanged batches arrive with ages well past 1."""
    network = Network(seed=SEED)
    excitatory = []
    for pair in range(pairs):
        stimulus = SpikeSourcePoisson(neurons, rate_hz=40.0,
                                      label="d-stim-%d" % pair)
        population = Population(neurons, "lif", label="d-exc-%d" % pair)
        population.record(spikes=True)
        network.connect(stimulus, population,
                        FixedProbabilityConnector(0.3, weight=0.9,
                                                  delay_range=(4, 9)))
        excitatory.append(population)
    for index, population in enumerate(excitatory):
        network.connect(population,
                        excitatory[(index + 1) % len(excitatory)],
                        FixedProbabilityConnector(0.15, weight=0.5,
                                                  delay_range=(4, 10)))
    return network


def small_cluster_machine() -> SpiNNakerMachine:
    machine = SpiNNakerMachine(MachineConfig.multi_board(
        2, 2, board_width=4, board_height=3, cores_per_chip=4))
    BootController(machine, seed=1).boot()
    return machine


def sharded_app(workers: int, network: Network = None,
                **kwargs) -> ClusterApplication:
    return ClusterApplication(small_cluster_machine(),
                              network if network is not None
                              else chained_network(),
                              seed=SEED, max_neurons_per_core=32,
                              workers=workers, **kwargs)


def assert_shm_unlinked(cluster: ClusterApplication) -> None:
    """The run's shared-memory segments must all be gone by now."""
    assert cluster.last_exchange_segments
    for name in cluster.last_exchange_segments:
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# ----------------------------------------------------------------------
# Board-aware machine model
# ----------------------------------------------------------------------
class TestBoardGeometry:
    def test_single_board_default(self):
        config = MachineConfig(width=8, height=8)
        assert config.n_boards == 1
        assert config.board_of(ChipCoordinate(7, 7)) == 0
        machine = SpiNNakerMachine(config)
        assert machine.inter_board_links() == []
        assert machine.n_boards == 1

    def test_board_grid_ids_row_major(self):
        config = MachineConfig.multi_board(2, 2, board_width=4,
                                           board_height=3)
        assert (config.width, config.height) == (8, 6)
        assert config.n_boards == 4
        assert config.board_of(ChipCoordinate(0, 0)) == 0
        assert config.board_of(ChipCoordinate(5, 2)) == 1
        assert config.board_of(ChipCoordinate(3, 3)) == 2
        assert config.board_of(ChipCoordinate(4, 5)) == 3
        assert config.board_origin(3) == ChipCoordinate(4, 3)
        chips = list(config.board_chips(1))
        assert len(chips) == 12
        assert chips[0] == ChipCoordinate(4, 0)

    def test_production_board_is_48_chips(self):
        config = MachineConfig.multi_board(2, 1)
        assert config.board_width * config.board_height == 48
        assert config.n_chips == 96

    def test_board_validation(self):
        with pytest.raises(ValueError):
            MachineConfig(width=8, height=8, board_width=3, board_height=3)
        with pytest.raises(ValueError):
            MachineConfig(width=8, height=8, board_width=4)
        with pytest.raises(ValueError):
            MachineConfig.multi_board(0, 2)
        with pytest.raises(ValueError):
            config = MachineConfig.multi_board(2, 1, board_width=4,
                                               board_height=4)
            config.board_origin(config.n_boards)

    def test_inter_board_links_have_distinct_figures(self):
        machine = SpiNNakerMachine(MachineConfig.multi_board(
            2, 1, board_width=4, board_height=3, cores_per_chip=2))
        crossing = machine.inter_board_links()
        assert crossing
        for link in crossing:
            assert link.inter_board
            assert link.latency_us == DEFAULT_INTER_BOARD_LATENCY_US
        boundary = machine.link(ChipCoordinate(3, 0), Direction.EAST)
        assert boundary.inter_board
        on_board = machine.link(ChipCoordinate(1, 0), Direction.EAST)
        assert not on_board.inter_board
        assert on_board.latency_us == DEFAULT_LINK_LATENCY_US

    def test_routers_know_their_crossing_directions(self):
        machine = SpiNNakerMachine(MachineConfig.multi_board(
            2, 1, board_width=4, board_height=3, cores_per_chip=2))
        edge = machine.chip(3, 0).router
        assert Direction.EAST in edge.inter_board_directions
        interior = machine.chip(1, 1).router
        assert not interior.inter_board_directions

    def test_topology_census_and_diagram(self):
        config = MachineConfig.multi_board(2, 2, board_width=4,
                                           board_height=3)
        topology = BoardTopology(config)
        assert topology.boards() == [0, 1, 2, 3]
        assert topology.chips_per_board == 12
        assert topology.rect(3) == (4, 3, 4, 3)
        machine = SpiNNakerMachine(config)
        census = topology.inter_board_link_census(machine)
        assert sum(census.values()) == len(machine.inter_board_links())
        assert census[(0, 1)] > 0
        diagram = topology.ascii_diagram()
        assert "b0" in diagram and "b3" in diagram


# ----------------------------------------------------------------------
# The ShardByBoard pass
# ----------------------------------------------------------------------
class TestShardByBoardPass:
    def test_disabled_by_default(self):
        machine = small_cluster_machine()
        pipeline = MappingPipeline(machine, chained_network(), seed=SEED,
                                   max_neurons_per_core=32)
        ctx = pipeline.run()
        assert ctx.board_contexts == {}

    def test_shards_cover_the_placement_with_sticky_keys(self):
        machine = small_cluster_machine()
        pipeline = MappingPipeline(machine, chained_network(), seed=SEED,
                                   max_neurons_per_core=32,
                                   shard_by_board=True)
        ctx = pipeline.run()
        assert ctx.board_contexts
        sharded = {core.vertex: core
                   for context in ctx.board_contexts.values()
                   for core in context.cores}
        assert set(sharded) == set(ctx.placement.locations)
        for vertex, core in sharded.items():
            chip, core_id = ctx.placement.locations[vertex]
            assert (core.chip, core.core_id) == (chip, core_id)
            home = next(board
                        for board, context in ctx.board_contexts.items()
                        if core in context.cores)
            assert machine.config.board_of(chip) == home
            # Sticky keys: the shard address is the allocator's key space.
            assert core.base_key == ctx.keys.key_space(vertex).base_key

    def test_deliveries_decode_installed_blocks(self):
        machine = small_cluster_machine()
        pipeline = MappingPipeline(machine, chained_network(), seed=SEED,
                                   max_neurons_per_core=32,
                                   shard_by_board=True)
        ctx = pipeline.run()
        n_deliveries = 0
        for context in ctx.board_contexts.values():
            for key, legs in context.deliveries.items():
                assert key in {core.base_key
                               for board in ctx.board_contexts.values()
                               for core in board.cores}
                for core_index, csr in legs:
                    assert 0 <= core_index < len(context.cores)
                    assert csr is not None
                    vertex = context.cores[core_index].vertex
                    assert csr.n_post == vertex.n_neurons
                    n_deliveries += 1
        assert n_deliveries > 0


# ----------------------------------------------------------------------
# The sharded runner
# ----------------------------------------------------------------------
class TestClusterApplication:
    def _sharded(self, workers: int, **kwargs) -> ClusterApplication:
        return ClusterApplication(small_cluster_machine(), chained_network(),
                                  seed=SEED, max_neurons_per_core=32,
                                  workers=workers, **kwargs)

    def test_equivalent_to_the_unsharded_engine(self):
        unsharded_app = NeuralApplication(
            small_cluster_machine(), chained_network(),
            max_neurons_per_core=32, seed=SEED, transport="fabric",
            stagger_us=0.0)
        unsharded = unsharded_app.run(60.0)
        assert unsharded.total_spikes() > 0

        cluster = self._sharded(workers=1)
        sharded = cluster.run(60.0)

        assert sharded.total_spikes() == unsharded.total_spikes()
        for label in unsharded.spike_counts:
            assert np.array_equal(unsharded.spike_counts[label],
                                  sharded.spike_counts[label]), label
        for label in unsharded.spikes:
            assert sorted(unsharded.spikes[label]) == sorted(
                sharded.spikes[label]), label
        assert sharded.synaptic_events == unsharded.synaptic_events
        assert sharded.delivered_charge_na == unsharded.delivered_charge_na
        assert sharded.packets_sent == unsharded.packets_sent

    def test_results_are_worker_count_independent(self):
        serial = self._sharded(workers=1).run(60.0)
        pooled_app = self._sharded(workers=2)
        pooled = pooled_app.run(60.0)
        assert pooled.spikes == serial.spikes
        for label in serial.spike_counts:
            assert np.array_equal(serial.spike_counts[label],
                                  pooled.spike_counts[label])
        assert pooled.synaptic_events == serial.synaptic_events
        assert pooled.delivered_charge_na == serial.delivered_charge_na
        report = pooled_app.report
        assert report.workers == 2
        assert set(report.assignment.values()) == {0, 1}
        assert report.total_compute_s > 0
        assert report.speedup_bound >= 1.0

    def test_cross_board_traffic_is_counted_and_replayed(self):
        cluster = self._sharded(workers=1, account_transport=True)
        machine = cluster.machine
        boot_traffic = machine.total_inter_board_traffic()
        cluster.run(60.0)
        report = cluster.report
        assert report.cross_board_spikes > 0
        assert report.cross_board_batches > 0
        assert report.inter_board_traversals > 0
        # The fabric replay lands on the same link counters the event
        # path would have charged.
        delta = machine.total_inter_board_traffic() - boot_traffic
        assert delta == report.inter_board_traversals
        assert sum(chip.router.stats.inter_board_forwarded
                   for chip in machine) >= report.inter_board_traversals

    def test_reruns_are_reproducible(self):
        cluster = self._sharded(workers=1, account_transport=True)
        first = cluster.run(40.0)
        first_traversals = cluster.report.inter_board_traversals
        second = cluster.run(40.0)
        assert first.spikes == second.spikes
        assert first.delivered_charge_na == second.delivered_charge_na
        # The report carries per-run deltas even though the fabric's
        # counters accumulate over the application's lifetime.
        assert cluster.report.inter_board_traversals == first_traversals
        assert cluster.fabric.inter_board_traversals == 2 * first_traversals

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            self._sharded(workers=0)
        with pytest.raises(ValueError):
            self._sharded(workers=1, lookahead=0)
        with pytest.raises(ValueError):
            self._sharded(workers=1, assignment="random")
        cluster = self._sharded(workers=1)
        with pytest.raises(ValueError):
            cluster.run(-1.0)
        with pytest.raises(ValueError):
            cluster.run(10.0, lookahead=0)


# ----------------------------------------------------------------------
# The exchange plan and super-step schedule
# ----------------------------------------------------------------------
class TestExchangePlan:
    def test_superstep_schedule_covers_every_tick(self):
        assert superstep_schedule(7, 3) == [(0, 3), (3, 3), (6, 1)]
        assert superstep_schedule(4, 1) == [(0, 1), (1, 1), (2, 1), (3, 1)]
        assert superstep_schedule(0, 4) == []
        with pytest.raises(ValueError):
            superstep_schedule(4, 0)

    def _prepared(self) -> ClusterApplication:
        cluster = sharded_app(workers=1)
        cluster.prepare()
        return cluster

    def test_lookahead_defaults_to_the_conservative_bound(self):
        cluster = self._prepared()
        plan = ExchangePlan.build(cluster.board_contexts,
                                  cluster.board_pair_min_delay)
        assert plan.d_min is not None and plan.d_min >= 1
        assert plan.max_lookahead == 1 + plan.d_min
        assert plan.lookahead == plan.max_lookahead

    def test_explicit_lookahead_is_clamped_to_the_bound(self):
        cluster = self._prepared()
        contexts = cluster.board_contexts
        delays = cluster.board_pair_min_delay
        clamped = ExchangePlan.build(contexts, delays, lookahead=99)
        assert clamped.lookahead == clamped.max_lookahead
        per_tick = ExchangePlan.build(contexts, delays, lookahead=1)
        assert per_tick.lookahead == 1
        with pytest.raises(ValueError):
            ExchangePlan.build(contexts, delays, lookahead=0)

    def test_routing_table_is_cross_board_only(self):
        cluster = self._prepared()
        plan = ExchangePlan.build(cluster.board_contexts,
                                  cluster.board_pair_min_delay)
        assert any(plan.remote_keys.values())
        for board, keys in plan.remote_keys.items():
            for key in keys:
                destinations = plan.cross_destinations[key]
                assert destinations
                assert board not in destinations
                assert plan.first_cross_destination[key] == destinations[0]
        # Accounting stubs exist only when accounting is requested.
        assert all(not keys for keys in plan.stub_keys.values())
        accounted = ExchangePlan.build(cluster.board_contexts,
                                       cluster.board_pair_min_delay,
                                       account_transport=True)
        for board in accounted.boards:
            assert accounted.export_keys[board] == (
                accounted.remote_keys[board] | accounted.stub_keys[board])

    def test_region_capacity_scales_with_lookahead(self):
        cluster = self._prepared()
        contexts = cluster.board_contexts
        delays = cluster.board_pair_min_delay
        one = ExchangePlan.build(contexts, delays, lookahead=1)
        two = ExchangePlan.build(contexts, delays, lookahead=2)
        assert set(one.region_capacity) == set(two.region_capacity)
        for pair, words in one.region_capacity.items():
            assert two.region_capacity[pair] == 2 * words
        assert two.total_words > one.total_words


# ----------------------------------------------------------------------
# Board -> worker assignment
# ----------------------------------------------------------------------
class TestBoardAssignment:
    def test_round_robin_stays_reachable(self):
        assert _assign_boards([0, 1, 2, 3], 2, strategy="round-robin") == {
            0: 0, 1: 1, 2: 0, 3: 1}

    def test_lpt_balances_skewed_weights(self):
        weights = {0: 10, 1: 4, 2: 3, 3: 3}
        assignment = _assign_boards([0, 1, 2, 3], 2, weights)
        loads = {0: 0, 1: 0}
        for board, worker in assignment.items():
            loads[worker] += weights[board]
        # Round-robin would split 13 / 7; LPT lands 10 / 10.
        assert sorted(loads.values()) == [10, 10]

    def test_lpt_is_deterministic_on_ties(self):
        weights = {board: 1 for board in range(4)}
        assert _assign_boards([0, 1, 2, 3], 2, weights) == {
            0: 0, 1: 1, 2: 0, 3: 1}

    def test_unknown_strategy_is_rejected(self):
        with pytest.raises(ValueError):
            _assign_boards([0, 1], 2, strategy="random")

    def test_lpt_raises_the_speedup_bound_on_skew(self):
        # Same skewed compute, two workers: the busiest-worker bound is
        # strictly better under LPT than under round-robin.
        compute = {0: 10.0, 1: 4.0, 2: 3.0, 3: 3.0}
        weights = {board: int(seconds) for board, seconds
                   in compute.items()}

        def bound(assignment):
            from repro.cluster import ClusterReport
            report = ClusterReport(n_boards=4, workers=2, n_ticks=1,
                                   board_compute_s=compute,
                                   assignment=assignment)
            return report.speedup_bound

        lpt = bound(_assign_boards([0, 1, 2, 3], 2, weights))
        round_robin = bound(_assign_boards([0, 1, 2, 3], 2,
                                           strategy="round-robin"))
        assert lpt > round_robin
        assert lpt == pytest.approx(2.0)


# ----------------------------------------------------------------------
# Conservative lookahead
# ----------------------------------------------------------------------
class TestLookahead:
    def test_bit_identical_across_workers_and_lookahead(self):
        reference = None
        for workers in (1, 2, 4):
            for lookahead in (1, None):
                cluster = sharded_app(workers=workers, lookahead=lookahead)
                result = cluster.run(40.0)
                report = cluster.report
                if lookahead == 1:
                    assert report.lookahead == 1
                    assert report.supersteps == report.n_ticks
                else:
                    assert report.lookahead == 1 + report.d_min
                current = (result.spikes,
                           {label: counts.tolist() for label, counts
                            in result.spike_counts.items()},
                           result.synaptic_events,
                           result.delivered_charge_na)
                if reference is None:
                    reference = current
                assert current == reference, (workers, lookahead)

    def test_deep_delays_open_the_lookahead_window(self):
        cluster = sharded_app(workers=2, network=deep_delay_network())
        deep = cluster.run(60.0)
        report = cluster.report
        # Every synapse carries at least 4 ticks of delay, so batches
        # arrive with ages up to L - 1 >= 4 and are re-based on apply.
        assert report.d_min >= 4
        assert report.lookahead == 1 + report.d_min
        assert report.supersteps < report.n_ticks
        per_tick_cluster = sharded_app(workers=2,
                                       network=deep_delay_network())
        per_tick = per_tick_cluster.run(60.0, lookahead=1)
        assert per_tick_cluster.report.lookahead == 1
        assert deep.spikes == per_tick.spikes
        assert deep.synaptic_events == per_tick.synaptic_events
        assert deep.delivered_charge_na == per_tick.delivered_charge_na

    def test_run_override_beats_the_constructor(self):
        cluster = sharded_app(workers=1, lookahead=1)
        cluster.run(20.0, lookahead=2)
        assert cluster.report.lookahead == 2


# ----------------------------------------------------------------------
# Worker failure and shared-memory hygiene
# ----------------------------------------------------------------------
class TestWorkerFailure:
    def test_worker_death_raises_a_diagnosable_error(self, monkeypatch):
        def _dying_worker(conn, contexts, *args, **kwargs):
            os._exit(3)

        monkeypatch.setattr(cluster_application, "_shard_worker",
                            _dying_worker)
        cluster = sharded_app(workers=2)
        with pytest.raises(ClusterWorkerError) as excinfo:
            cluster.run(20.0)
        error = excinfo.value
        assert error.exitcode == 3
        assert error.boards
        assert "exit code 3" in str(error)
        assert str(list(error.boards)) in str(error)

    def test_worker_death_still_unlinks_the_segment(self, monkeypatch):
        def _dying_worker(conn, contexts, *args, **kwargs):
            os._exit(1)

        monkeypatch.setattr(cluster_application, "_shard_worker",
                            _dying_worker)
        cluster = sharded_app(workers=2)
        with pytest.raises(ClusterWorkerError):
            cluster.run(20.0)
        assert_shm_unlinked(cluster)

    def test_clean_run_leaves_no_segment_behind(self):
        cluster = sharded_app(workers=2)
        cluster.run(20.0)
        assert_shm_unlinked(cluster)


# ----------------------------------------------------------------------
# Per-stage profiling
# ----------------------------------------------------------------------
class TestProfiling:
    def test_off_by_default(self):
        cluster = sharded_app(workers=1)
        assert not cluster.profile
        cluster.run(20.0)
        assert cluster.report.worker_stages == {}

    def test_env_flag_enables_it(self, monkeypatch):
        monkeypatch.setenv("REPRO_CLUSTER_PROFILE", "1")
        assert sharded_app(workers=1).profile
        monkeypatch.setenv("REPRO_CLUSTER_PROFILE", "0")
        assert not sharded_app(workers=1).profile
        # An explicit argument beats the environment.
        assert sharded_app(workers=1, profile=True).profile

    def test_stage_timers_cover_serial_and_pool(self):
        serial = sharded_app(workers=1, profile=True)
        serial.run(20.0)
        assert set(serial.report.worker_stages) == {0}
        stages = serial.report.worker_stages[0]
        assert set(stages) == set(cluster_application.STAGES)
        assert stages["compute"] > 0.0

        pooled = sharded_app(workers=2, profile=True)
        pooled.run(20.0)
        report = pooled.report
        assert set(report.worker_stages) == set(
            report.assignment.values())
        for stages in report.worker_stages.values():
            assert set(stages) == set(cluster_application.STAGES)
            assert stages["compute"] > 0.0
        assert report.stage_total("compute") == pytest.approx(
            sum(stages["compute"]
                for stages in report.worker_stages.values()))


# ----------------------------------------------------------------------
# Result merging
# ----------------------------------------------------------------------
class TestApplicationResultMerge:
    def test_merge_sums_and_sorts(self):
        left = ApplicationResult(duration_ms=50.0)
        left.spike_counts["a"] = np.array([1, 0])
        left.spikes["a"] = [(1.0, 0), (2.0, 0)]
        left.packets_sent = 3
        left.synaptic_events = 10
        left.delivered_charge_na = 1.5
        right = ApplicationResult(duration_ms=50.0)
        right.spike_counts["a"] = np.array([0, 2])
        right.spike_counts["b"] = np.array([4])
        right.spikes["a"] = [(1.0, 1)]
        right.packets_sent = 2
        right.synaptic_events = 5
        right.delivered_charge_na = 0.25

        merged = ApplicationResult.merge([left, right])
        assert merged.duration_ms == 50.0
        assert np.array_equal(merged.spike_counts["a"], [1, 2])
        assert np.array_equal(merged.spike_counts["b"], [4])
        # Stable by time: the tick-1 spikes keep shard order.
        assert merged.spikes["a"] == [(1.0, 0), (1.0, 1), (2.0, 0)]
        assert merged.packets_sent == 5
        assert merged.synaptic_events == 15
        assert merged.delivered_charge_na == 1.75

    def test_merge_of_nothing(self):
        merged = ApplicationResult.merge([])
        assert merged.duration_ms == 0.0
        assert merged.total_spikes() == 0


# ----------------------------------------------------------------------
# Board-aligned allocation
# ----------------------------------------------------------------------
class TestBoardAllocation:
    def _machine(self) -> SpiNNakerMachine:
        return SpiNNakerMachine(MachineConfig.multi_board(
            2, 2, board_width=4, board_height=3, cores_per_chip=2))

    def test_whole_board_leases_are_aligned(self):
        partitioner = MachinePartitioner(self._machine())
        lease = partitioner.allocate_boards(1, 1, tenant="a")
        assert lease is not None
        assert (lease.rect.width, lease.rect.height) == (4, 3)
        assert lease.rect.x % 4 == 0 and lease.rect.y % 3 == 0
        assert partitioner.boards_of(lease) == [0]

    def test_lease_spans_board_boundaries(self):
        partitioner = MachinePartitioner(self._machine())
        lease = partitioner.allocate_boards(2, 1, tenant="wide")
        assert lease is not None
        assert (lease.rect.width, lease.rect.height) == (8, 3)
        assert partitioner.boards_of(lease) == [0, 1]
        tall = partitioner.allocate_boards(2, 1, tenant="wide-2")
        assert partitioner.boards_of(tall) == [2, 3]
        assert partitioner.allocate_boards(1, 1) is None

    def test_alignment_survives_fragmentation(self):
        partitioner = MachinePartitioner(self._machine())
        # A small unaligned chip lease fragments the free space...
        small = partitioner.allocate(2, 2, tenant="chip-job")
        assert small is not None
        # ...but board leases still come back aligned to the grid.
        lease = partitioner.allocate_boards(1, 1, policy="best-fit")
        assert lease is not None
        assert lease.rect.x % 4 == 0 and lease.rect.y % 3 == 0
        assert len(partitioner.boards_of(lease)) == 1

    def test_board_allocation_needs_a_board_grid(self):
        machine = SpiNNakerMachine(MachineConfig(width=8, height=6,
                                                 cores_per_chip=2))
        partitioner = MachinePartitioner(machine)
        with pytest.raises(ValueError):
            partitioner.allocate_boards(1, 1)

    def test_released_board_lease_is_reusable(self):
        partitioner = MachinePartitioner(self._machine())
        first = partitioner.allocate_boards(2, 2)
        assert partitioner.boards_of(first) == [0, 1, 2, 3]
        assert partitioner.allocate_boards(1, 1) is None
        partitioner.release(first)
        again = partitioner.allocate_boards(2, 2)
        assert again is not None
