"""Unit tests for the three router packet formats."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import ChipCoordinate
from repro.core.packets import (
    EmergencyState,
    MC_PACKET_BITS,
    MulticastPacket,
    NearestNeighbourPacket,
    NNCommand,
    PacketType,
    PointToPointPacket,
)


class TestMulticastPacket:
    def test_packet_is_forty_bits(self):
        packet = MulticastPacket(key=0x12345678)
        assert packet.bit_length == 40
        assert MC_PACKET_BITS == 40

    def test_payload_extends_length(self):
        packet = MulticastPacket(key=1, payload=0xDEADBEEF)
        assert packet.bit_length == 72

    def test_key_must_fit_32_bits(self):
        with pytest.raises(ValueError):
            MulticastPacket(key=1 << 32)

    def test_payload_must_fit_32_bits(self):
        with pytest.raises(ValueError):
            MulticastPacket(key=0, payload=1 << 32)

    def test_type_is_multicast(self):
        assert MulticastPacket(key=0).packet_type is PacketType.MULTICAST

    def test_with_emergency_preserves_key(self):
        packet = MulticastPacket(key=99)
        diverted = packet.with_emergency(EmergencyState.FIRST_LEG)
        assert diverted.key == 99
        assert diverted.emergency is EmergencyState.FIRST_LEG
        assert packet.emergency is EmergencyState.NORMAL

    def test_pack_unpack_round_trip(self):
        packet = MulticastPacket(key=0xCAFEBABE,
                                 emergency=EmergencyState.SECOND_LEG)
        recovered = MulticastPacket.unpack(packet.pack())
        assert recovered.key == 0xCAFEBABE
        assert recovered.emergency is EmergencyState.SECOND_LEG

    def test_pack_unpack_with_payload(self):
        packet = MulticastPacket(key=7, payload=123)
        recovered = MulticastPacket.unpack(packet.pack(), payload=123)
        assert recovered.payload == 123

    def test_unpack_missing_payload_raises(self):
        packet = MulticastPacket(key=7, payload=123)
        with pytest.raises(ValueError):
            MulticastPacket.unpack(packet.pack())

    def test_unpack_rejects_oversized_word(self):
        with pytest.raises(ValueError):
            MulticastPacket.unpack(1 << 40)

    def test_sequence_numbers_increase(self):
        first = MulticastPacket(key=1)
        second = MulticastPacket(key=1)
        assert second.sequence > first.sequence

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=100, deadline=None)
    def test_any_key_round_trips(self, key):
        packet = MulticastPacket(key=key)
        assert MulticastPacket.unpack(packet.pack()).key == key


class TestPointToPointPacket:
    def test_address_encoding_round_trips(self):
        coord = ChipCoordinate(17, 200)
        address = PointToPointPacket.encode_address(coord)
        assert PointToPointPacket.decode_address(address) == coord

    def test_between_builds_addresses(self):
        packet = PointToPointPacket.between(ChipCoordinate(1, 2),
                                            ChipCoordinate(3, 4))
        assert packet.source == ChipCoordinate(1, 2)
        assert packet.destination == ChipCoordinate(3, 4)

    def test_address_space_limit(self):
        with pytest.raises(ValueError):
            PointToPointPacket.encode_address(ChipCoordinate(256, 0))

    def test_addresses_must_fit_16_bits(self):
        with pytest.raises(ValueError):
            PointToPointPacket(source_address=1 << 16, destination_address=0)

    def test_type_is_p2p(self):
        packet = PointToPointPacket.between(ChipCoordinate(0, 0),
                                            ChipCoordinate(1, 1))
        assert packet.packet_type is PacketType.POINT_TO_POINT

    @given(st.integers(min_value=0, max_value=255),
           st.integers(min_value=0, max_value=255))
    @settings(max_examples=100, deadline=None)
    def test_any_coordinate_round_trips(self, x, y):
        coord = ChipCoordinate(x, y)
        address = PointToPointPacket.encode_address(coord)
        assert PointToPointPacket.decode_address(address) == coord


class TestNearestNeighbourPacket:
    def test_type_is_nn(self):
        packet = NearestNeighbourPacket(command=NNCommand.PROBE)
        assert packet.packet_type is PacketType.NEAREST_NEIGHBOUR

    def test_always_carries_payload_word(self):
        packet = NearestNeighbourPacket(command=NNCommand.COORDINATE,
                                        payload=(1, 2, 8, 8))
        assert packet.bit_length == 72

    def test_commands_cover_boot_protocol(self):
        names = {command.name for command in NNCommand}
        assert {"PROBE", "COORDINATE", "SET_MONITOR", "WRITE_SYSTEM_RAM",
                "REBOOT", "FLOOD_FILL_DATA", "FLOOD_FILL_END"} <= names
