"""Fixture: an own-line suppression disables a rule for the whole file."""

# checks: disable=clock-discipline -- fixture exercising file-level suppression

import time


def first():
    return time.time()


def second():
    return time.monotonic()
