"""Fixture: duration measurement and zoned datetimes are legal."""

import datetime
import time


def reads(tz):
    start = time.perf_counter()
    stamped = datetime.datetime.now(tz)   # explicit tz: not the ambient clock
    return time.perf_counter() - start, stamped
