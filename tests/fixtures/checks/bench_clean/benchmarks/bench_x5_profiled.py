"""Fixture: a profiling bench that surfaces its stage timings."""

from .reporting import attach_profile, emit_json


def test_x5_profiled(cluster_factory):
    cluster = cluster_factory(profile=True)
    cluster.run(100.0)
    metrics = {"wall_s": cluster.report.wall_s}
    attach_profile(metrics, cluster.registry)
    emit_json("x5", metrics)
