"""Fixture: a benchmark that reports under its filename id."""

from .reporting import emit_json


def test_x1_demo(benchmark):
    metrics = {"speedup": 2.0}
    emit_json("x1", metrics)
