"""Fixture: a benchmark that reports under its filename id and
records the speedup it gates on."""

from .reporting import emit_json


def test_x1_demo(benchmark):
    speedup = 2.0
    metrics = {"speedup": speedup}
    emit_json("x1", metrics)
    assert speedup >= 1.5
