"""Fixture: a regression gate whose baselines all exist."""


def higher_is_better(name, floor):
    return (name, floor)


KEY_METRICS = {
    "x1": [higher_is_better("speedup", 1.5)],
}
