"""Fixture: the profiler seam itself may read the duration clock."""

import time

perf_now = time.perf_counter


def span():
    began = perf_now()
    return perf_now() - began
