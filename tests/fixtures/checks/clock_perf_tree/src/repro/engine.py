"""Fixture: shipped code timing itself around the profiler seam."""

import time


def step(kernel):
    began = time.perf_counter()
    kernel.advance()
    return time.perf_counter() - began
