"""Fixture: seeded, explicit generators — nothing to flag."""

import random

import numpy as np


def draws(seed):
    rng = random.Random(seed)
    generator = np.random.default_rng(seed)
    return rng.random(), generator.random(4)
