def broken(:
    pass
