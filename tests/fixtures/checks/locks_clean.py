"""Fixture: guarded state always under its lock, no blocking held calls."""

import threading
import time


class Counter:
    def __init__(self):
        self.lock = threading.RLock()
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        with self._lock:
            self._count += 1

    def read(self):
        with self._lock:
            return self._count

    def slow_publish(self, sock):
        with self.lock:
            payload = b"data"
        time.sleep(0.1)
        sock.sendall(payload)
