"""Fixture: guarded state touched without its lock, blocking under lock."""

import threading
import time


class Counter:
    def __init__(self):
        self.lock = threading.RLock()
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lock

    def bump(self):
        self._count += 1            # touched outside `with self._lock:`

    def read(self):
        return self._count          # touched outside `with self._lock:`

    def slow_publish(self, sock):
        with self.lock:
            time.sleep(0.1)         # blocking while holding the runtime lock
            sock.sendall(b"data")   # blocking while holding the runtime lock
