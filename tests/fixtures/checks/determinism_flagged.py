"""Fixture: every form of hidden-global or unseeded RNG."""

import random

import numpy as np


def draws():
    a = random.random()            # hidden module-global RNG
    b = random.randint(0, 10)      # hidden module-global RNG
    rng = random.Random()          # unseeded
    c = np.random.rand(4)          # numpy hidden global RNG
    d = np.random.default_rng()    # unseeded generator
    return a, b, rng, c, d
