"""Fixture: a suppression naming a rule that does not exist."""

VALUE = 1  # checks: disable=no-such-rule -- the rule name is a typo
