"""Fixture: the seam module itself may call default_rng directly."""

import numpy as np


def simulation_rng(seed):
    return np.random.default_rng(seed)
