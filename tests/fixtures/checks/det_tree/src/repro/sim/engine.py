"""Fixture: shipped code building a private generator — even seeded,
it must route through the population seams."""

import numpy as np


def private_stream(seed):
    return np.random.default_rng(seed)
