"""Fixture: a suppression with no written reason is itself a violation."""

import time


def stamp():
    return time.time()  # checks: disable=clock-discipline
