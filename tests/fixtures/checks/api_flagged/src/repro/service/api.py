"""Fixture: an API surface that drifted apart everywhere at once."""

__all__ = ["API_VERSION", "ENDPOINTS"]

API_VERSION = "v1"

# Never exported, never referenced by a sibling module.
CODE_ORPHANED = "orphaned"

ENDPOINTS = (
    # Missing its label entirely (4-tuple row).
    ("POST", "/v1/things", "{...}", "thing summary"),
    # Labelled, but server.py routes no such label, and the path is
    # documented nowhere in the README.
    ("GET", "/v1/undocumented", "-", "mystery", "ghost"),
    # Outside the declared API version.
    ("GET", "/v2/things", "-", "thing list", "list"),
)
