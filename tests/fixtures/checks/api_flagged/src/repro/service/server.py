"""Fixture: a server that only knows one of the declared labels."""


def _route(method, path):
    if method == "GET":
        return ("list", 200)
    return ("unknown", 404)
