"""Fixture: a guarded-by annotation naming a lock that never exists."""

import threading


class Broken:
    def __init__(self):
        self._lock = threading.Lock()
        self._count = 0  # guarded-by: _lokc
