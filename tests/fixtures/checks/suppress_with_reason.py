"""Fixture: a real violation silenced by a reasoned suppression."""

import time


def stamp():
    return time.time()  # checks: disable=clock-discipline -- fixture exercising line-level suppression
