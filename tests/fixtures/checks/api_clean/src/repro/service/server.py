"""Fixture: a server routing every declared endpoint."""

from .api import CODE_BAD_REQUEST


def _route(method, path):
    if method == "POST":
        return ("create", 201)
    if method == "GET":
        return ("list", 200)
    return (CODE_BAD_REQUEST, 400)
