"""Fixture: a consistent API surface."""

__all__ = ["API_VERSION", "ENDPOINTS", "CODE_BAD_REQUEST"]

API_VERSION = "v1"

CODE_BAD_REQUEST = "bad-request"

ENDPOINTS = (
    ("POST", "/v1/things", "{...}", "thing summary", "create"),
    ("GET", "/v1/things", "-", "thing list", "list"),
)
