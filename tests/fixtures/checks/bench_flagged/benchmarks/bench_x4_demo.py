"""Fixture: a benchmark gating on a speedup it never records."""

from .reporting import emit_json


def test_x4_demo(benchmark):
    fast_speedup = 4.0
    emit_json("x4", {"events_per_s": 1e6})
    assert fast_speedup >= 2.0
