"""Fixture: a regression gate with a missing baseline and a missing key."""


def higher_is_better(name, floor):
    return (name, floor)


KEY_METRICS = {
    "x9": [higher_is_better("speedup", 1.5)],
    "x8": [higher_is_better("speedup", 1.5)],
}
