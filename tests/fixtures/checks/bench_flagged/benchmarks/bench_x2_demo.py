"""Fixture: a benchmark that prints but never reports."""


def test_x2_demo(benchmark):
    print("x2 ran, nobody will ever know the numbers")
