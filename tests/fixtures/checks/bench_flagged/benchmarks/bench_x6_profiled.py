"""Fixture: a bench that pays for profiling but hides the timings."""

from .reporting import emit_json


def test_x6_profiled(cluster_factory):
    cluster = cluster_factory(profile=True)
    cluster.run(100.0)
    emit_json("x6", {"wall_s": cluster.report.wall_s})
