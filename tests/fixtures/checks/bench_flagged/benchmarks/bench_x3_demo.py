"""Fixture: a benchmark reporting under somebody else's id."""

from .reporting import emit_json


def test_x3_demo(benchmark):
    emit_json("x99", {"speedup": 1.0})
