"""Fixture: every forbidden ambient-clock read."""

import datetime
import time


def reads():
    a = time.time()
    b = time.monotonic()
    c = datetime.datetime.now()
    d = datetime.datetime.utcnow()
    return a, b, c, d
