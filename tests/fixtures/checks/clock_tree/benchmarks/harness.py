"""Fixture: benchmark harnesses may read the wall clock."""

import time


def stamp():
    return time.time()
