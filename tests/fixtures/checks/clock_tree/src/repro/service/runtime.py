"""Fixture: the clock seam module may read the monotonic clock."""

import time


def wall_now():
    return time.monotonic()
