"""Tests for the energy/cost models, the host system and the analysis helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.metrics import (
    isi_coefficient_of_variation,
    latency_by_distance,
    latency_summary,
    mean_firing_rate,
    spike_raster,
)
from repro.analysis.traffic import busiest_links, link_traffic_summary, per_chip_injection
from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.packets import MulticastPacket
from repro.energy.cost import OwnershipCostModel
from repro.energy.model import (
    EMBEDDED_NODE,
    HIGH_END_DESKTOP,
    EnergyModel,
    MachineScaleModel,
    ProcessorSpec,
)
from repro.host.host_system import HostCommand, HostSystem, SDPMessage
from repro.runtime.boot import BootController


class TestProcessorSpecs:
    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            ProcessorSpec(name="bad", mips=0.0, power_w=1.0, area_mm2=1.0)

    def test_area_efficiency_roughly_equal(self):
        # Section 2: "on the first of these measures embedded and high-end
        # processors are roughly equal".
        ratio = EMBEDDED_NODE.mips_per_mm2 / HIGH_END_DESKTOP.mips_per_mm2
        assert 0.5 < ratio < 4.0

    def test_energy_efficiency_order_of_magnitude_better(self):
        # "on energy-efficiency the embedded processors win by an order of
        # magnitude".
        ratio = EMBEDDED_NODE.mips_per_watt / HIGH_END_DESKTOP.mips_per_watt
        assert ratio >= 10.0

    def test_comparison_dictionary(self):
        summary = EnergyModel().comparison()
        assert summary["energy_efficiency_ratio"] >= 10.0
        assert 0.5 < summary["area_efficiency_ratio"] < 4.0


class TestEnergyModel:
    def test_spike_delivery_energy_grows_with_hops_and_fanout(self):
        model = EnergyModel()
        near = model.spike_delivery_energy_nj(hops=1, synapses=10)
        far = model.spike_delivery_energy_nj(hops=10, synapses=10)
        dense = model.spike_delivery_energy_nj(hops=1, synapses=100)
        assert far > near
        assert dense > near

    def test_negative_arguments_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().spike_delivery_energy_nj(hops=-1, synapses=0)

    def test_neuron_update_energy(self):
        assert EnergyModel().neuron_update_energy_nj(200) == pytest.approx(100.0)


class TestMachineScale:
    def test_headline_numbers(self):
        # Conclusions: "over a million embedded processors delivering
        # around 200 teraIPS to support the simulation of a billion spiking
        # neurons", which is about 1 % of the human brain.
        scale = MachineScaleModel()
        assert scale.total_cores > 1_000_000
        assert 100.0 < scale.total_tera_ips < 400.0
        assert scale.total_neurons >= 1e9
        assert 0.005 < scale.brain_fraction < 0.02

    def test_power_and_cost_scale_with_nodes(self):
        scale = MachineScaleModel()
        assert scale.total_power_kw == pytest.approx(65536 * 0.9 / 1000.0)
        assert scale.total_cost_usd == pytest.approx(65536 * 20.0)

    def test_summary_keys(self):
        summary = MachineScaleModel().summary()
        assert set(summary) == {"total_cores", "total_tera_ips",
                                "total_power_kw", "total_cost_usd",
                                "total_neurons", "total_synapses",
                                "brain_fraction"}


class TestOwnershipCost:
    def test_pc_crossover_is_a_little_over_three_years(self):
        pc = OwnershipCostModel.typical_pc()
        assert 3.0 < pc.crossover_years < 4.0

    def test_spinnaker_node_crossover_much_later(self):
        node = OwnershipCostModel.spinnaker_node()
        assert node.crossover_years > 10.0

    def test_total_cost_monotone_in_years(self):
        pc = OwnershipCostModel.typical_pc()
        assert pc.total_cost(5.0) > pc.total_cost(1.0)
        assert pc.energy_cost(0.0) == 0.0

    def test_ownership_comparison_order_of_magnitude(self):
        summary = OwnershipCostModel.ownership_comparison(lifetime_years=3.0)
        assert summary["ownership_cost_ratio"] > 10.0
        assert summary["cost_per_throughput_ratio"] > 10.0
        assert 3.0 < summary["pc_crossover_years"] < 4.0

    def test_cost_series_rows(self):
        pc = OwnershipCostModel.typical_pc()
        rows = pc.cost_series([0.0, 1.0, 2.0])
        assert len(rows) == 3
        assert rows[2][2] == pytest.approx(600.0)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OwnershipCostModel(purchase_cost_usd=-1.0)
        with pytest.raises(ValueError):
            OwnershipCostModel(dollars_per_watt_year=0.0)
        with pytest.raises(ValueError):
            OwnershipCostModel().energy_cost(-1.0)

    def test_zero_power_never_crosses_over(self):
        model = OwnershipCostModel(purchase_cost_usd=100.0, power_w=0.0)
        assert model.crossover_years == float("inf")


class TestHostSystem:
    def _machine(self):
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=4))
        BootController(machine, seed=1).boot()
        return machine

    def test_query_status_after_boot(self):
        host = HostSystem(self._machine())
        status = host.query_status(ChipCoordinate(2, 2))
        assert status["booted"] is True
        assert status["p2p_configured"] is True
        assert status["monitor_core"] is not None

    def test_unreachable_before_p2p_configuration(self):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=2))
        host = HostSystem(machine)
        response = host.query_status(ChipCoordinate(1, 1))
        assert "error" in response

    def test_survey_machine_counts(self):
        host = HostSystem(self._machine())
        survey = host.survey_machine()
        assert survey == {"chips": 9, "booted": 9, "application_loaded": 0,
                          "unreachable": 0}

    def test_router_diagnostics_reflect_traffic(self):
        machine = self._machine()
        host = HostSystem(machine)
        machine.chips[ChipCoordinate(1, 1)].router.table.add(
            key=7, mask=0xFFFFFFFF, cores=[1])
        machine.inject_multicast(ChipCoordinate(1, 1), MulticastPacket(key=7))
        machine.run()
        diagnostics = host.router_diagnostics(ChipCoordinate(1, 1))
        assert diagnostics["multicast_routed"] == 1

    def test_read_core_state(self):
        machine = self._machine()
        host = HostSystem(machine)
        message = host.send(SDPMessage(HostCommand.READ_CORE_STATE,
                                       ChipCoordinate(0, 0), {"core": 0}))
        assert message.response["state"] in ("monitor", "ready")
        bad = host.send(SDPMessage(HostCommand.READ_CORE_STATE,
                                   ChipCoordinate(0, 0), {"core": 99}))
        assert "error" in bad.response

    def test_inject_spike_reaches_router(self):
        machine = self._machine()
        host = HostSystem(machine)
        machine.origin.router.table.add(key=55, mask=0xFFFFFFFF, cores=[1])
        host.inject_spike(55)
        machine.run()
        assert machine.origin.router.stats.multicast_routed == 1

    def test_p2p_hop_accounting(self):
        machine = self._machine()
        host = HostSystem(machine)
        host.query_status(ChipCoordinate(2, 1))
        expected = machine.geometry.distance(ChipCoordinate(0, 0),
                                             ChipCoordinate(2, 1))
        assert host.p2p_hops_used == expected
        assert expected >= 1


class TestAnalysisMetrics:
    def test_mean_firing_rate(self):
        assert mean_firing_rate([10, 20, 30], 1000.0) == pytest.approx(20.0)
        assert mean_firing_rate([], 1000.0) == 0.0
        with pytest.raises(ValueError):
            mean_firing_rate([1], 0.0)

    def test_isi_cv_regular_vs_poisson(self):
        regular = list(np.arange(0.0, 1000.0, 10.0))
        rng = np.random.default_rng(0)
        poisson = list(np.cumsum(rng.exponential(10.0, 200)))
        assert isi_coefficient_of_variation(regular) < 0.1
        assert isi_coefficient_of_variation(poisson) > 0.7
        assert isi_coefficient_of_variation([1.0, 2.0]) == 0.0

    def test_spike_raster_shape_and_counts(self):
        spikes = [(0.5, 0), (1.5, 0), (2.5, 3)]
        raster = spike_raster(spikes, n_neurons=4, duration_ms=5.0)
        assert raster.shape == (4, 5)
        assert raster.sum() == 3
        assert raster[0, 0] == 1 and raster[3, 2] == 1

    def test_latency_summary_percentiles(self):
        samples = list(range(1, 101))
        summary = latency_summary(samples)
        assert summary.count == 100
        assert summary.p50_us == pytest.approx(50.5)
        assert summary.max_us == 100
        assert summary.within(100.0)
        assert not summary.within(50.0)
        empty = latency_summary([])
        assert empty.count == 0

    def test_latency_by_distance_grouping(self):
        latencies = [1.0, 2.0, 3.0, 10.0]
        distances = [1, 1, 1, 5]
        groups = latency_by_distance(latencies, distances)
        assert set(groups) == {1, 5}
        assert groups[1].count == 3
        with pytest.raises(ValueError):
            latency_by_distance([1.0], [1, 2])


class TestTrafficAnalysis:
    def test_traffic_summary_counts_link_packets(self, small_machine):
        machine = small_machine
        machine.chips[ChipCoordinate(0, 0)].router.table.add(
            key=1, mask=0xFFFFFFFF, links=[Direction.EAST])
        machine.chips[ChipCoordinate(1, 0)].router.table.add(
            key=1, mask=0xFFFFFFFF, cores=[0])
        for _ in range(5):
            machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=1))
        machine.run()
        summary = link_traffic_summary(machine)
        assert summary.total_packets == 5
        assert summary.active_links == 1
        assert summary.max_link_packets == 5
        assert 0.0 <= summary.gini_concentration <= 1.0
        assert summary.mean_packets_per_active_link == pytest.approx(5.0)

    def test_busiest_links_and_injection(self, small_machine):
        machine = small_machine
        machine.chips[ChipCoordinate(0, 0)].router.table.add(
            key=1, mask=0xFFFFFFFF, links=[Direction.NORTH])
        machine.chips[ChipCoordinate(0, 1)].router.table.add(
            key=1, mask=0xFFFFFFFF, cores=[0])
        machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=1))
        machine.run()
        top = busiest_links(machine, top=3)
        assert len(top) == 1
        injection = per_chip_injection(machine)
        assert injection == {"(0, 0)": 1}

    def test_unroutable_packet_ages_out_instead_of_circulating(self, small_machine):
        # A key with no table entry anywhere is default-routed around the
        # torus until its time phase expires; the run must terminate and the
        # packet must be dropped with the aged-out counter incremented.
        machine = small_machine
        machine.chips[ChipCoordinate(0, 0)].router.table.add(
            key=9, mask=0xFFFFFFFF, links=[Direction.NORTH])
        machine.inject_multicast(ChipCoordinate(0, 0), MulticastPacket(key=9))
        machine.run()
        aged = sum(chip.router.stats.aged_out for chip in machine)
        dropped = machine.total_dropped_packets()
        assert aged == 1
        assert dropped == 1
        assert machine.total_link_traffic() >= 1

    def test_empty_machine_summary(self, small_machine):
        summary = link_traffic_summary(small_machine)
        assert summary.total_packets == 0
        assert summary.gini_concentration == 0.0
        assert summary.mean_packets_per_active_link == 0.0
