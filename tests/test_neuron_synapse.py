"""Unit tests for synapses, synaptic rows and the deferred-event buffer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.neuron.synapse import (
    MAX_DELAY_TICKS,
    WEIGHT_SATURATION_NA,
    DeferredEventBuffer,
    Synapse,
    SynapticRow,
)


class TestSynapse:
    def test_delay_range_enforced(self):
        with pytest.raises(ValueError):
            Synapse(target=0, weight=1.0, delay_ticks=0)
        with pytest.raises(ValueError):
            Synapse(target=0, weight=1.0, delay_ticks=MAX_DELAY_TICKS + 1)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            Synapse(target=-1, weight=1.0)

    def test_pack_unpack_round_trip(self):
        synapse = Synapse(target=123, weight=3.25, delay_ticks=7)
        assert Synapse.unpack(synapse.pack()) == synapse

    def test_inhibitory_weight_round_trips(self):
        synapse = Synapse(target=5, weight=-1.5, delay_ticks=2)
        recovered = Synapse.unpack(synapse.pack())
        assert recovered.weight == -1.5

    def test_weight_quantised_to_fixed_point(self):
        synapse = Synapse(target=0, weight=0.07, delay_ticks=1)
        recovered = Synapse.unpack(synapse.pack())
        assert abs(recovered.weight - 0.07) <= 1.0 / 16

    def test_target_index_width_enforced_on_pack(self):
        with pytest.raises(ValueError):
            Synapse(target=5000, weight=1.0).pack()

    @given(st.integers(min_value=0, max_value=4095),
           st.integers(min_value=1, max_value=16),
           st.floats(min_value=-100.0, max_value=100.0))
    @settings(max_examples=100, deadline=None)
    def test_pack_unpack_preserves_fields(self, target, delay, weight):
        synapse = Synapse(target=target, weight=weight, delay_ticks=delay)
        recovered = Synapse.unpack(synapse.pack())
        assert recovered.target == target
        assert recovered.delay_ticks == delay
        assert abs(recovered.weight - weight) <= 1.0 / 16 + 1e-9


class TestSynapticRow:
    def test_row_packs_with_count_header(self):
        row = SynapticRow(1, [Synapse(0, 1.0), Synapse(1, 2.0)])
        words = row.pack()
        assert words[0] == 2
        assert len(words) == 3
        assert row.n_words == 3

    def test_unpack_round_trip(self):
        row = SynapticRow(9, [Synapse(i, 0.5 * i + 0.5, delay_ticks=i + 1)
                              for i in range(5)])
        recovered = SynapticRow.unpack(9, row.pack())
        assert len(recovered) == 5
        assert [s.target for s in recovered] == [s.target for s in row]

    def test_unpack_with_padding_ignores_trailing_words(self):
        row = SynapticRow(1, [Synapse(3, 1.0)])
        words = row.pack() + [0, 0, 0]
        recovered = SynapticRow.unpack(1, words)
        assert len(recovered) == 1

    def test_unpack_rejects_truncated_data(self):
        with pytest.raises(ValueError):
            SynapticRow.unpack(1, [5, 0])
        with pytest.raises(ValueError):
            SynapticRow.unpack(1, [])

    def test_total_charge_and_max_delay(self):
        row = SynapticRow(1, [Synapse(0, 1.0, 2), Synapse(1, -0.5, 9)])
        assert row.total_charge() == pytest.approx(0.5)
        assert row.max_delay() == 9
        assert SynapticRow(2).max_delay() == 0


class TestDeferredEventBuffer:
    def test_input_arrives_after_programmed_delay(self):
        buffer = DeferredEventBuffer(4)
        buffer.add_input(target=2, weight=1.5, delay_ticks=3)
        assert buffer.drain().sum() == 0.0   # tick 0
        assert buffer.drain().sum() == 0.0   # tick 1
        assert buffer.drain().sum() == 0.0   # tick 2
        inputs = buffer.drain()              # tick 3
        assert inputs[2] == pytest.approx(1.5)

    def test_inputs_accumulate_in_same_slot(self):
        buffer = DeferredEventBuffer(2)
        buffer.add_input(0, 1.0, 1)
        buffer.add_input(0, 2.0, 1)
        buffer.drain()
        assert buffer.drain()[0] == pytest.approx(3.0)

    def test_drained_slot_is_cleared(self):
        buffer = DeferredEventBuffer(2)
        buffer.add_input(0, 1.0, 1)
        buffer.drain()
        buffer.drain()
        for _ in range(20):
            assert buffer.drain().sum() == 0.0

    def test_delay_wraps_around_ring(self):
        buffer = DeferredEventBuffer(1, max_delay_ticks=4)
        for _ in range(10):
            buffer.drain()
        buffer.add_input(0, 1.0, 4)
        for _ in range(4):
            assert buffer.drain()[0] == 0.0
        assert buffer.drain()[0] == pytest.approx(1.0)

    def test_out_of_range_delay_rejected(self):
        buffer = DeferredEventBuffer(1, max_delay_ticks=4)
        with pytest.raises(ValueError):
            buffer.add_input(0, 1.0, 5)
        with pytest.raises(ValueError):
            buffer.add_input(0, 1.0, 0)

    def test_out_of_range_target_rejected(self):
        buffer = DeferredEventBuffer(2)
        with pytest.raises(IndexError):
            buffer.add_input(2, 1.0, 1)

    def test_add_row_defers_all_synapses(self):
        buffer = DeferredEventBuffer(8)
        row = SynapticRow(0, [Synapse(i, 1.0, delay_ticks=i + 1)
                              for i in range(4)])
        buffer.add_row(row)
        assert buffer.events_deferred == 4
        assert buffer.pending_charge() == pytest.approx(4.0)

    def test_reset_clears_state(self):
        buffer = DeferredEventBuffer(2)
        buffer.add_input(0, 5.0, 2)
        buffer.reset()
        assert buffer.pending_charge() == 0.0
        assert buffer.current_tick == 0

    def test_accumulated_charge_saturates_at_weight_range(self):
        # Paper Section 5.3: ring-buffer slots accumulate in the 16-bit
        # fixed-point weight format, so they saturate rather than wrap.
        buffer = DeferredEventBuffer(2)
        buffer.add_input(0, WEIGHT_SATURATION_NA + 500.0, 1)
        assert buffer.saturations == 1
        assert buffer.drain().sum() == 0.0
        assert buffer.drain()[0] == pytest.approx(WEIGHT_SATURATION_NA)

    def test_saturation_counts_each_clamping_event(self):
        buffer = DeferredEventBuffer(1)
        buffer.add_input(0, 0.75 * WEIGHT_SATURATION_NA, 1)
        assert buffer.saturations == 0
        buffer.add_input(0, 0.75 * WEIGHT_SATURATION_NA, 1)
        buffer.add_input(0, 1.0, 1)
        assert buffer.saturations == 2

    def test_negative_charge_saturates_symmetrically(self):
        buffer = DeferredEventBuffer(1)
        buffer.add_input(0, -2.0 * WEIGHT_SATURATION_NA, 3)
        assert buffer.saturations == 1
        buffer.drain(); buffer.drain(); buffer.drain()
        assert buffer.drain()[0] == pytest.approx(-WEIGHT_SATURATION_NA)

    def test_vectorized_scatter_saturates_and_counts(self):
        buffer = DeferredEventBuffer(4)
        buffer.add_events(np.array([0, 0, 2]),
                          np.array([WEIGHT_SATURATION_NA,
                                    WEIGHT_SATURATION_NA, 1.0]),
                          np.array([1, 1, 1]))
        assert buffer.saturations == 1
        buffer.drain()
        drained = buffer.drain()
        assert drained[0] == pytest.approx(WEIGHT_SATURATION_NA)
        assert drained[2] == pytest.approx(1.0)

    def test_aged_events_land_in_the_original_arrival_slot(self):
        # A batch applied 2 ticks after its send barrier (age 2) with a
        # programmed delay of 5 must arrive 5 - 2 = 3 ticks from now —
        # the same absolute tick a per-tick exchange would have hit.
        aged = DeferredEventBuffer(3)
        aged.drain(); aged.drain()                       # now at tick 2
        aged.add_events_aged(np.array([1]), np.array([2.0]),
                             np.array([5]), age=2)
        reference = DeferredEventBuffer(3)
        reference.add_events(np.array([1]), np.array([2.0]), np.array([5]))
        for _ in range(2):
            assert reference.drain().sum() == 0.0        # ticks 0 and 1
        for _ in range(6):
            assert np.array_equal(aged.drain(), reference.drain())

    def test_age_zero_can_arrive_this_tick(self):
        # Full lookahead makes effective delay 0 reachable: the event
        # drains on the very next call, which plain add_events rejects.
        buffer = DeferredEventBuffer(2)
        buffer.add_events_aged(np.array([0]), np.array([1.5]),
                               np.array([3]), age=3)
        assert buffer.drain()[0] == pytest.approx(1.5)

    def test_aged_events_are_validated(self):
        buffer = DeferredEventBuffer(2)
        with pytest.raises(ValueError):
            buffer.add_events_aged(np.array([0]), np.array([1.0]),
                                   np.array([1]), age=-1)
        with pytest.raises(ValueError):
            # age beyond the delay: the lookahead bound was violated.
            buffer.add_events_aged(np.array([0]), np.array([1.0]),
                                   np.array([2]), age=3)
        with pytest.raises(ValueError):
            buffer.add_events_aged(np.array([0]), np.array([1.0]),
                                   np.array([MAX_DELAY_TICKS + 1]), age=1)
        with pytest.raises(IndexError):
            buffer.add_events_aged(np.array([5]), np.array([1.0]),
                                   np.array([2]), age=1)

    def test_age_zero_delegates_to_the_plain_path(self):
        buffer = DeferredEventBuffer(2)
        buffer.add_events_aged(np.array([1]), np.array([2.0]),
                               np.array([1]), age=0)
        buffer.drain()
        assert buffer.drain()[1] == pytest.approx(2.0)

    def test_reset_clears_saturation_counter(self):
        buffer = DeferredEventBuffer(1)
        buffer.add_input(0, 2.0 * WEIGHT_SATURATION_NA, 1)
        assert buffer.saturations == 1
        buffer.reset()
        assert buffer.saturations == 0
        assert buffer.events_deferred == 0

    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=9),
                              st.floats(min_value=-5, max_value=5),
                              st.integers(min_value=1, max_value=16)),
                    min_size=1, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_charge_is_conserved(self, events):
        # Property: everything added to the buffer is drained exactly once
        # within max_delay ticks — no charge is lost or duplicated.
        buffer = DeferredEventBuffer(10)
        total_in = 0.0
        for target, weight, delay in events:
            buffer.add_input(target, weight, delay)
            total_in += weight
        total_out = 0.0
        for _ in range(MAX_DELAY_TICKS + 1):
            total_out += buffer.drain().sum()
        assert total_out == pytest.approx(total_in, abs=1e-9)
        assert buffer.pending_charge() == pytest.approx(0.0, abs=1e-9)
