"""Unit tests for the neural coding package (Section 5.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coding.n_of_m import NOfMCode
from repro.coding.rank_order import RankOrderCode, RankOrderDecoder
from repro.coding.rate import RateCode
from repro.coding.retina import GanglionCellType, RetinaModel, RetinaParameters


class TestRateCode:
    def test_rate_mapping_clipped_and_linear(self):
        code = RateCode(max_rate_hz=100.0, min_rate_hz=10.0)
        rates = code.rates_for(np.array([-1.0, 0.0, 0.5, 1.0, 2.0]))
        assert rates.tolist() == [10.0, 10.0, 55.0, 100.0, 100.0]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RateCode(max_rate_hz=10.0, min_rate_hz=20.0)
        with pytest.raises(ValueError):
            RateCode(timestep_ms=0.0)

    def test_encode_produces_expected_spike_counts(self):
        code = RateCode(max_rate_hz=100.0)
        rng = np.random.default_rng(0)
        trains = code.encode(np.array([1.0] * 200), 1000.0, rng)
        counts = [len(t) for t in trains]
        assert 80 < np.mean(counts) < 120

    def test_decode_window_must_be_positive(self):
        with pytest.raises(ValueError):
            RateCode().decode([[1.0]], 0.0)

    def test_long_window_decodes_accurately(self):
        code = RateCode(max_rate_hz=200.0)
        values = np.linspace(0.1, 0.9, 30)
        error = code.decoding_error(values, window_ms=500.0,
                                    duration_ms=500.0,
                                    rng=np.random.default_rng(1))
        assert error < 0.15

    def test_single_millisecond_window_decodes_poorly(self):
        # "It is hard to estimate a firing rate from a single spike!"
        code = RateCode(max_rate_hz=200.0)
        values = np.linspace(0.1, 0.9, 30)
        short = code.decoding_error(values, window_ms=1.0,
                                    rng=np.random.default_rng(1))
        long = code.decoding_error(values, window_ms=500.0,
                                   duration_ms=500.0,
                                   rng=np.random.default_rng(1))
        assert short > 2 * long


class TestNOfMCode:
    def test_capacity_formula(self):
        code = NOfMCode(m=10, n=3)
        assert code.codewords == 120
        assert code.capacity_bits == pytest.approx(np.log2(120))
        assert code.capacity_bits_per_spike == pytest.approx(np.log2(120) / 3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            NOfMCode(m=0, n=1)
        with pytest.raises(ValueError):
            NOfMCode(m=5, n=6)

    def test_encode_selects_strongest_n(self):
        code = NOfMCode(m=6, n=2)
        active = code.encode([0.1, 0.9, 0.3, 0.8, 0.0, 0.2])
        assert active == frozenset({1, 3})

    def test_encode_requires_full_drive_vector(self):
        with pytest.raises(ValueError):
            NOfMCode(m=4, n=2).encode([1.0, 2.0])

    def test_validity_check(self):
        code = NOfMCode(m=8, n=3)
        assert code.is_valid({0, 1, 2})
        assert not code.is_valid({0, 1})
        assert not code.is_valid({0, 1, 99})

    def test_decode_by_maximum_overlap(self):
        code = NOfMCode(m=20, n=5)
        codebook = [frozenset(range(i, i + 5)) for i in range(0, 15, 5)]
        assert code.decode({5, 6, 7, 8, 9}, codebook) == 1
        # One corrupted position must not change the decision.
        assert code.decode({5, 6, 7, 8, 19}, codebook) == 1

    def test_decode_rejects_empty_codebook(self):
        with pytest.raises(ValueError):
            NOfMCode(m=4, n=2).decode({0, 1}, [])

    def test_corrupt_preserves_codeword_weight(self):
        code = NOfMCode(m=30, n=10)
        original = code.encode(np.arange(30))
        corrupted = code.corrupt(original, 3, np.random.default_rng(0))
        assert len(corrupted) == 10
        assert code.overlap(original, corrupted) == 7

    @given(st.integers(min_value=2, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_capacity_peaks_near_half(self, m):
        # Information capacity of N-of-M is maximised around N = M/2.
        half = NOfMCode(m=m, n=max(1, m // 2)).capacity_bits
        one = NOfMCode(m=m, n=1).capacity_bits
        assert half >= one


class TestRankOrderCode:
    def test_order_is_strongest_first(self):
        code = RankOrderCode()
        order = code.encode_order([0.2, 0.9, 0.5])
        assert order == [1, 2, 0]

    def test_n_active_limits_salvo(self):
        code = RankOrderCode(n_active=2)
        assert len(code.encode_order([0.1, 0.5, 0.9, 0.3])) == 2

    def test_latencies_monotone_with_rank(self):
        code = RankOrderCode(latency_spread_ms=10.0)
        latencies = code.encode_latencies([0.9, 0.1, 0.5])
        times = {neuron: t for neuron, t in latencies}
        assert times[0] < times[2] < times[1]
        assert times[0] == 0.0
        assert max(times.values()) == pytest.approx(10.0)

    def test_decode_preserves_ordering(self):
        code = RankOrderCode(attenuation=0.8)
        values = code.decode([3, 1, 0], size=5)
        assert values[3] > values[1] > values[0]
        assert values[2] == 0.0 and values[4] == 0.0

    def test_decode_checks_indices(self):
        with pytest.raises(IndexError):
            RankOrderCode().decode([7], size=4)

    def test_classification_from_single_salvo(self):
        rng = np.random.default_rng(2)
        codebook = [rng.random(64) for _ in range(8)]
        code = RankOrderCode()
        for index, stimulus in enumerate(codebook):
            order = code.encode_order(stimulus)
            assert code.classify(order, codebook) == index

    def test_similarity_bounds(self):
        code = RankOrderCode()
        reference = np.linspace(1.0, 0.1, 10)
        perfect = code.similarity(code.encode_order(reference), reference)
        reversed_order = code.similarity(
            code.encode_order(reference[::-1].copy()), reference)
        assert 0.0 <= reversed_order < perfect <= 1.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RankOrderCode(attenuation=0.0)
        with pytest.raises(ValueError):
            RankOrderCode(latency_spread_ms=-1.0)


class TestRankOrderDecoder:
    def test_incremental_decoding_converges(self):
        rng = np.random.default_rng(3)
        codebook = [rng.random(32) for _ in range(5)]
        target = 2
        order = RankOrderCode().encode_order(codebook[target])
        decoder = RankOrderDecoder(size=32)
        for neuron in order[:8]:
            decoder.spike(neuron)
        assert decoder.best_match(codebook) == target

    def test_duplicate_spikes_ignored(self):
        decoder = RankOrderDecoder(size=4)
        decoder.spike(1)
        decoder.spike(1)
        assert decoder.rank == 1

    def test_reset_starts_new_salvo(self):
        decoder = RankOrderDecoder(size=4)
        decoder.spike(0)
        decoder.reset()
        assert decoder.rank == 0
        assert decoder.accumulated.sum() == 0.0

    def test_out_of_range_spike_rejected(self):
        with pytest.raises(IndexError):
            RankOrderDecoder(size=4).spike(10)


class TestRetina:
    def test_mosaic_covers_both_polarities_and_scales(self):
        retina = RetinaModel((12, 12), RetinaParameters(scales=(1.0, 2.0)))
        types = {cell.cell_type for cell in retina.cells}
        scales = {cell.scale for cell in retina.cells}
        assert types == {GanglionCellType.ON_CENTRE, GanglionCellType.OFF_CENTRE}
        assert scales == {1.0, 2.0}

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            RetinaParameters(scales=())
        with pytest.raises(ValueError):
            RetinaParameters(surround_ratio=0.5)
        with pytest.raises(ValueError):
            RetinaModel((2, 2))

    def test_uniform_image_elicits_no_response(self):
        retina = RetinaModel((10, 10))
        responses = retina.respond(np.full((10, 10), 0.5))
        assert responses.max() == pytest.approx(0.0, abs=1e-9)

    def test_on_and_off_cells_respond_to_opposite_contrast(self):
        retina = RetinaModel((12, 12),
                             RetinaParameters(scales=(1.5,),
                                              inhibition_strength=0.0))
        spot = RetinaModel.make_test_image((12, 12), "spot")
        responses = retina.respond(spot)
        on_total = sum(responses[c.index] for c in retina.cells
                       if c.cell_type is GanglionCellType.ON_CENTRE)
        responses_inverted = retina.respond(1.0 - spot)
        off_total = sum(responses_inverted[c.index] for c in retina.cells
                        if c.cell_type is GanglionCellType.OFF_CENTRE)
        assert on_total > 0.0
        assert off_total > 0.0

    def test_lateral_inhibition_reduces_total_response(self):
        image = RetinaModel.make_test_image((12, 12), "bars")
        with_inhibition = RetinaModel(
            (12, 12), RetinaParameters(inhibition_strength=0.8))
        without = RetinaModel(
            (12, 12), RetinaParameters(inhibition_strength=0.0))
        assert (with_inhibition.respond(image).sum()
                <= without.respond(image).sum())

    def test_failed_cells_do_not_fire(self):
        retina = RetinaModel((10, 10))
        image = RetinaModel.make_test_image((10, 10), "spot")
        failed = retina.fail_cells(0.3, np.random.default_rng(0))
        salvo = retina.encode_latencies(image)
        firing = {cell for cell, _ in salvo}
        assert not (firing & set(failed))

    def test_reconstruction_correlates_with_input(self):
        retina = RetinaModel((16, 16))
        image = RetinaModel.make_test_image((16, 16), "spot")
        assert retina.reconstruction_similarity(image) > 0.5

    def test_graceful_degradation_with_failures(self):
        # Section 5.4: losing neurons loses very little information because
        # neighbours with overlapping receptive fields take over.
        image = RetinaModel.make_test_image((16, 16), "spot")
        intact = RetinaModel((16, 16))
        baseline = intact.reconstruction_similarity(image)
        damaged = RetinaModel((16, 16))
        damaged.fail_cells(0.2, np.random.default_rng(1))
        degraded = damaged.reconstruction_similarity(image)
        assert degraded > 0.7 * baseline

    def test_failure_fraction_validated(self):
        retina = RetinaModel((8, 8))
        with pytest.raises(ValueError):
            retina.fail_cells(1.5)

    def test_reset_failures_restores_all_cells(self):
        retina = RetinaModel((8, 8))
        retina.fail_cells(0.5, np.random.default_rng(0))
        retina.reset_failures()
        assert all(not cell.failed for cell in retina.cells)

    def test_latency_coding_strongest_fires_first(self):
        retina = RetinaModel((12, 12))
        image = RetinaModel.make_test_image((12, 12), "spot")
        salvo = retina.encode_latencies(image)
        responses = {cell.index: cell.response for cell in retina.cells}
        latencies = dict(salvo)
        strongest = max(latencies, key=lambda i: responses[i])
        assert latencies[strongest] == pytest.approx(0.0)

    def test_test_image_kinds(self):
        for kind in ("bars", "spot", "noise"):
            image = RetinaModel.make_test_image((8, 8), kind)
            assert image.shape == (8, 8)
        with pytest.raises(ValueError):
            RetinaModel.make_test_image((8, 8), "checker")
