"""Cross-module property-based tests.

These properties tie the mapping tool-chain, the router and the machine
model together: for randomly generated networks, every synapse implied by
the network description must be reachable through the installed routing
tables, and the AER key allocation must remain collision-free.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import ChipCoordinate, Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.core.packets import MulticastPacket
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placer
from repro.mapping.routing_generator import RoutingTableGenerator
from repro.mapping.synaptic_matrix import SynapticMatrixBuilder
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population
from repro.neuron.synapse import SynapticRow


def _trace_multicast(machine, source_chip, key, max_hops=64):
    """Follow routing tables from ``source_chip`` and collect deliveries.

    Returns the set of ``(chip, core)`` pairs the packet reaches.  The walk
    is breadth-first over (chip, arrival-direction) states, which mirrors
    what the hardware does without needing the event kernel.
    """
    deliveries = set()
    visited = set()
    frontier = [(source_chip, None)]
    hops = 0
    while frontier and hops < max_hops:
        hops += 1
        next_frontier = []
        for chip_coord, arrival in frontier:
            if (chip_coord, arrival) in visited:
                continue
            visited.add((chip_coord, arrival))
            chip = machine.chips[chip_coord]
            decision = chip.router.decide(MulticastPacket(key=key), arrival)
            for core in decision.cores:
                deliveries.add((chip_coord, core))
            if decision.default_routed and arrival is None:
                continue
            for direction in decision.links:
                target = chip_coord.neighbour(direction,
                                              machine.config.width,
                                              machine.config.height)
                next_frontier.append((target, direction.opposite))
        frontier = next_frontier
    return deliveries


network_strategy = st.tuples(
    st.integers(min_value=5, max_value=30),    # pre size
    st.integers(min_value=5, max_value=30),    # post size
    st.floats(min_value=0.05, max_value=0.6),  # connection probability
    st.integers(min_value=0, max_value=10_000))  # seed


class TestMappingRoutingConsistency:
    @given(network_strategy)
    @settings(max_examples=15, deadline=None)
    def test_every_synapse_is_reachable_through_the_routing_tables(self, spec):
        n_pre, n_post, p_connect, seed = spec
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=4))
        network = Network(seed=seed)
        pre = Population(n_pre, "lif", label="prop-pre")
        post = Population(n_post, "lif", label="prop-post")
        network.connect(pre, post,
                        FixedProbabilityConnector(p_connect=p_connect,
                                                  weight=0.5))
        placement = Placer(machine, max_neurons_per_core=8).place(network)
        keys = KeyAllocator(placement)
        RoutingTableGenerator(machine, placement, keys).generate(network)
        builder = SynapticMatrixBuilder(machine, placement, keys)
        builder.build(network)

        rng = np.random.default_rng(seed)
        rows = network.projections[0].build_rows(rng)

        for source_neuron, synapses in rows.items():
            if not synapses:
                continue
            key = keys.key_for_neuron("prop-pre", source_neuron)
            source_chip, _ = placement.location_of(
                placement.vertex_for_neuron("prop-pre", source_neuron)[0])
            deliveries = _trace_multicast(machine, source_chip, key)
            # Every post-synaptic target of this neuron must live on a
            # (chip, core) the packet reaches.
            for synapse in synapses:
                target_vertex, _ = placement.vertex_for_neuron("prop-post",
                                                               synapse.target)
                assert placement.location_of(target_vertex) in deliveries

    @given(network_strategy)
    @settings(max_examples=15, deadline=None)
    def test_key_allocation_is_collision_free_and_invertible(self, spec):
        n_pre, n_post, p_connect, seed = spec
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=4))
        network = Network(seed=seed)
        pre = Population(n_pre, "lif", label="key-pre")
        post = Population(n_post, "lif", label="key-post")
        network.connect(pre, post, FixedProbabilityConnector(p_connect))
        placement = Placer(machine, max_neurons_per_core=8).place(network)
        keys = KeyAllocator(placement)

        seen = {}
        for label, size in (("key-pre", n_pre), ("key-post", n_post)):
            for neuron in range(size):
                key = keys.key_for_neuron(label, neuron)
                assert key not in seen, "key collision with %s" % (seen.get(key),)
                seen[key] = (label, neuron)
                assert keys.neuron_for_key(key) == (label, neuron)

    @given(st.integers(min_value=0, max_value=10_000),
           st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=10, deadline=None)
    def test_synaptic_rows_in_sdram_round_trip(self, seed, p_connect):
        machine = SpiNNakerMachine(MachineConfig(width=2, height=2,
                                                 cores_per_chip=4))
        network = Network(seed=seed)
        pre = Population(12, "lif", label="sdram-pre")
        post = Population(12, "lif", label="sdram-post")
        network.connect(pre, post, FixedProbabilityConnector(p_connect,
                                                             weight=1.25,
                                                             delay_range=(1, 16)))
        placement = Placer(machine, max_neurons_per_core=6).place(network)
        keys = KeyAllocator(placement)
        builder = SynapticMatrixBuilder(machine, placement, keys)
        core_data = builder.build(network)

        rng = np.random.default_rng(seed)
        rows = network.projections[0].build_rows(rng)
        total_from_sdram = 0
        for (chip_coord, _core), data in core_data.items():
            chip = machine.chips[chip_coord]
            for entry in data.population_table.entries:
                for row_index in range(entry.n_rows):
                    address = entry.sdram_address + 4 * row_index * entry.row_stride_words
                    words = chip.sdram.read_block(address,
                                                  entry.row_stride_words)
                    row = SynapticRow.unpack(entry.key | row_index, words)
                    total_from_sdram += len(row)
        expected = sum(len(r) for r in rows.values())
        assert total_from_sdram == expected


class TestRouterNeverWedges:
    @given(st.lists(st.integers(min_value=0, max_value=5), min_size=1,
                    max_size=6),
           st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_traffic_with_random_failed_links_never_deadlocks(self, failed,
                                                              seed):
        # Property: whatever set of links is failed, injecting traffic
        # never wedges the machine — every packet is either delivered or
        # deliberately dropped, and the event queue always drains.
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=2))
        rng = np.random.default_rng(seed)
        directions = list(Direction)
        for index in failed:
            coordinate = ChipCoordinate(int(rng.integers(0, 3)),
                                        int(rng.integers(0, 3)))
            machine.fail_link(coordinate, directions[index])

        source = ChipCoordinate(0, 0)
        target = ChipCoordinate(2, 1)
        route = machine.geometry.route(source, target)
        current = source
        for direction in route:
            machine.chips[current].router.table.add(key=1, mask=0xFFFFFFFF,
                                                    links=[direction])
            current = current.neighbour(direction, 3, 3)
        machine.chips[target].router.table.add(key=1, mask=0xFFFFFFFF,
                                               cores=[0])
        delivered = []
        core = machine.chips[target].cores[0]
        core.run_self_test(True)
        core.start_application()
        core.on_packet(lambda packet: delivered.append(packet.key))

        for _ in range(20):
            machine.inject_multicast(source, MulticastPacket(key=1))
        executed = machine.kernel.run(max_events=50_000)
        assert machine.kernel.pending_events == 0
        assert executed < 50_000
        assert len(delivered) + machine.total_dropped_packets() == 20
