"""Edge-case tests for ``benchmarks.reporting.emit_json``."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from benchmarks.reporting import emit_json


def read(path):
    with open(path) as handle:
        return json.load(handle)


class TestEmitJson:
    def test_writes_numeric_metrics(self, tmp_path):
        path = str(tmp_path / "BENCH_x1.json")
        written = emit_json("x1", {"a": 1, "b": 2.5,
                                   "c": np.float64(0.125),
                                   "d": np.int64(7),
                                   "flag": True}, path=path)
        assert written == path
        payload = read(path)
        assert payload["bench"] == "x1"
        assert payload["metrics"] == {"a": 1.0, "b": 2.5, "c": 0.125,
                                      "d": 7.0, "flag": 1.0}

    def test_strings_pass_through(self, tmp_path):
        path = str(tmp_path / "BENCH_x2.json")
        emit_json("x2", {"verdict": "IDENTICAL", "n": 3}, path=path)
        assert read(path)["metrics"] == {"verdict": "IDENTICAL", "n": 3.0}

    def test_partial_metrics_are_fine(self, tmp_path):
        # A benchmark cut short may emit a subset (or none) of its
        # metrics; the file must still be valid, comparable JSON.
        path = str(tmp_path / "BENCH_x3.json")
        emit_json("x3", {}, path=path)
        assert read(path) == {"bench": "x3", "metrics": {}}

    def test_overwrites_a_stale_file(self, tmp_path):
        path = str(tmp_path / "BENCH_x4.json")
        emit_json("x4", {"value": 1.0, "stale_only": 9.0}, path=path)
        emit_json("x4", {"value": 2.0}, path=path)
        # The rewrite fully replaces the old metrics (no merge residue)
        # and leaves no temporary file behind.
        assert read(path)["metrics"] == {"value": 2.0}
        assert os.listdir(str(tmp_path)) == ["BENCH_x4.json"]

    @pytest.mark.parametrize("bad", [None, {"nested": 1}, [1, 2],
                                     object(), np.array([1.0, 2.0])])
    def test_non_serialisable_values_raise_cleanly(self, tmp_path, bad):
        path = str(tmp_path / "BENCH_x5.json")
        with pytest.raises(TypeError, match="metric 'bad' of bench 'x5'"):
            emit_json("x5", {"bad": bad}, path=path)
        # The failed emit must not leave a partial file behind.
        assert not os.path.exists(path)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"),
                                     -float("inf")])
    def test_non_finite_values_raise_cleanly(self, tmp_path, bad):
        path = str(tmp_path / "BENCH_x6.json")
        with pytest.raises(ValueError, match="not finite"):
            emit_json("x6", {"bad": bad}, path=path)
        assert not os.path.exists(path)

    def test_empty_bench_id_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            emit_json("", {"a": 1.0}, path=str(tmp_path / "BENCH_.json"))
