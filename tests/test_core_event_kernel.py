"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.event_kernel import EventKernel, microseconds, milliseconds


class TestScheduling:
    def test_schedule_and_run_single_event(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(5.0, lambda k: fired.append(k.now))
        kernel.run()
        assert fired == [5.0]
        assert kernel.now == 5.0

    def test_schedule_after_uses_relative_delay(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(10.0, lambda k: k.schedule_after(
            2.5, lambda k2: fired.append(k2.now)))
        kernel.run()
        assert fired == [12.5]

    def test_schedule_in_past_raises(self):
        kernel = EventKernel()
        kernel.schedule(10.0, lambda k: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule(5.0, lambda k: None)

    def test_negative_delay_raises(self):
        kernel = EventKernel()
        with pytest.raises(ValueError):
            kernel.schedule_after(-1.0, lambda k: None)

    def test_events_run_in_time_order(self):
        kernel = EventKernel()
        order = []
        kernel.schedule(3.0, lambda k: order.append(3))
        kernel.schedule(1.0, lambda k: order.append(1))
        kernel.schedule(2.0, lambda k: order.append(2))
        kernel.run()
        assert order == [1, 2, 3]

    def test_priority_breaks_ties_at_equal_time(self):
        kernel = EventKernel()
        order = []
        kernel.schedule(1.0, lambda k: order.append("low"), priority=10)
        kernel.schedule(1.0, lambda k: order.append("high"), priority=1)
        kernel.run()
        assert order == ["high", "low"]

    def test_insertion_order_breaks_full_ties(self):
        kernel = EventKernel()
        order = []
        kernel.schedule(1.0, lambda k: order.append("first"), priority=5)
        kernel.schedule(1.0, lambda k: order.append("second"), priority=5)
        kernel.run()
        assert order == ["first", "second"]

    def test_kwargs_forwarded_to_callback(self):
        kernel = EventKernel()
        received = {}
        kernel.schedule(1.0, lambda k, value: received.update(value=value),
                        value=42)
        kernel.run()
        assert received["value"] == 42


class TestBatchedEvents:
    def test_schedule_batch_counts_logical_events(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule_batch(2.0, lambda k: fired.append(k.now), count=25)
        kernel.run()
        assert fired == [2.0]
        assert kernel.events_processed == 25

    def test_schedule_batch_rejects_empty_batches(self):
        kernel = EventKernel()
        with pytest.raises(ValueError):
            kernel.schedule_batch(1.0, lambda k: None, count=0)

    def test_batched_event_can_be_cancelled(self):
        kernel = EventKernel()
        fired = []
        event = kernel.schedule_batch(1.0, lambda k: fired.append(1),
                                      count=10)
        event.cancel()
        kernel.run()
        assert fired == []
        assert kernel.events_processed == 0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = EventKernel()
        fired = []
        event = kernel.schedule(1.0, lambda k: fired.append("no"))
        event.cancel()
        kernel.run()
        assert fired == []

    def test_cancelled_event_not_counted_as_processed(self):
        kernel = EventKernel()
        event = kernel.schedule(1.0, lambda k: None)
        event.cancel()
        kernel.schedule(2.0, lambda k: None)
        kernel.run()
        assert kernel.events_processed == 1


class TestPeriodic:
    def test_periodic_fires_repeatedly(self):
        kernel = EventKernel()
        times = []
        kernel.schedule_periodic(10.0, lambda k: times.append(k.now))
        kernel.run_until(35.0)
        assert times == [10.0, 20.0, 30.0]

    def test_periodic_cancel_stops_chain(self):
        kernel = EventKernel()
        times = []
        controller = kernel.schedule_periodic(10.0, lambda k: times.append(k.now))
        kernel.run_until(25.0)
        controller.cancel()
        kernel.run_until(100.0)
        assert times == [10.0, 20.0]

    def test_periodic_custom_start(self):
        kernel = EventKernel()
        times = []
        kernel.schedule_periodic(10.0, lambda k: times.append(k.now), start=5.0)
        kernel.run_until(26.0)
        assert times == [5.0, 15.0, 25.0]

    def test_non_positive_period_raises(self):
        kernel = EventKernel()
        with pytest.raises(ValueError):
            kernel.schedule_periodic(0.0, lambda k: None)


class TestRunControl:
    def test_run_until_advances_clock_even_when_idle(self):
        kernel = EventKernel()
        kernel.run_until(100.0)
        assert kernel.now == 100.0

    def test_run_until_does_not_execute_later_events(self):
        kernel = EventKernel()
        fired = []
        kernel.schedule(50.0, lambda k: fired.append("early"))
        kernel.schedule(150.0, lambda k: fired.append("late"))
        kernel.run_until(100.0)
        assert fired == ["early"]
        assert kernel.pending_events == 1

    def test_run_until_backwards_raises(self):
        kernel = EventKernel()
        kernel.run_until(10.0)
        with pytest.raises(ValueError):
            kernel.run_until(5.0)

    def test_run_max_events_limit(self):
        kernel = EventKernel()
        for i in range(10):
            kernel.schedule(float(i + 1), lambda k: None)
        executed = kernel.run(max_events=4)
        assert executed == 4
        assert kernel.pending_events == 6

    def test_run_until_stopped_by_max_events_keeps_clock_consistent(self):
        # Regression: run_until used to advance the clock to end_time even
        # when cut short by max_events, so the still-pending events then
        # executed with the clock moving backwards.
        kernel = EventKernel()
        times = []
        for i in range(5):
            kernel.schedule(float(i + 1), lambda k: times.append(k.now))
        executed = kernel.run_until(100.0, max_events=2)
        assert executed == 2
        assert kernel.now == 2.0
        kernel.run_until(100.0)
        assert times == sorted(times) == [1.0, 2.0, 3.0, 4.0, 5.0]
        assert kernel.now == 100.0

    def test_run_until_max_events_leaves_future_events_schedulable(self):
        kernel = EventKernel()
        kernel.schedule(1.0, lambda k: None)
        kernel.schedule(2.0, lambda k: None)
        kernel.run_until(50.0, max_events=1)
        # The clock stayed at the last executed event, so scheduling before
        # the original end_time is still legal.
        kernel.schedule(10.0, lambda k: None)
        assert kernel.now == 1.0
        assert kernel.pending_events == 2

    def test_run_until_max_events_still_advances_when_only_later_events_remain(self):
        # max_events only cuts the run short if an executable event is
        # actually pending; otherwise the documented advance-to-end_time
        # behaviour applies.
        kernel = EventKernel()
        kernel.schedule(1.0, lambda k: None)
        kernel.schedule(200.0, lambda k: None)
        executed = kernel.run_until(100.0, max_events=1)
        assert executed == 1
        assert kernel.now == 100.0

    def test_step_returns_false_when_empty(self):
        kernel = EventKernel()
        assert kernel.step() is False

    def test_trace_records_labels(self):
        kernel = EventKernel()
        kernel.enable_trace()
        kernel.schedule(1.0, lambda k: None, label="alpha")
        kernel.schedule(2.0, lambda k: None, label="beta")
        kernel.run()
        assert kernel.trace == [(1.0, "alpha"), (2.0, "beta")]


class TestHelpers:
    def test_milliseconds_conversion(self):
        assert milliseconds(2.0) == 2000.0

    def test_microseconds_identity(self):
        assert microseconds(7) == 7.0


class TestProperties:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_events_always_execute_in_nondecreasing_time_order(self, times):
        kernel = EventKernel()
        executed = []
        for t in times:
            kernel.schedule(t, lambda k: executed.append(k.now))
        kernel.run()
        assert executed == sorted(executed)
        assert len(executed) == len(times)

    @given(st.integers(min_value=1, max_value=200),
           st.floats(min_value=0.1, max_value=100.0))
    @settings(max_examples=30, deadline=None)
    def test_periodic_fires_expected_number_of_times(self, count, period):
        kernel = EventKernel()
        ticks = []
        kernel.schedule_periodic(period, lambda k: ticks.append(k.now))
        kernel.run_until(period * count + period * 0.5)
        assert len(ticks) == count
