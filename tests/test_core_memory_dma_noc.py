"""Unit tests for the SDRAM, DMA controller and NoC fabric models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dma import DMAController, DMADirection
from repro.core.event_kernel import EventKernel
from repro.core.noc import CommunicationsNoC, SystemNoC
from repro.core.sdram import SDRAM, SDRAMAllocationError


class TestSDRAMAllocation:
    def test_allocation_is_word_aligned(self):
        sdram = SDRAM()
        region = sdram.allocate(10)
        assert region.size == 12
        assert region.base % 4 == 0

    def test_allocations_do_not_overlap(self):
        sdram = SDRAM()
        first = sdram.allocate(100)
        second = sdram.allocate(100)
        assert second.base >= first.end

    def test_allocation_failure_when_full(self):
        sdram = SDRAM(size_bytes=1024)
        sdram.allocate(1000)
        with pytest.raises(SDRAMAllocationError):
            sdram.allocate(100)

    def test_zero_size_allocation_rejected(self):
        with pytest.raises(ValueError):
            SDRAM().allocate(0)

    def test_region_lookup_by_tag(self):
        sdram = SDRAM()
        sdram.allocate(64, tag="alpha")
        region = sdram.allocate(64, tag="beta")
        assert sdram.region_for("beta") == region
        assert sdram.region_for("missing") is None

    def test_bytes_free_accounting(self):
        sdram = SDRAM(size_bytes=1024)
        sdram.allocate(101)
        assert sdram.bytes_allocated == 104
        assert sdram.bytes_free == 1024 - 104


class TestSDRAMData:
    def test_read_back_written_word(self):
        sdram = SDRAM()
        sdram.write_word(0x100, 0xDEADBEEF)
        assert sdram.read_word(0x100) == 0xDEADBEEF

    def test_unwritten_reads_zero(self):
        assert SDRAM().read_word(0x40) == 0

    def test_block_round_trip(self):
        sdram = SDRAM()
        words = [1, 2, 3, 4, 5]
        sdram.write_block(0x200, words)
        assert sdram.read_block(0x200, 5) == words

    def test_unaligned_access_rejected(self):
        with pytest.raises(ValueError):
            SDRAM().read_word(0x3)

    def test_out_of_range_access_rejected(self):
        sdram = SDRAM(size_bytes=64)
        with pytest.raises(ValueError):
            sdram.write_word(64, 1)

    def test_values_truncated_to_32_bits(self):
        sdram = SDRAM()
        sdram.write_word(0, 0x1FFFFFFFF)
        assert sdram.read_word(0) == 0xFFFFFFFF


class TestSDRAMTiming:
    def test_transfer_time_scales_with_size(self):
        sdram = SDRAM(access_latency_us=0.1, bandwidth_bytes_per_us=100.0)
        assert sdram.transfer_time(100) == pytest.approx(1.1)
        assert sdram.transfer_time(200) > sdram.transfer_time(100)

    def test_contention_serialises_bursts(self):
        sdram = SDRAM(access_latency_us=0.0, bandwidth_bytes_per_us=100.0)
        first = sdram.schedule_transfer(0.0, 100)
        second = sdram.schedule_transfer(0.0, 100)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_idle_interface_starts_immediately(self):
        sdram = SDRAM(access_latency_us=0.0, bandwidth_bytes_per_us=100.0)
        sdram.schedule_transfer(0.0, 100)
        finish = sdram.schedule_transfer(10.0, 100)
        assert finish == pytest.approx(11.0)


class TestDMAController:
    def _make(self):
        kernel = EventKernel()
        sdram = SDRAM()
        return kernel, sdram, DMAController(kernel, sdram)

    def test_read_returns_sdram_contents(self):
        kernel, sdram, dma = self._make()
        sdram.write_block(0x80, [10, 20, 30])
        completed = []
        dma.read(0x80, 3, on_complete=lambda req: completed.append(req.data))
        kernel.run()
        assert completed == [[10, 20, 30]]

    def test_write_stores_to_sdram(self):
        kernel, sdram, dma = self._make()
        dma.write(0x40, [7, 8, 9])
        kernel.run()
        assert sdram.read_block(0x40, 3) == [7, 8, 9]

    def test_requests_complete_in_fifo_order(self):
        kernel, sdram, dma = self._make()
        order = []
        dma.read(0x0, 4, on_complete=lambda req: order.append("first"))
        dma.read(0x100, 4, on_complete=lambda req: order.append("second"))
        kernel.run()
        assert order == ["first", "second"]
        assert dma.completed_transfers == 2

    def test_queue_length_reflects_backlog(self):
        kernel, sdram, dma = self._make()
        dma.read(0x0, 4)
        dma.read(0x10, 4)
        dma.read(0x20, 4)
        assert dma.busy
        assert dma.queue_length == 2
        kernel.run()
        assert not dma.busy
        assert dma.queue_length == 0

    def test_latency_includes_setup_and_transfer(self):
        kernel, sdram, dma = self._make()
        finished = []
        dma.read(0x0, 100, on_complete=lambda req: finished.append(req))
        kernel.run()
        request = finished[0]
        assert request.total_latency >= dma.setup_time_us
        assert request.complete_time > request.issue_time

    def test_write_without_data_fails(self):
        kernel, sdram, dma = self._make()
        from repro.core.dma import DMARequest
        request = DMARequest(direction=DMADirection.WRITE, sdram_address=0,
                             n_words=2)
        dma.issue(request)
        with pytest.raises(RuntimeError):
            kernel.run()

    def test_total_words_accounted(self):
        kernel, sdram, dma = self._make()
        dma.read(0x0, 5)
        dma.write(0x40, [1, 2, 3])
        kernel.run()
        assert dma.total_words_transferred == 8


class TestCommunicationsNoC:
    def test_packets_serialise_on_fabric(self):
        noc = CommunicationsNoC(packets_per_us=1.0, latency_us=0.0)
        first = noc.schedule_packet(0.0)
        second = noc.schedule_packet(0.0)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)

    def test_latency_added_to_delivery(self):
        noc = CommunicationsNoC(packets_per_us=10.0, latency_us=0.5)
        assert noc.schedule_packet(0.0) == pytest.approx(0.6)

    def test_queue_delay_reported(self):
        noc = CommunicationsNoC(packets_per_us=1.0)
        noc.schedule_packet(0.0)
        assert noc.queue_delay(0.0) == pytest.approx(1.0)
        assert noc.queue_delay(5.0) == 0.0

    def test_statistics_accumulate(self):
        noc = CommunicationsNoC()
        noc.schedule_packet(0.0, bit_length=40)
        noc.schedule_packet(0.0, bit_length=72)
        assert noc.stats.transfers == 2
        assert noc.stats.total_bits == 112
        assert 0.0 < noc.stats.utilisation(1.0) <= 1.0


class TestSystemNoC:
    def test_transfer_time_scales_with_bytes(self):
        noc = SystemNoC(bandwidth_bytes_per_us=100.0, latency_us=0.0)
        assert noc.schedule_transfer(0.0, 100) == pytest.approx(1.0)

    def test_traffic_attributed_to_initiator(self):
        noc = SystemNoC()
        noc.schedule_transfer(0.0, 64, initiator="core-3")
        noc.schedule_transfer(0.0, 64, initiator="core-3")
        noc.schedule_transfer(0.0, 32, initiator="core-7")
        assert noc.traffic_by_initiator["core-3"] == 128
        assert noc.traffic_by_initiator["core-7"] == 32

    def test_negative_transfer_rejected(self):
        with pytest.raises(ValueError):
            SystemNoC().schedule_transfer(0.0, -1)


class TestMemoryProperties:
    @given(st.lists(st.integers(min_value=0, max_value=2 ** 32 - 1),
                    min_size=1, max_size=64))
    @settings(max_examples=50, deadline=None)
    def test_block_write_read_is_identity(self, words):
        sdram = SDRAM()
        sdram.write_block(0x1000, words)
        assert sdram.read_block(0x1000, len(words)) == words

    @given(st.lists(st.integers(min_value=1, max_value=4096),
                    min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_allocations_never_overlap(self, sizes):
        sdram = SDRAM()
        regions = [sdram.allocate(size) for size in sizes]
        for i, first in enumerate(regions):
            for second in regions[i + 1:]:
                assert first.end <= second.base or second.end <= first.base
