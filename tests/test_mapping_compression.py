"""Tests for routing-table compression against the known key set."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Direction
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.mapping.compression import TableCompressor, compress_machine
from repro.mapping.keys import KeyAllocator
from repro.mapping.placement import Placer
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.router.routing_table import MulticastRoutingTable
from repro.runtime.boot import BootController


def routes_for(table, keys):
    """The key -> route map a table implements (None = miss)."""
    result = {}
    for key in keys:
        entry = None
        for candidate in table.entries:
            if candidate.matches(key):
                entry = candidate
                break
        result[key] = entry.route if entry is not None else None
    return result


class TestCompressorValidation:
    def test_rejects_keys_outside_32_bits(self):
        with pytest.raises(ValueError):
            TableCompressor([1 << 32])

    def test_known_keys_deduplicated_and_sorted(self):
        compressor = TableCompressor([5, 1, 5, 3])
        assert compressor.known_keys == [1, 3, 5]


class TestBlockCover:
    def test_single_key_gets_exact_entry_when_neighbours_foreign(self):
        compressor = TableCompressor([0, 1])
        blocks = compressor.cover_group({0}, foreign={1})
        assert blocks == [(0, 0xFFFFFFFF)]

    def test_contiguous_group_collapses_to_one_block(self):
        keys = set(range(16))
        compressor = TableCompressor(keys)
        blocks = compressor.cover_group(keys, foreign=set())
        assert len(blocks) == 1
        base, mask = blocks[0]
        assert base == 0
        assert all((key & mask) == base for key in keys)

    def test_foreign_keys_never_covered(self):
        group = {0, 1, 2, 3}
        foreign = {4}
        compressor = TableCompressor(group | foreign)
        blocks = compressor.cover_group(group, foreign)
        for base, mask in blocks:
            assert all((key & mask) != base for key in foreign)
        covered = {key for key in group
                   for base, mask in blocks if (key & mask) == base}
        assert covered == group

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(min_value=0, max_value=255), min_size=1,
                   max_size=40),
           st.sets(st.integers(min_value=0, max_value=255), max_size=40))
    def test_cover_is_exact_on_known_keys(self, group, foreign):
        foreign = foreign - group
        compressor = TableCompressor(group | foreign)
        blocks = compressor.cover_group(group, foreign)
        for key in group:
            assert any((key & mask) == base for base, mask in blocks)
        for key in foreign:
            assert all((key & mask) != base for base, mask in blocks)


class TestTableCompression:
    def _table_with_per_neuron_entries(self, n_keys=32):
        table = MulticastRoutingTable()
        for key in range(n_keys):
            table.add(key=key, mask=0xFFFFFFFF, links=[Direction.EAST])
        return table

    def test_same_route_entries_collapse(self):
        table = self._table_with_per_neuron_entries()
        compressor = TableCompressor(range(32))
        report = compressor.compress(table)
        assert report.entries_before == 32
        assert report.entries_after == 1
        assert report.entries_removed == 31
        assert report.compression_ratio == pytest.approx(1 / 32)

    def test_behaviour_preserved_for_known_keys(self):
        table = MulticastRoutingTable()
        table.add(key=0x10, mask=0xFFFFFFF0, links=[Direction.NORTH])
        table.add(key=0x20, mask=0xFFFFFFF0, cores=[3])
        known = list(range(0x10, 0x30))
        before = routes_for(table, known)
        TableCompressor(known).compress(table)
        after = routes_for(table, known)
        assert after == before

    def test_missed_keys_stay_missed(self):
        table = MulticastRoutingTable()
        table.add(key=4, mask=0xFFFFFFFF, cores=[1])
        known = [4, 5, 6]
        TableCompressor(known).compress(table)
        after = routes_for(table, known)
        assert after[4] is not None
        assert after[5] is None and after[6] is None

    def test_different_routes_not_merged(self):
        table = MulticastRoutingTable()
        table.add(key=0, mask=0xFFFFFFFF, links=[Direction.EAST])
        table.add(key=1, mask=0xFFFFFFFF, links=[Direction.WEST])
        compressor = TableCompressor([0, 1])
        report = compressor.compress(table)
        assert report.entries_after == 2
        after = routes_for(table, [0, 1])
        assert after[0] != after[1]

    def test_empty_table_report(self):
        table = MulticastRoutingTable()
        report = TableCompressor([1, 2, 3]).compress(table)
        assert report.entries_before == 0
        assert report.entries_after == 0
        assert report.compression_ratio == 1.0


class TestMachineCompression:
    def _mapped_machine(self):
        machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                                 cores_per_chip=6))
        BootController(machine, seed=3).boot()
        network = Network(seed=8)
        stimulus = SpikeSourcePoisson(60, rate_hz=50.0, label="cmp-stim")
        excitatory = Population(60, "lif", label="cmp-exc")
        network.connect(stimulus, excitatory,
                        FixedProbabilityConnector(p_connect=0.2, weight=0.5,
                                                  delay_range=(1, 3)))
        placer = Placer(machine, max_neurons_per_core=16)
        placement = placer.place(network)
        keys = KeyAllocator(placement)
        from repro.mapping.routing_generator import RoutingTableGenerator
        RoutingTableGenerator(machine, placement, keys).generate(
            network, seed=8, minimise=False)
        return machine, keys

    def test_compression_never_grows_any_table(self):
        machine, keys = self._mapped_machine()
        before = {coordinate: len(chip.router.table)
                  for coordinate, chip in machine.chips.items()}
        reports = compress_machine(machine, keys)
        for coordinate, report in reports.items():
            assert report.entries_before == before[coordinate]
            assert report.entries_after <= report.entries_before

    def test_compression_preserves_routes_for_all_allocated_keys(self):
        machine, keys = self._mapped_machine()
        compressor = TableCompressor.from_allocator(keys)
        before = {coordinate: routes_for(chip.router.table,
                                         compressor.known_keys)
                  for coordinate, chip in machine.chips.items()}
        compress_machine(machine, keys)
        for coordinate, chip in machine.chips.items():
            after = routes_for(chip.router.table, compressor.known_keys)
            assert after == before[coordinate]
