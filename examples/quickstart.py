"""Quickstart: boot a small SpiNNaker machine, map a spiking network onto it
and run it in (simulated) biological real time.

This example walks through the whole stack in the order the paper describes
it (Sections 4, 5.2 and 5.3):

1. build a small toroidal machine model;
2. run the boot protocol (self-test, monitor election, coordinate flood,
   p2p configuration);
3. flood-fill the application image into every chip;
4. describe a stimulus-driven network with the population/projection API;
5. map it (placement, key allocation, multicast routing tables, synaptic
   matrices) and run it under the event-driven real-time model of Fig. 7;
6. report firing rates, spike-delivery latencies and router statistics;
7. share the same machine between two tenants through the allocation
   server and run their jobs concurrently on disjoint leases.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.alloc import AllocationServer
from repro.analysis.metrics import latency_summary
from repro.analysis.traffic import link_traffic_summary
from repro.core.geometry import ChipCoordinate
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.host.host_system import HostSystem
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication, run_concurrently
from repro.runtime.boot import BootController
from repro.runtime.flood_fill import ApplicationImage, FloodFillLoader


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The machine: a 4x4 torus of 6-core chips (96 cores).
    # ------------------------------------------------------------------
    machine = SpiNNakerMachine(MachineConfig(width=4, height=4,
                                             cores_per_chip=6))
    print("Machine: %d chips, %d cores, %d inter-chip links"
          % (machine.n_chips, machine.n_cores, len(machine.links)))

    # ------------------------------------------------------------------
    # 2. Boot: self-test, monitor election, coordinates, p2p tables.
    # ------------------------------------------------------------------
    boot = BootController(machine, core_failure_probability=0.02,
                          seed=1).boot()
    print("Boot: %d/%d chips operational, %d cores failed self-test, "
          "coordinate flood completed at t=%.1f us"
          % (boot.monitors_elected, boot.n_chips, boot.failed_cores,
             boot.coordinate_flood_time_us))

    # ------------------------------------------------------------------
    # 3. Load the application with flood-fill.
    # ------------------------------------------------------------------
    load = FloodFillLoader(machine, redundancy=1).load(
        ApplicationImage(n_blocks=8, block_words=256, name="quickstart"))
    print("Flood-fill: image loaded on %d/%d chips in %.1f us "
          "(mean %.1f copies of each block per chip)"
          % (load.chips_complete, load.n_chips, load.load_time_us,
             load.mean_copies_received))

    # ------------------------------------------------------------------
    # 4. The neural network: Poisson stimulus -> excitatory <-> inhibitory.
    # ------------------------------------------------------------------
    network = Network(timestep_ms=1.0, seed=42)
    stimulus = SpikeSourcePoisson(80, rate_hz=50.0, label="stimulus")
    excitatory = Population(160, "lif", label="excitatory")
    inhibitory = Population(40, "lif", label="inhibitory")
    excitatory.record(spikes=True)
    inhibitory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.15, weight=0.9,
                                              delay_range=(1, 8)))
    network.connect(excitatory, inhibitory,
                    FixedProbabilityConnector(p_connect=0.1, weight=0.5))
    network.connect(inhibitory, excitatory,
                    FixedProbabilityConnector(p_connect=0.2, weight=-0.5))
    print("Network: %d neurons, %d synapses"
          % (network.n_neurons, network.n_synapses()))

    # ------------------------------------------------------------------
    # 5. Map and run for 500 ms of biological time.
    # ------------------------------------------------------------------
    application = NeuralApplication(machine, network,
                                    max_neurons_per_core=16, seed=42)
    result = application.run(500.0)

    # ------------------------------------------------------------------
    # 6. Report.
    # ------------------------------------------------------------------
    print("\nResults after %.0f ms of biological time:" % result.duration_ms)
    for label in ("excitatory", "inhibitory"):
        print("  %-12s %6d spikes   mean rate %.1f Hz"
              % (label, result.total_spikes(label), result.mean_rate_hz(label)))

    latency = latency_summary(result.delivery_latencies_us)
    print("  spike deliveries: %d, mean latency %.1f us, p99 %.1f us, "
          "max %.1f us (deadline 1000 us)"
          % (latency.count, latency.mean_us, latency.p99_us, latency.max_us))
    print("  packets sent %d, dropped %d, emergency re-routes %d"
          % (result.packets_sent, result.packets_dropped,
             result.emergency_invocations))

    traffic = link_traffic_summary(machine)
    print("  link traffic: %d packet transits over %d/%d links "
          "(busiest link carried %d)"
          % (traffic.total_packets, traffic.active_links, traffic.n_links,
             traffic.max_link_packets))

    # The host can interrogate any chip through Ethernet + p2p routing.
    host = HostSystem(machine)
    diagnostics = host.router_diagnostics(ChipCoordinate(2, 2))
    print("  host view of chip (2,2): %s" % diagnostics)

    # ------------------------------------------------------------------
    # 7. Multi-tenancy: two concurrent jobs on disjoint leases.
    # ------------------------------------------------------------------
    server = AllocationServer(host, power_on_delay_us=50.0)
    job_a = server.create_job("alice", 2, 2, keepalive_ms=1e9)
    job_b = server.create_job("bob", 2, 2, keepalive_ms=1e9)
    machine.run()  # let the leased regions power-cycle
    print("\nAllocation: job %d (alice) holds %s, job %d (bob) holds %s"
          % (job_a.job_id, job_a.lease.rect, job_b.job_id, job_b.lease.rect))

    # Boundary-link counters are cumulative, so snapshot them: anything
    # added during the concurrent run would be cross-tenant leakage.
    boundary_before = {
        job.job_id: sum(link.packets_carried
                        for link in job.machine_view.boundary_links())
        for job in (job_a, job_b)}

    applications = []
    for job, seed in ((job_a, 1), (job_b, 2)):
        tenant_network = Network(timestep_ms=1.0, seed=seed)
        tenant_stimulus = SpikeSourcePoisson(16, rate_hz=60.0, label="stim")
        tenant_excitatory = Population(32, "lif", label="exc")
        tenant_excitatory.record(spikes=True)
        tenant_network.connect(
            tenant_stimulus, tenant_excitatory,
            FixedProbabilityConnector(p_connect=0.2, weight=0.9,
                                      delay_range=(1, 4)))
        applications.append(NeuralApplication(job.machine_view,
                                              tenant_network,
                                              max_neurons_per_core=8,
                                              seed=seed))
    tenant_results = run_concurrently(applications, 100.0)

    for job, tenant, tenant_result in zip((job_a, job_b), ("alice", "bob"),
                                          tenant_results):
        boundary = (sum(link.packets_carried
                        for link in job.machine_view.boundary_links())
                    - boundary_before[job.job_id])
        print("  %-6s %4d spikes, %3d packets, %d dropped, "
              "%d packets crossed the lease boundary"
              % (tenant, tenant_result.total_spikes("exc"),
                 tenant_result.packets_sent, tenant_result.packets_dropped,
                 boundary))
    server.release(job_a.job_id)
    server.release(job_b.job_id)
    print("  leases released: %d chips free again, fragmentation %.2f"
          % (server.scheduler.partitioner.free_area,
             server.scheduler.partitioner.fragmentation()))


if __name__ == "__main__":
    main()
