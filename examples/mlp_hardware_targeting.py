"""Hardware-targeted MLP study (paper Section 1, reference [3]).

The SpiNNaker architecture is not only for spiking models: the paper plans
to apply it to "other important neural models", citing work on MLPs whose
connectivity and arithmetic are shaped by the hardware — bounded fan-in
(synaptic rows must fit in the 64 KB data TCM) and fixed-point weights
(the ARM968 has no floating-point unit).

This example trains the same classifier under a sweep of those constraints
and prints the accuracy cost of each, which is exactly the trade-off a
modeller porting an MLP to the machine has to make.

Run with::

    python examples/mlp_hardware_targeting.py
"""

from __future__ import annotations

from repro.neuron.mlp import (
    MLP,
    FixedPointFormat,
    synthetic_classification_task,
)

LAYER_SIZES = [16, 32, 4]
EPOCHS = 40
FAN_INS = (None, 8, 4, 2)
WEIGHT_FORMATS = {
    "float64 (host)": None,
    "s8.7  (16-bit)": FixedPointFormat(integer_bits=8, fractional_bits=7),
    "s4.3  ( 8-bit)": FixedPointFormat(integer_bits=4, fractional_bits=3),
    "s1.0  ( 2-bit)": FixedPointFormat(integer_bits=1, fractional_bits=0),
}


def main() -> None:
    inputs, labels = synthetic_classification_task(
        n_classes=LAYER_SIZES[-1], n_features=LAYER_SIZES[0],
        n_samples_per_class=50, noise=0.25, seed=13)
    print("Task: %d samples, %d features, %d classes"
          % (inputs.shape[0], inputs.shape[1], LAYER_SIZES[-1]))

    print("\n-- Fan-in ablation (hidden layer) --")
    print("%-10s %-12s %-10s" % ("fan-in", "synapses", "accuracy"))
    dense_model = None
    for fan_in in FAN_INS:
        mlp = MLP(LAYER_SIZES, fan_in=fan_in, seed=13)
        result = mlp.train(inputs, labels, epochs=EPOCHS, learning_rate=0.3,
                           seed=13)
        label = "full" if fan_in is None else str(fan_in)
        print("%-10s %-12d %-10.3f" % (label, mlp.total_connections(),
                                       result.final_accuracy))
        if fan_in is None:
            dense_model = mlp

    print("\n-- Weight number-format ablation (fully connected network) --")
    print("%-16s %-10s" % ("format", "accuracy"))
    for name, weight_format in WEIGHT_FORMATS.items():
        model = dense_model if weight_format is None else \
            dense_model.quantised(weight_format)
        print("%-16s %-10.3f" % (name, model.accuracy(inputs, labels)))

    print("\nConclusion: a fan-in cap of half the inputs and 16-bit s8.7 "
          "weights — the constraints a SpiNNaker core imposes — cost almost "
          "no accuracy, while extreme sparsity or 2-bit weights do.")


if __name__ == "__main__":
    main()
