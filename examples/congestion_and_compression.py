"""Fabric congestion analysis and routing-table compression (Sections 4, 5.3).

The paper's communications fabric is meant to run "in a lightly-loaded
regime" and to fit each chip's multicast routes into a 1024-entry CAM.
This example maps a three-population network onto a simulated machine,
runs it in biological real time, and then

* prints the congestion picture (per-link utilisation, hotspots, whether
  the machine stayed in the lightly-loaded regime), and
* compresses every routing table against the allocated key population and
  reports the CAM occupancy saved.

Run with::

    python examples/congestion_and_compression.py
"""

from __future__ import annotations

from repro.analysis.congestion import (
    congestion_report,
    hotspot_chips,
    saturation_injection_rate,
)
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.mapping.compression import compress_machine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController

WIDTH = HEIGHT = 4
NEURONS = 150
DURATION_MS = 100.0


def build_network(seed: int = 29) -> Network:
    """A stimulus-driven excitatory/inhibitory network."""
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(NEURONS, rate_hz=50.0, label="stimulus")
    excitatory = Population(NEURONS, "lif", label="excitatory")
    inhibitory = Population(NEURONS // 4, "lif", label="inhibitory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.12, weight=0.6,
                                              delay_range=(1, 4)))
    network.connect(excitatory, inhibitory,
                    FixedProbabilityConnector(p_connect=0.1, weight=0.5))
    network.connect(inhibitory, excitatory,
                    FixedProbabilityConnector(p_connect=0.1, weight=-0.7))
    return network


def main() -> None:
    machine = SpiNNakerMachine(MachineConfig(width=WIDTH, height=HEIGHT,
                                             cores_per_chip=8))
    BootController(machine, seed=1).boot()

    application = NeuralApplication(machine, build_network(),
                                    max_neurons_per_core=20, seed=29)
    result = application.run(DURATION_MS)
    print("Ran %.0f ms: %d spikes, %d packets sent, %d dropped"
          % (DURATION_MS, result.total_spikes(), result.packets_sent,
             result.packets_dropped))

    report = congestion_report(machine)
    print("\n-- Congestion picture --")
    print("  mean link utilisation: %.4f" % report.mean_utilisation)
    print("  peak link utilisation: %.4f" % report.peak_utilisation)
    print("  refused (back-pressure): %d" % report.total_refused)
    print("  emergency invocations:   %d" % report.emergency_invocations)
    print("  lightly loaded:          %s"
          % ("yes" if report.lightly_loaded else "no"))
    print("  busiest chips:")
    for coordinate, packets in hotspot_chips(machine, top=3):
        print("    %s  %d packets" % (coordinate, packets))

    budget = saturation_injection_rate(WIDTH, HEIGHT, cores_per_chip=8)
    print("  saturation budget: %.1f packets/ms per core" % budget)

    print("\n-- Routing-table compression --")
    reports = compress_machine(machine, application.keys)
    before = sum(r.entries_before for r in reports.values())
    after = sum(r.entries_after for r in reports.values())
    worst = max(r.entries_after for r in reports.values())
    print("  entries before: %d" % before)
    print("  entries after:  %d (worst chip %d of 1024)" % (after, worst))
    print("  saved:          %d (%.0f %%)"
          % (before - after, 100.0 * (before - after) / max(1, before)))


if __name__ == "__main__":
    main()
