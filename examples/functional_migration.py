"""Run-time functional migration (paper abstract, Sections 2.2 and 3.2).

The abstract promises "run-time support for functional migration and
real-time fault mitigation".  Because logical and physical connectivity are
decoupled (virtualised topology), the work running on a suspect core can be
moved to a spare core — same routing keys, new multicast trees — and the
simulation simply resumed.

This example maps a network, runs it for a while, declares one whole chip
suspect (as a monitor processor would after repeated fault reports),
migrates everything off it, and keeps running, reporting the firing rates
before and after so the hand-over is visible end to end.

Run with::

    python examples/functional_migration.py
"""

from __future__ import annotations

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController
from repro.runtime.migration import FunctionalMigrator

PHASE_MS = 150.0
NEURONS = 120


def build_network(seed: int = 37) -> Network:
    """A stimulus-driven excitatory population with recurrent connections."""
    network = Network(seed=seed)
    stimulus = SpikeSourcePoisson(NEURONS, rate_hz=70.0, label="stimulus")
    excitatory = Population(NEURONS, "lif", label="excitatory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(p_connect=0.15, weight=0.7,
                                              delay_range=(1, 4)))
    network.connect(excitatory, excitatory,
                    FixedProbabilityConnector(p_connect=0.05, weight=0.15))
    return network


def main() -> None:
    machine = SpiNNakerMachine(MachineConfig(width=3, height=3,
                                             cores_per_chip=8))
    BootController(machine, seed=2).boot()

    application = NeuralApplication(machine, build_network(),
                                    max_neurons_per_core=12, seed=37)
    application.prepare()

    first = application.run(PHASE_MS)
    spikes_phase_one = first.total_spikes("excitatory")
    rate_before = spikes_phase_one / (PHASE_MS / 1000.0) / NEURONS
    print("Phase 1 (%.0f ms): %d spikes, mean rate %.1f Hz"
          % (PHASE_MS, spikes_phase_one, rate_before))

    migrator = FunctionalMigrator.for_application(application)
    suspect_chip = next(iter(migrator.occupied_slots()))[0]
    occupied_on_chip = sum(1 for (chip, _core) in migrator.occupied_slots()
                           if chip == suspect_chip)
    print("\nChip %s is suspected faulty (%d vertices on it); evacuating..."
          % (suspect_chip, occupied_on_chip))
    report = migrator.evacuate_chip(suspect_chip)
    print("  vertices moved:        %d" % report.n_moves)
    print("  cores mapped out:      %d" % len(report.cores_mapped_out))
    print("  routing entries:       %d -> %d"
          % (report.routing_entries_before, report.routing_entries_after))
    print("  core runtimes rebuilt: %d" % report.runtimes_rebuilt)
    for vertex, old_slot, new_slot in report.moves[:5]:
        print("    %s  %s core %d  ->  %s core %d"
              % (vertex, old_slot[0], old_slot[1], new_slot[0], new_slot[1]))
    if report.n_moves > 5:
        print("    ... and %d more" % (report.n_moves - 5))

    # run() accumulates into the same ApplicationResult, so take the delta
    # against the phase-1 count to isolate the post-migration activity.
    second = application.run(PHASE_MS)
    spikes_after = second.total_spikes("excitatory") - spikes_phase_one
    rate_after = spikes_after / (PHASE_MS / 1000.0) / NEURONS
    print("\nPhase 2 (%.0f ms, after migration): %d spikes, mean rate %.1f Hz"
          % (PHASE_MS, spikes_after, rate_after))
    print("Dropped packets across both phases: %d" % second.packets_dropped)

    still_there = [slot for slot in migrator.occupied_slots()
                   if slot[0] == suspect_chip]
    print("Vertices still on the suspect chip: %d" % len(still_there))
    print("\nThe routing keys never changed — only the tables and the "
          "synaptic data followed the neurons to their new cores, which is "
          "what the virtualised-topology principle buys.")


if __name__ == "__main__":
    main()
