"""Fault-tolerant operation: link failures, emergency routing and the
Monitor Processor's permanent re-routing (Sections 2.2 and 5.3, Figure 8).

The example runs a spiking network on the machine model, then fails a set
of inter-chip links *while the application is running*.  The hardware
emergency-routing mechanism diverts packets around the triangles adjacent
to the dead links; the per-chip Monitor Processors then install permanent
re-routes so the emergency mechanism stops being needed.

Run with:  python examples/fault_tolerant_operation.py
"""

from __future__ import annotations

from repro.analysis.metrics import latency_summary
from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.fault.injection import FaultInjector
from repro.neuron.connectors import FixedProbabilityConnector
from repro.neuron.network import Network
from repro.neuron.population import Population, SpikeSourcePoisson
from repro.router.multicast import RouterConfig
from repro.runtime.application import NeuralApplication
from repro.runtime.boot import BootController
from repro.runtime.monitor import MonitorService

LINK_FAILURE_FRACTION = 0.05
PHASE_MS = 200.0


def build_application() -> tuple:
    machine = SpiNNakerMachine(MachineConfig(
        width=5, height=5, cores_per_chip=6,
        router_config=RouterConfig(emergency_wait_us=0.5, drop_wait_us=1.0)))
    BootController(machine, seed=2).boot()

    network = Network(seed=7)
    stimulus = SpikeSourcePoisson(100, rate_hz=60.0, label="stimulus")
    excitatory = Population(200, "lif", label="excitatory")
    inhibitory = Population(50, "lif", label="inhibitory")
    excitatory.record(spikes=True)
    network.connect(stimulus, excitatory,
                    FixedProbabilityConnector(0.15, weight=0.9,
                                              delay_range=(1, 8)))
    network.connect(excitatory, inhibitory,
                    FixedProbabilityConnector(0.1, weight=0.5))
    network.connect(inhibitory, excitatory,
                    FixedProbabilityConnector(0.2, weight=-0.5))

    application = NeuralApplication(machine, network,
                                    max_neurons_per_core=16, seed=7)
    return machine, application


def report_phase(name: str, application, machine, previous) -> dict:
    result = application.result
    delivered = len(result.delivery_latencies_us)
    snapshot = {
        "delivered": delivered,
        "dropped": machine.total_dropped_packets(),
        "emergency": machine.total_emergency_invocations(),
        "sent": result.packets_sent,
    }
    window = {key: snapshot[key] - previous.get(key, 0) for key in snapshot}
    latency = latency_summary(result.delivery_latencies_us)
    print("%-38s sent %6d  delivered %6d  dropped %4d  emergency %5d  "
          "max latency %.0f us"
          % (name, window["sent"], window["delivered"], window["dropped"],
             window["emergency"], latency.max_us))
    return snapshot


def main() -> None:
    machine, application = build_application()
    print("Running %d neurons on a %d-chip machine; each phase is %.0f ms of "
          "biological time.\n" % (application.network.n_neurons,
                                  machine.n_chips, PHASE_MS))

    previous: dict = {}

    # Phase 1: healthy machine.
    application.run(PHASE_MS)
    previous = report_phase("phase 1: healthy machine", application, machine,
                            previous)

    # Phase 2: fail the links that are actually carrying the traffic (a
    # worst-case draw — failing idle links would not exercise anything).
    injector = FaultInjector(machine, seed=11)
    busiest = sorted(machine.links.values(),
                     key=lambda link: -link.packets_carried)
    n_failures = max(1, int(LINK_FAILURE_FRACTION * len(machine.links)))
    for link in busiest[:n_failures]:
        injector.fail_link(link.source, link.direction)
    print("\n-> failing the %d busiest inter-chip links (%.0f%% of the "
          "machine)\n" % (n_failures, 100 * LINK_FAILURE_FRACTION))
    application.run(PHASE_MS)
    previous = report_phase("phase 2: failures, hardware emergency routing",
                            application, machine, previous)

    # Phase 3: the Monitor Processors install permanent re-routes.
    monitor = MonitorService(machine, emergency_threshold=3)
    report = monitor.process_mailboxes()
    print("\n-> monitor processors: %d emergency notifications, %d links "
          "permanently re-routed, %d routing entries rewritten, %d dropped "
          "packets re-issued\n"
          % (report.emergency_notifications, report.links_rerouted,
             report.entries_rewritten, report.packets_reissued))
    application.run(PHASE_MS)
    report_phase("phase 3: after permanent re-routing", application, machine,
                 previous)

    rate = application.result.mean_rate_hz("excitatory")
    print("\nMean excitatory rate over the whole run: %.1f Hz — the "
          "application never stopped, packets kept flowing around the dead "
          "links, and the monitor turned the emergency diversions into "
          "permanent routes (the \"real-time fault mitigation\" of the "
          "paper's abstract)." % rate)


if __name__ == "__main__":
    main()
