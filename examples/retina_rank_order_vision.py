"""Vision scenario: retinal encoding, rank-order decoding and neuron loss.

Section 5.4 of the paper motivates SpiNNaker with early-vision circuitry:
retinal ganglion cells with overlapping Mexican-hat receptive fields emit a
wave of spikes whose *order* identifies the stimulus (a rank-order code),
and the redundancy of the mosaic means that losing neurons degrades the
percept only gracefully.

This example:

1. builds a difference-of-Gaussians retina over a synthetic image set;
2. encodes each image as a single rank-order salvo of spikes;
3. classifies the stimuli from the spike order alone (one spike per cell);
4. repeats the classification while killing an increasing fraction of the
   ganglion cells, demonstrating the graceful degradation the paper
   attributes to receptive-field overlap and lateral inhibition.

Run with:  python examples/retina_rank_order_vision.py
"""

from __future__ import annotations

import numpy as np

from repro.coding.rank_order import RankOrderDecoder
from repro.coding.retina import RetinaModel, RetinaParameters

IMAGE_SHAPE = (16, 16)
FAILURE_FRACTIONS = (0.0, 0.1, 0.2, 0.3, 0.5)
TRIALS_PER_FRACTION = 5


def build_stimuli() -> dict:
    """A small stimulus set: a bright spot, gratings and a noise field."""
    rng = np.random.default_rng(3)
    return {
        "spot": RetinaModel.make_test_image(IMAGE_SHAPE, "spot"),
        "bars": RetinaModel.make_test_image(IMAGE_SHAPE, "bars"),
        "noise": RetinaModel.make_test_image(IMAGE_SHAPE, "noise", rng),
    }


def reference_codebook(retina: RetinaModel, stimuli: dict) -> list:
    """Response templates of the intact retina, used by the decoder."""
    templates = []
    for image in stimuli.values():
        templates.append(retina.respond(image).copy())
    retina.reset_failures()
    return templates


def classify(retina: RetinaModel, image: np.ndarray, codebook: list) -> int:
    """Classify one image from its rank-order salvo."""
    salvo = retina.encode_latencies(image)
    decoder = RankOrderDecoder(size=retina.n_cells, attenuation=0.95)
    for cell, _latency in sorted(salvo, key=lambda item: item[1])[:64]:
        decoder.spike(cell)
    return decoder.best_match(codebook)


def main() -> None:
    stimuli = build_stimuli()
    labels = list(stimuli.keys())

    intact = RetinaModel(IMAGE_SHAPE, RetinaParameters(scales=(1.0, 2.0)))
    print("Retina: %d ganglion cells (%d scales, ON + OFF mosaics) over a "
          "%dx%d image" % (intact.n_cells, len(intact.parameters.scales),
                           *IMAGE_SHAPE))
    codebook = reference_codebook(intact, stimuli)

    salvo = intact.encode_latencies(stimuli["spot"])
    print("A single presentation of the 'spot' stimulus produces a salvo of "
          "%d spikes spread over %.1f ms — one spike per active cell."
          % (len(salvo), max(t for _, t in salvo) if salvo else 0.0))

    print("\n%-16s %-22s %-22s" % ("failed cells", "classification accuracy",
                                   "reconstruction similarity"))
    for fraction in FAILURE_FRACTIONS:
        correct = 0
        total = 0
        similarities = []
        for trial in range(TRIALS_PER_FRACTION):
            retina = RetinaModel(IMAGE_SHAPE, RetinaParameters(scales=(1.0, 2.0)))
            retina.fail_cells(fraction, np.random.default_rng(10 + trial))
            for index, label in enumerate(labels):
                predicted = classify(retina, stimuli[label], codebook)
                correct += int(predicted == index)
                total += 1
                similarities.append(
                    retina.reconstruction_similarity(stimuli[label]))
        print("%-16.0f%% %-22s %-22s"
              % (fraction * 100, "%.0f%%" % (100.0 * correct / total),
                 "%.3f" % float(np.mean(similarities))))

    print("\nLosing a large fraction of the ganglion cells barely moves the "
          "classification accuracy: the surviving neighbours with "
          "overlapping receptive fields take over, exactly the graceful "
          "degradation the paper describes (Section 5.4).")


if __name__ == "__main__":
    main()
