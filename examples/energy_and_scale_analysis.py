"""Energy-frugality and machine-scale analysis (Sections 2, 3.3 and 6).

Reproduces the paper's cost-effectiveness arguments:

* MIPS/mm² parity and the ~10x MIPS/W advantage of embedded processors;
* the ownership-cost crossover ("the energy cost of a PC equals the
  purchase cost after a little more than three years");
* the full-machine arithmetic: >10^6 cores, ~200 teraIPS, a billion neurons
  in real time for roughly 1 % of a human brain;
* the NRZ-vs-RTZ link-code trade-off that halves off-chip signalling energy
  while doubling throughput.

Run with:  python examples/energy_and_scale_analysis.py
"""

from __future__ import annotations

from repro.energy.cost import OwnershipCostModel
from repro.energy.model import (
    EMBEDDED_NODE,
    HIGH_END_DESKTOP,
    EnergyModel,
    MachineScaleModel,
)
from repro.link.codes import LinkPerformanceModel, three_of_six_rtz, two_of_seven_nrz


def main() -> None:
    # ------------------------------------------------------------------
    # Processor efficiency metrics (Section 2).
    # ------------------------------------------------------------------
    print("Processor cost-effectiveness metrics")
    print("  %-28s %10s %10s %10s" % ("", "MIPS", "MIPS/mm2", "MIPS/W"))
    for spec in (EMBEDDED_NODE, HIGH_END_DESKTOP):
        print("  %-28s %10.0f %10.1f %10.1f"
              % (spec.name, spec.mips, spec.mips_per_mm2, spec.mips_per_watt))
    summary = EnergyModel().comparison()
    print("  -> area efficiency ratio %.2f (roughly equal), energy "
          "efficiency ratio %.0fx (an order of magnitude)\n"
          % (summary["area_efficiency_ratio"],
             summary["energy_efficiency_ratio"]))

    # ------------------------------------------------------------------
    # Ownership cost (Section 3.3).
    # ------------------------------------------------------------------
    pc = OwnershipCostModel.typical_pc()
    node = OwnershipCostModel.spinnaker_node()
    print("Ownership cost ($1/W/year electricity)")
    print("  %-22s %12s %12s %12s" % ("platform", "purchase $", "power W",
                                      "crossover yr"))
    print("  %-22s %12.0f %12.0f %12.2f" % ("typical PC", pc.purchase_cost_usd,
                                            pc.power_w, pc.crossover_years))
    print("  %-22s %12.0f %12.1f %12.1f" % ("SpiNNaker node",
                                            node.purchase_cost_usd,
                                            node.power_w,
                                            node.crossover_years))
    for years in (1.0, 3.0, 5.0):
        print("  after %.0f years: PC total $%.0f, node total $%.1f"
              % (years, pc.total_cost(years), node.total_cost(years)))
    comparison = OwnershipCostModel.ownership_comparison(3.0)
    print("  -> over a 3-year life the ownership cost per unit throughput "
          "is %.0fx lower for the embedded node\n"
          % comparison["cost_per_throughput_ratio"])

    # ------------------------------------------------------------------
    # Link-code energetics (Section 5.1).
    # ------------------------------------------------------------------
    model = LinkPerformanceModel()
    print("Chip-to-chip link codes (per 4-bit symbol)")
    for code in (three_of_six_rtz(), two_of_seven_nrz()):
        print("  %-12s %d wire transitions, %d handshake round trip(s), "
              "%.0f Mbit/s, %.0f pJ"
              % (code.name, code.transitions_per_symbol(),
                 code.handshake_round_trips_per_symbol(),
                 model.throughput_mbit_per_s(code),
                 model.energy_per_symbol_pj(code)))
    ratios = model.comparison()
    print("  -> 2-of-7 NRZ delivers %.1fx the throughput for %.0f%% of the "
          "energy of 3-of-6 RTZ\n"
          % (ratios["throughput_ratio_nrz_over_rtz"],
             100 * ratios["energy_ratio_nrz_over_rtz"]))

    # ------------------------------------------------------------------
    # Full-machine arithmetic (Introduction / Conclusions).
    # ------------------------------------------------------------------
    scale = MachineScaleModel()
    print("Full machine (256 x 256 chips, 20 cores each)")
    print("  cores:            %12s" % format(scale.total_cores, ","))
    print("  throughput:       %12.0f teraIPS" % scale.total_tera_ips)
    print("  neurons (real time): %9.1e  (%.1f%% of a human brain)"
          % (scale.total_neurons, 100 * scale.brain_fraction))
    print("  synapses:         %12.1e" % scale.total_synapses)
    print("  power:            %12.1f kW" % scale.total_power_kw)
    print("  node component cost: $%.0f, machine nodes total $%.1fM"
          % (scale.node_cost_usd, scale.total_cost_usd / 1e6))


if __name__ == "__main__":
    main()
