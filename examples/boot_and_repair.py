"""Boot and neighbour repair of a machine with faulty nodes (Section 5.2).

SpiNNaker is a homogeneous machine with no privileged processors, so boot
has to break symmetry by itself: every core self-tests and bids for the
Monitor Processor role through a read-sensitive register; nodes that fail
to boot are repaired by their neighbours over nearest-neighbour packets;
the Ethernet-attached origin then floods coordinates through the mesh so
every chip can build its point-to-point routing table; finally the
application image is flood-filled into every chip.

Run with:  python examples/boot_and_repair.py
"""

from __future__ import annotations

from repro.core.machine import MachineConfig, SpiNNakerMachine
from repro.host.host_system import HostSystem
from repro.runtime.boot import BootController
from repro.runtime.flood_fill import ApplicationImage, FloodFillLoader

WIDTH = HEIGHT = 6
CORE_FAILURE_PROBABILITY = 0.05
CHIP_BOOT_FAILURE_PROBABILITY = 0.25


def main() -> None:
    machine = SpiNNakerMachine(MachineConfig(width=WIDTH, height=HEIGHT,
                                             cores_per_chip=18))
    print("Machine: %d chips x %d cores = %d processors"
          % (machine.n_chips, machine.config.cores_per_chip, machine.n_cores))
    print("Injected fault model: %.0f%% of cores fail self-test, %.0f%% of "
          "chips fail to boot unaided.\n"
          % (100 * CORE_FAILURE_PROBABILITY,
             100 * CHIP_BOOT_FAILURE_PROBABILITY))

    controller = BootController(
        machine,
        core_failure_probability=CORE_FAILURE_PROBABILITY,
        chip_boot_failure_probability=CHIP_BOOT_FAILURE_PROBABILITY,
        repairable_fraction=1.0, seed=4)
    result = controller.boot()

    print("Phase 1 - self-test and monitor arbitration:")
    print("  %d chips booted unaided, %d cores failed self-test"
          % (result.chips_booted_unaided, result.failed_cores))
    print("Phase 1b - neighbour repair over nn packets:")
    print("  %d chips repaired by neighbours, %d remain dead"
          % (result.chips_repaired, result.chips_dead))
    print("Phase 2 - coordinate flood from the Ethernet origin (0,0):")
    print("  positional information reached every chip by t=%.1f us using "
          "%d nn packets" % (result.coordinate_flood_time_us,
                             result.nn_packets_sent))
    print("Phase 3 - p2p routing tables: %d chips configured"
          % result.p2p_tables_configured)
    print("  machine fully operational: %s\n" % result.all_chips_operational)

    # Application loading with two redundancy settings.
    for redundancy in (1, 3):
        loader = FloodFillLoader(machine, redundancy=redundancy)
        load = loader.load(ApplicationImage(n_blocks=16, block_words=512,
                                            name="demo-app"))
        print("Flood-fill load (redundancy %d): %.1f us, %d/%d chips "
              "complete, each chip saw every block %.1f times on average"
              % (redundancy, load.load_time_us, load.chips_complete,
                 load.n_chips, load.mean_copies_received))

    # The host can now interrogate every chip through chip (0,0).
    host = HostSystem(machine)
    survey = host.survey_machine()
    print("\nHost survey over Ethernet + p2p: %s" % survey)
    print("\nEvery monitor was elected by the read-sensitive register "
          "(exactly one winner per chip), failed chips were re-booted by "
          "their neighbours, and load time is dominated by the image size "
          "rather than the machine size — the boot story of Section 5.2.")


if __name__ == "__main__":
    main()
